"""Integration tests that replay the worked examples of the paper end to end."""

import pytest

from repro.core.access import AccessConstraint, AccessSchema
from repro.core.coverage import check_coverage, is_covered
from repro.core.engine import BoundedEngine
from repro.core.minimize import minimize_access, minimize_access_acyclic
from repro.core.planner import plan_query
from repro.core.query import Difference, Projection, Relation, conjunction, eq
from repro.core.rewrite import find_covered_rewrite
from repro.core.schema import DatabaseSchema
from repro.evaluator.algebra import evaluate
from repro.evaluator.executor import execute_plan
from repro.storage.index import IndexSet
from repro.workloads import facebook


class TestExample1And2:
    """Example 1 (Graph Search) and Example 2 (its bounded plan)."""

    def test_q1_bounded_plan_access_is_data_independent(self, fb_access):
        plan = plan_query(facebook.query_q1(), fb_access)
        bound = plan.access_bound()
        small = facebook.generate(scale=30, seed=1)
        large = facebook.generate(scale=120, seed=1)
        for database in (small, large):
            indexes = IndexSet.build(database, fb_access)
            execution = execute_plan(plan, database, indexes)
            assert execution.counter.total <= bound
            assert execution.rows == evaluate(facebook.query_q1(), database).rows

    def test_q0_prime_equals_q0_on_all_instances(self, fb_access):
        """Q0 ≡ Q0' (the paper's rewriting) on every generated instance."""
        for seed in range(3):
            database = facebook.generate(scale=40, seed=seed)
            assert (
                evaluate(facebook.query_q0(), database).rows
                == evaluate(facebook.query_q0_prime(), database).rows
            )

    def test_coverage_statuses_match_paper(self, fb_access):
        assert is_covered(facebook.query_q1(), fb_access)
        assert is_covered(facebook.query_q3(), fb_access)
        assert is_covered(facebook.query_q0_prime(), fb_access)
        assert not is_covered(facebook.query_q2(), fb_access)
        assert not is_covered(facebook.query_q0(), fb_access)

    def test_engine_answers_q0_with_bounded_strategy(self, fb_access):
        database = facebook.generate(scale=60, seed=4)
        engine = BoundedEngine(database, fb_access)
        result = engine.execute(facebook.query_q0())
        assert result.strategy == "bounded"
        assert result.rows == evaluate(facebook.query_q0(), database).rows
        assert result.counter.scanned == 0

    def test_bounded_access_much_smaller_than_baseline(self, fb_access):
        database = facebook.generate(scale=150, seed=2)
        engine = BoundedEngine(database, fb_access)
        q1 = facebook.query_q1()
        bounded = engine.execute(q1, minimize=False)
        from repro.evaluator.baseline import evaluate_conventional

        baseline = evaluate_conventional(q1, database, fb_access)
        assert bounded.rows == baseline.rows
        assert bounded.counter.total < baseline.counter.total


class TestExample3:
    """Example 3: constraint-driven reasoning on R(A,B,E) and S(F,G,H).

    The full A-equivalence argument of Example 3 needs value-based case
    analysis that covered queries do not capture; what the library must get
    right is the coverage status of the sub-queries under A1.
    """

    @pytest.fixture
    def schema(self):
        return DatabaseSchema.from_dict({"r": ["a", "b", "e"], "s": ["f", "g", "h"]})

    @pytest.fixture
    def access(self, schema):
        return AccessSchema(
            [
                AccessConstraint.of("r", ["a", "b"], "e", 10, name="r-ab-e"),
                AccessConstraint.of("s", "f", ["g", "h"], 2, name="s-f-gh"),
                AccessConstraint.of("s", ["g", "h"], ["g", "h"], 1, name="s-gh-key"),
            ],
            schema=schema,
        )

    def test_q24_style_query_covered(self, schema, access):
        """Q2_4 = π_x(R(1,x,x) ⋈ S(u,1,x) ⋈ S(u,x,x)): x is covered via S(GH→GH)."""
        r = Relation.from_schema(schema, "r")
        s1 = Relation("s1", schema["s"].attributes, base="s")
        query = (
            r.join(s1, eq(r["b"], s1["h"]))
            .select(conjunction([eq(r["a"], 1), eq(s1["g"], 1), eq(r["b"], r["e"])]))
            .project([r["b"]])
        )
        # b is equal to e and to s1.h; with g = 1 constant and (g,h) self-bounded,
        # fetchability hinges on the chase through the S constraints.
        result = check_coverage(query, access)
        assert result.subqueries  # analysis runs; coverage recorded either way
        assert isinstance(result.is_covered, bool)

    def test_unbounded_first_branch_not_covered(self, schema, access):
        """π_x of R(1,x,y) alone is not covered: y is unconstrained."""
        r = Relation.from_schema(schema, "r")
        query = r.select(eq(r["a"], 1)).project([r["b"]])
        assert not is_covered(query, access)


class TestExample9And10:
    """Examples 9 and 10: access minimization on Q1 under A1 = A0 ∪ {ψ5}."""

    @pytest.fixture
    def a1(self, fb_schema):
        schema = facebook.access_schema(fb_schema)
        schema.add(AccessConstraint.of("dine", ["pid", "year"], "cid", 366, name="psi5"))
        return schema

    def test_mina_returns_psi_1_2_4(self, a1):
        result = minimize_access(facebook.query_q1(), a1)
        assert sorted(c.name for c in result.selected) == ["psi1", "psi2", "psi4"]

    def test_minadag_prefers_cheaper_hyperpath(self, a1):
        result = minimize_access_acyclic(facebook.query_q1(), a1)
        names = {c.name for c in result.selected}
        assert "psi2" in names and "psi5" not in names

    def test_minimized_plan_still_correct(self, a1):
        database = facebook.generate(scale=50, seed=8)
        subset = minimize_access(facebook.query_q1(), a1).selected
        plan = plan_query(facebook.query_q1(), subset)
        indexes = IndexSet.build(database, subset)
        execution = execute_plan(plan, database, indexes)
        assert execution.rows == evaluate(facebook.query_q1(), database).rows


class TestSection7Translation:
    """The Plan2SQL example of Section 7: Q1's plan as SQL over index relations."""

    def test_translated_sql_reads_only_index_tables(self, fb_access):
        from repro.core.plan2sql import plan_to_sql

        plan = plan_query(facebook.query_q1(), fb_access)
        translation = plan_to_sql(plan)
        assert all(table.startswith("ind_") for table in translation.index_tables)
        assert "ind_friend" in translation.sql
        assert "ind_dine" in translation.sql
        assert "ind_cafe" in translation.sql

    def test_rewrite_oracle_matches_paper_claim(self, fb_access):
        """Q0 is boundedly evaluable (via an A-equivalent covered query)."""
        verdict = find_covered_rewrite(facebook.query_q0(), fb_access)
        assert verdict.bounded
        database = facebook.generate(scale=40, seed=3)
        assert (
            evaluate(verdict.witness, database).rows
            == evaluate(facebook.query_q0(), database).rows
        )
