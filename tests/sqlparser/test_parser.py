"""Unit tests for the SQL parser and its translation to RA."""

import pytest

from repro.core.coverage import is_covered
from repro.core.errors import ParseError
from repro.core.query import Difference, Join, Projection, Selection, Union
from repro.evaluator.algebra import evaluate
from repro.sqlparser import parse_sql, parse_statement
from repro.sqlparser.ast import SelectStatement, SetOperation


class TestParseStatement:
    def test_simple_select(self):
        statement = parse_statement("SELECT cid FROM cafe WHERE city = 'nyc'")
        assert isinstance(statement, SelectStatement)
        assert [c.name for c in statement.columns] == ["cid"]
        assert statement.from_tables[0].table == "cafe"
        assert len(statement.where) == 1

    def test_select_star(self):
        statement = parse_statement("SELECT * FROM cafe")
        assert statement.columns is None

    def test_alias_with_and_without_as(self):
        with_as = parse_statement("SELECT f.fid FROM friend AS f")
        without_as = parse_statement("SELECT f.fid FROM friend f")
        assert with_as.from_tables[0].name == "f"
        assert without_as.from_tables[0].name == "f"

    def test_join_on(self):
        statement = parse_statement(
            "SELECT d.cid FROM friend f JOIN dine d ON f.fid = d.pid WHERE f.pid = 'p0'"
        )
        assert len(statement.joins) == 1
        assert statement.joins[0].table.name == "d"

    def test_union_and_except(self):
        statement = parse_statement(
            "SELECT cid FROM cafe WHERE city = 'nyc' "
            "EXCEPT SELECT cid FROM cafe WHERE city = 'boston'"
        )
        assert isinstance(statement, SetOperation)
        assert statement.operator == "except"

    def test_parenthesized_set_expression(self):
        statement = parse_statement(
            "(SELECT cid FROM cafe WHERE city = 'nyc' UNION SELECT cid FROM cafe) "
            "EXCEPT SELECT cid FROM cafe WHERE city = 'boston'"
        )
        assert isinstance(statement, SetOperation)
        assert statement.operator == "except"
        assert isinstance(statement.left, SetOperation)

    def test_trailing_semicolon(self):
        assert isinstance(parse_statement("SELECT cid FROM cafe;"), SelectStatement)

    def test_missing_from_is_error(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT cid")

    def test_garbage_after_statement(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT cid FROM cafe garbage extra tokens ,")

    def test_numbers_and_operators(self):
        statement = parse_statement("SELECT pid FROM dine WHERE year >= 2015")
        atom = statement.where[0]
        assert atom.op == ">="
        assert atom.right.value == 2015


class TestToQuery:
    def test_translation_shapes(self, fb_schema):
        query = parse_sql(
            "SELECT d.cid FROM friend f JOIN dine d ON f.fid = d.pid "
            "WHERE f.pid = 'p0' AND d.month = 'may' AND d.year = 2015",
            fb_schema,
        )
        assert isinstance(query, Projection)
        assert isinstance(query.child, Selection)
        assert isinstance(query.child.child, Join)

    def test_unqualified_column_resolution(self, fb_schema):
        query = parse_sql("SELECT city FROM cafe WHERE cid = 'c1'", fb_schema)
        assert str(query.output_attributes()[0]) == "cafe.city"

    def test_ambiguous_column_rejected(self, fb_schema):
        with pytest.raises(ParseError, match="ambiguous"):
            parse_sql("SELECT pid FROM friend, dine", fb_schema)

    def test_unknown_column_rejected(self, fb_schema):
        with pytest.raises(ParseError, match="unknown column"):
            parse_sql("SELECT bogus FROM cafe", fb_schema)

    def test_unknown_alias_rejected(self, fb_schema):
        with pytest.raises(ParseError, match="unknown table alias"):
            parse_sql("SELECT z.cid FROM cafe c", fb_schema)

    def test_duplicate_alias_rejected(self, fb_schema):
        with pytest.raises(ParseError, match="duplicate table occurrence"):
            parse_sql("SELECT c.cid FROM cafe c, cafe c", fb_schema)

    def test_unknown_table_rejected(self, fb_schema):
        with pytest.raises(Exception):
            parse_sql("SELECT x FROM restaurants", fb_schema)

    def test_except_translates_to_difference(self, fb_schema):
        query = parse_sql(
            "SELECT cid FROM cafe WHERE city = 'nyc' "
            "EXCEPT SELECT cid FROM dine WHERE pid = 'p0'",
            fb_schema,
        )
        assert isinstance(query, Difference)

    def test_union_translates_to_union(self, fb_schema):
        query = parse_sql(
            "SELECT cid FROM cafe UNION SELECT cid FROM dine", fb_schema
        )
        assert isinstance(query, Union)


class TestParsedQuerySemantics:
    def test_parsed_example1_equals_programmatic(self, fb_schema, fb_database, fb_q1):
        sql = (
            "SELECT d.cid FROM friend f "
            "JOIN dine d ON f.fid = d.pid "
            "JOIN cafe c ON d.cid = c.cid "
            "WHERE f.pid = 'p0' AND d.month = 'may' AND d.year = 2015 AND c.city = 'nyc'"
        )
        parsed = parse_sql(sql, fb_schema)
        assert evaluate(parsed, fb_database).rows == evaluate(fb_q1, fb_database).rows

    def test_parsed_query_coverage(self, fb_schema, fb_access):
        covered_sql = parse_sql(
            "SELECT d.cid FROM friend f JOIN dine d ON f.fid = d.pid "
            "WHERE f.pid = 'p0' AND d.month = 'may' AND d.year = 2015",
            fb_schema,
        )
        uncovered_sql = parse_sql(
            "SELECT cid FROM dine WHERE pid = 'p0'", fb_schema
        )
        assert is_covered(covered_sql, fb_access)
        assert not is_covered(uncovered_sql, fb_access)

    def test_cartesian_from_list(self, fb_schema, fb_database):
        query = parse_sql(
            "SELECT f.fid FROM friend f, cafe c WHERE c.cid = 'c1' AND f.pid = 'p0'",
            fb_schema,
        )
        result = evaluate(query, fb_database)
        expected = {
            (fid,) for pid, fid in fb_database.relation("friend").rows if pid == "p0"
        }
        if any(row[0] == "c1" for row in fb_database.relation("cafe").rows):
            assert result.rows == expected
        else:
            assert result.rows == frozenset()
