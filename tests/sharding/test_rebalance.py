"""Online key-range migration: correct reads throughout, epoch-guarded flips."""

import pytest

from repro.core.errors import StorageError, TransientFault
from repro.discovery.maintenance import Update
from repro.evaluator.algebra import evaluate
from repro.sharding import build_topology
from repro.workloads import facebook


def mirrored_topology(scale=30, seed=5, shards=2, **kwargs):
    database = facebook.generate(scale=scale, seed=seed)
    access = facebook.access_schema(database.schema)

    def mirror(updates):
        for update in updates:
            instance = database.relation(update.relation)
            prepared = instance.prepare(update.row)
            if update.kind == "insert":
                instance.insert(prepared)
            else:
                instance.delete(prepared)

    router = build_topology(
        database, access, shards=shards, write_observer=mirror, **kwargs
    )
    return router, database


def friend_range(router, database):
    """The middle half of friend's pid values, with its majority owner."""
    position = router.partitioner._positions["friend"]
    values = sorted({row[position] for row in database.relation("friend").rows})
    lo, hi = values[len(values) // 4], values[(3 * len(values)) // 4]
    owners: dict[int, int] = {}
    for value in values:
        if lo <= value < hi:
            owner = router.partitioner.shard_for_value("friend", value)
            owners[owner] = owners.get(owner, 0) + 1
    src = max(owners, key=lambda index: owners[index])
    dst = (src + 1) % len(router.shards)
    return lo, hi, src, dst


def shard_rows(router, index, relation="friend"):
    return set(router.shards[index].relation_rows(relation))


class TestRebalance:
    def test_moves_the_range_and_reads_stay_identical(self):
        router, database = mirrored_topology()
        lo, hi, src, dst = friend_range(router, database)
        queries = [facebook.query_q1(), facebook.query_q1(person="p3")]
        before = {i: evaluate(q, database).rows for i, q in enumerate(queries)}

        report = router.rebalance("friend", (lo, hi), src, dst)

        assert report.completed and report.rows_moved > 0
        assert router.metrics.rebalances == 1
        assert router.metrics.rebalance_rows_moved == report.rows_moved
        assert router.partitioner.override_count == 1
        # Rows physically migrated: the source keeps nothing of the moved
        # range, the destination holds all of it, and nothing was lost.
        position = router.partitioner._positions["friend"]
        moved = {
            row
            for row in database.relation("friend").rows
            if lo <= row[position] < hi
            and router.partitioner.base.shard_for_value("friend", row[position]) == src
        }
        assert len(moved) == report.rows_moved
        assert not moved & shard_rows(router, src)
        assert moved <= shard_rows(router, dst)
        for i, query in enumerate(queries):
            result = router.execute(query)
            assert result.rows == before[i] == evaluate(query, database).rows

    def test_writes_after_the_flip_route_to_the_new_owner(self):
        router, database = mirrored_topology()
        lo, hi, src, dst = friend_range(router, database)
        router.rebalance("friend", (lo, hi), src, dst)
        # A fresh row whose key sits in the migrated range (and whose base
        # owner was the source) must land on the destination shard.
        position = router.partitioner._positions["friend"]
        pid = next(
            row[position]
            for row in sorted(database.relation("friend").rows)
            if lo <= row[position] < hi
            and router.partitioner.base.shard_for_value("friend", row[position]) == src
        )
        fresh = (pid, "p_new_friend")
        router.apply_updates([Update.insert("friend", fresh)])
        assert fresh in shard_rows(router, dst)
        assert fresh not in shard_rows(router, src)
        query = facebook.query_q1(person=pid)
        assert router.execute(query).rows == evaluate(query, database).rows

    def test_cached_federated_results_are_swept(self):
        router, database = mirrored_topology()
        query = facebook.query_q1()
        router.execute(query)
        assert router.execute(query).result_cached
        lo, hi, src, dst = friend_range(router, database)
        router.rebalance("friend", (lo, hi), src, dst)
        result = router.execute(query)
        assert not result.result_cached  # layout changed: recompute
        assert result.rows == evaluate(query, database).rows

    def test_empty_range_flips_without_moving_rows(self):
        router, database = mirrored_topology()
        report = router.rebalance("friend", ("zz_lo", "zz_hi"), 0, 1)
        assert report.completed and report.rows_moved == 0
        assert router.partitioner.override_count == 1
        query = facebook.query_q1()
        assert router.execute(query).rows == evaluate(query, database).rows

    def test_replicated_destination_receives_the_range_in_lockstep(self):
        router, database = mirrored_topology(replicas=2)
        lo, hi, src, dst = friend_range(router, database)
        report = router.rebalance("friend", (lo, hi), src, dst)
        assert report.completed and report.rows_moved > 0
        destination = router.shards[dst]
        first, second = destination.replicas
        assert set(first.relation_rows("friend")) == set(
            second.relation_rows("friend")
        )
        for query in (facebook.query_q1(), facebook.query_q0_prime()):
            assert router.execute(query).rows == evaluate(query, database).rows


class TestRebalanceGuards:
    def test_racing_source_epoch_retries_then_aborts_cleanly(self):
        router, database = mirrored_topology()
        lo, hi, src, dst = friend_range(router, database)
        src_shard = router.shards[src]
        dst_before = shard_rows(router, dst)
        src_before = shard_rows(router, src)
        # Source epoch "moves" on every verification: validation must undo
        # the copy each attempt and finally abort with a typed fault —
        # never a torn layout, never a leaked destination copy.
        src_shard.validate = lambda relations, snapshot: False
        with pytest.raises(TransientFault, match="epoch kept moving"):
            router.rebalance("friend", (lo, hi), src, dst)
        assert router.metrics.rebalance_aborts == 1
        assert router.metrics.rebalances == 0
        assert router.partitioner.override_count == 0
        assert shard_rows(router, dst) == dst_before
        assert shard_rows(router, src) == src_before
        del src_shard.validate
        query = facebook.query_q1()
        assert router.execute(query).rows == evaluate(query, database).rows

    def test_failing_destination_undoes_the_copy_and_aborts(self):
        router, database = mirrored_topology()
        lo, hi, src, dst = friend_range(router, database)
        dst_shard = router.shards[dst]
        dst_before = shard_rows(router, dst)
        original = dst_shard.apply_updates

        def half_then_fail(updates):
            updates = list(updates)
            original(updates[: len(updates) // 2])
            raise TransientFault("destination fell over mid-copy")

        dst_shard.apply_updates = half_then_fail
        with pytest.raises(TransientFault, match="failed the copy"):
            router.rebalance("friend", (lo, hi), src, dst)
        del dst_shard.apply_updates
        # The undo pass removed the applied prefix: no stale double copy
        # can ever leak into a broadcast merge.
        assert shard_rows(router, dst) == dst_before
        assert router.metrics.rebalance_aborts == 1
        assert router.partitioner.override_count == 0
        query = facebook.query_q1()
        assert router.execute(query).rows == evaluate(query, database).rows

    def test_rejects_same_source_and_destination(self):
        router, _ = mirrored_topology()
        with pytest.raises(StorageError, match="must differ"):
            router.rebalance("friend", ("a", "b"), 1, 1)

    def test_rejects_out_of_range_shard_index(self):
        router, _ = mirrored_topology()
        with pytest.raises(StorageError, match="out of range"):
            router.rebalance("friend", ("a", "b"), 0, 9)
