"""Unit tests for covered queries and algorithm CovChk (Sections 3–4)."""

import pytest

from repro.core.access import AccessConstraint, AccessSchema
from repro.core.coverage import (
    CoverageChecker,
    check_coverage,
    covered_attributes,
    is_covered,
    is_fetchable,
    is_indexed,
    uncovered_attributes,
)
from repro.core.normalize import normalize
from repro.core.query import Relation, Union, conjunction, eq
from repro.core.schema import Attribute
from repro.core.spc import SPCAnalysis
from repro.workloads import facebook


class TestExample4:
    """Example 4 of the paper: Q1 and Q3 covered, Q2 not, Q0' covered, Q0 not."""

    def test_q1_covered(self, fb_q1, fb_access):
        assert is_covered(fb_q1, fb_access)

    def test_q2_not_covered(self, fb_q2, fb_access):
        result = check_coverage(fb_q2, fb_access)
        assert not result.is_covered
        assert not result.is_fetchable
        missing = {a.name for s in result.subqueries for a in s.missing_attributes}
        assert "cid" in missing

    def test_q3_covered(self, fb_access):
        assert is_covered(facebook.query_q3(), fb_access)

    def test_q0_not_covered(self, fb_q0, fb_access):
        assert not is_covered(fb_q0, fb_access)

    def test_q0_prime_covered(self, fb_q0_prime, fb_access):
        result = check_coverage(fb_q0_prime, fb_access)
        assert result.is_covered
        assert result.is_fetchable and result.is_indexed
        assert len(result.subqueries) == 2

    def test_q1_not_covered_without_psi1(self, fb_q1, fb_access):
        psi1 = next(c for c in fb_access if c.name == "psi1")
        assert not is_covered(fb_q1, fb_access.without(psi1))

    def test_q1_not_indexed_without_psi2(self, fb_q1, fb_access):
        psi2 = next(c for c in fb_access if c.name == "psi2")
        reduced = fb_access.without(psi2)
        result = check_coverage(fb_q1, reduced)
        assert not result.is_covered


class TestCoverageRules:
    def test_constant_attributes_always_covered(self, fb_schema, fb_access):
        cafe = Relation.from_schema(fb_schema, "cafe")
        query = cafe.select(eq(cafe["cid"], "c1")).project([cafe["city"]])
        assert is_covered(query, fb_access)

    def test_empty_lhs_constraint_covers_rhs(self, fb_schema):
        dine = Relation.from_schema(fb_schema, "dine")
        access = AccessSchema(
            [
                AccessConstraint.of("dine", (), "month", 12),
                AccessConstraint.of("dine", ["pid", "year", "month"], "cid", 31),
                AccessConstraint.of("dine", ["pid", "cid"], ["pid", "cid"], 1),
            ],
            schema=fb_schema,
        )
        query = (
            dine.select(conjunction([eq(dine["pid"], "p0"), eq(dine["year"], 2015)]))
            .project([dine["cid"], dine["month"]])
        )
        # month comes from the ∅ -> month constraint, cid from ψ2 afterwards
        assert is_fetchable(query, access)

    def test_equality_propagates_coverage(self, fb_q1, fb_access):
        """cafe.cid is covered because it equals dine.cid, which ψ2 covers."""
        result = check_coverage(fb_q1, fb_access)
        analysis = result.subqueries[0].analysis
        covered = covered_attributes(analysis, result.actualized)
        assert Attribute("cafe", "cid") in covered

    def test_indexed_requires_spanning_constraint(self, fb_schema):
        """A relation is indexed only if one constraint spans its needed attributes."""
        dine = Relation.from_schema(fb_schema, "dine")
        access = AccessSchema(
            [
                # covers cid via (pid, year, month) but does not span 'city-free' needs
                AccessConstraint.of("dine", ["pid", "year", "month"], "cid", 31),
            ],
            schema=fb_schema,
        )
        query = dine.select(
            conjunction(
                [eq(dine["pid"], "p0"), eq(dine["year"], 2015), eq(dine["month"], "may")]
            )
        ).project([dine["cid"]])
        assert is_covered(query, access)

    def test_uncovered_attributes_helper(self, fb_q2, fb_access):
        missing = uncovered_attributes(fb_q2, fb_access)
        assert {a.name for a in missing} == {"cid"}

    def test_non_normal_form_is_conservatively_rejected(self, fb_schema, fb_access):
        cafe = Relation.from_schema(fb_schema, "cafe")
        cafe2 = Relation("cafe_b", fb_schema["cafe"].attributes, base="cafe")
        union = Union(
            cafe.select(eq(cafe["cid"], "c1")), cafe2.select(eq(cafe2["cid"], "c2"))
        )
        query = union.project([cafe["cid"]])
        result = check_coverage(query, fb_access)
        assert not result.normal_form
        assert not result.is_covered
        assert "normal form" in result.explain()

    def test_explain_mentions_reasons(self, fb_q2, fb_access):
        text = check_coverage(fb_q2, fb_access).explain()
        assert "not fetchable" in text or "not indexed" in text

    def test_index_choices_prefer_small_bounds(self, fb_q0_prime, fb_access):
        result = check_coverage(fb_q0_prime, fb_access)
        # In the guarded sub-query Q3, the dine occurrence used only for the
        # (pid, cid) membership check is indexed by ψ3 (bound 1), not ψ2.
        chosen_bounds = [
            c.bound
            for sub in result.subqueries
            for c in sub.index_choices.values()
        ]
        assert 1 in chosen_bounds


class TestCoverageChecker:
    def test_checker_matches_check_coverage(self, fb_q1, fb_q2, fb_access):
        for query in (fb_q1, fb_q2):
            checker = CoverageChecker(query)
            assert checker.is_covered(fb_access) == is_covered(query, fb_access)

    def test_checker_subsets(self, fb_q1, fb_access):
        checker = CoverageChecker(fb_q1)
        assert checker.is_covered(fb_access)
        assert not checker.is_covered(fb_access.subset_fraction(0.25))

    def test_monotonicity_in_constraints(self, fb_q1, fb_access):
        """Adding constraints never makes a covered query uncovered."""
        checker = CoverageChecker(fb_q1)
        constraints = list(fb_access)
        for k in range(len(constraints) + 1):
            subset = fb_access.restrict(constraints[:k])
            if checker.is_covered(subset):
                for bigger in range(k, len(constraints) + 1):
                    assert checker.is_covered(fb_access.restrict(constraints[:bigger]))
                break
