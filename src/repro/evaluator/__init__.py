"""Query evaluation: reference RA semantics, the DBMS baseline, and the plan executor."""

from .algebra import AlgebraEvaluator, ResultSet, evaluate
from .baseline import BaselineResult, ConventionalEvaluator, evaluate_conventional
from .executor import ExecutionResult, PlanExecutor, execute_plan

__all__ = [
    "AlgebraEvaluator",
    "BaselineResult",
    "ConventionalEvaluator",
    "ExecutionResult",
    "PlanExecutor",
    "ResultSet",
    "evaluate",
    "evaluate_conventional",
    "execute_plan",
]
