"""Directed hypergraphs and the ⟨Q,A⟩-hypergraph (Section 5.2, Appendix A).

Algorithm ``QPlan`` encodes the induced FDs of a query and an access schema
as a directed hypergraph ``G_{Q,A}``: there is a hyperpath from the dummy
source ``r`` to the node of an attribute ``A`` iff ``A`` has a unit fetching
plan (Lemma 7), and the hyperpath itself encodes that plan.

The weighted variant (each FD-edge carries the constraint's bound ``N``) is
used by the access-minimization heuristics ``minADAG`` and ``minAE``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from .access import AccessConstraint, AccessSchema
from .errors import PlanError
from .query import Query, Relation
from .schema import Attribute
from .spc import SPCAnalysis, max_spc_subqueries

Node = Hashable

#: The dummy source node ``r`` of every ⟨Q,A⟩-hypergraph.
ROOT: str = "⟨r⟩"


@dataclass(frozen=True)
class Hyperedge:
    """A directed hyperedge ``(head, tail)`` with ``head ⊆ V`` and ``tail ∈ V``.

    ``weight`` is used by the weighted ⟨Q,A⟩-hypergraph; ``constraint`` links
    FD-edges back to the access constraint that induced them; ``constant``
    carries the literal for edges from ``r`` to a constant attribute.
    """

    head: frozenset[Node]
    tail: Node
    weight: int = 0
    constraint: AccessConstraint | None = None
    constant: object | None = None

    def __post_init__(self) -> None:
        if not self.head:
            raise PlanError("hyperedge head must be non-empty")
        if self.tail in self.head:
            raise PlanError(f"hyperedge tail {self.tail!r} may not appear in its head")

    @property
    def size(self) -> int:
        return len(self.head)

    def __str__(self) -> str:
        head = "{" + ", ".join(sorted(map(str, self.head))) + "}"
        return f"{head} → {self.tail}"


@dataclass
class Hyperpath:
    """A hyperpath: an ordered sequence of hyperedges deriving ``target`` from ``source``.

    The ordering satisfies the paper's condition (a): the head of each edge is
    contained in the source plus the tails of earlier edges.
    """

    source: frozenset[Node]
    target: Node
    edges: tuple[Hyperedge, ...]

    @property
    def weight(self) -> int:
        return sum(edge.weight for edge in self.edges)

    def nodes(self) -> frozenset[Node]:
        """Every node the path touches: sources, tails, and heads."""
        covered: set[Node] = set(self.source)
        for edge in self.edges:
            covered.add(edge.tail)
            covered |= edge.head
        return frozenset(covered)

    def constraints(self) -> tuple[AccessConstraint, ...]:
        """The access constraints used along the path (deduplicated, in order)."""
        seen: list[AccessConstraint] = []
        for edge in self.edges:
            if edge.constraint is not None and edge.constraint not in seen:
                seen.append(edge.constraint)
        return tuple(seen)


class DirectedHypergraph:
    """A directed hypergraph with forward-chaining reachability and hyperpaths."""

    def __init__(self) -> None:
        self._nodes: set[Node] = set()
        self._edges: list[Hyperedge] = []
        self._edges_by_head_member: dict[Node, list[int]] = {}

    # -- construction -----------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Register a node (edges register their endpoints automatically)."""
        self._nodes.add(node)

    def add_edge(self, edge: Hyperedge) -> None:
        """Add a hyperedge, registering its tail and head nodes."""
        self._nodes.add(edge.tail)
        self._nodes.update(edge.head)
        index = len(self._edges)
        self._edges.append(edge)
        for node in edge.head:
            self._edges_by_head_member.setdefault(node, []).append(index)

    # -- protocol -----------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[Node]:
        return frozenset(self._nodes)

    @property
    def edges(self) -> tuple[Hyperedge, ...]:
        return tuple(self._edges)

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def size(self) -> int:
        """``|H|`` — the sum of head cardinalities over all hyperedges."""
        return sum(edge.size for edge in self._edges)

    # -- reachability and hyperpaths ------------------------------------------------
    def reachable(self, source: Iterable[Node]) -> frozenset[Node]:
        """All nodes reachable from ``source`` by forward chaining."""
        derivations = self._forward_chain(frozenset(source))
        return frozenset(derivations)

    def _forward_chain(self, source: frozenset[Node]) -> dict[Node, Hyperedge | None]:
        """Map each reachable node to the edge that first derived it (None for sources).

        Linear in the size of the hypergraph: each edge keeps a counter of head
        nodes not yet reached, mirroring the FD-closure counting algorithm.
        """
        derived: dict[Node, Hyperedge | None] = {node: None for node in source}
        # Counters start at the full head size; every head node that becomes
        # derivable is drained exactly once through the queue (heads are
        # non-empty, so no edge fires before the loop).
        counters = [len(edge.head) for edge in self._edges]
        queue: list[Node] = list(source)
        while queue:
            node = queue.pop()
            for index in self._edges_by_head_member.get(node, ()):
                counters[index] -= 1
                if counters[index] == 0:
                    edge = self._edges[index]
                    if edge.tail not in derived:
                        derived[edge.tail] = edge
                        queue.append(edge.tail)
        return derived

    def derivations(self, source: Iterable[Node]) -> dict[Node, Hyperedge | None]:
        """For each reachable node, the hyperedge that first derived it (None for sources)."""
        return self._forward_chain(frozenset(source))

    def find_hyperpath(self, source: Iterable[Node], target: Node) -> Hyperpath | None:
        """``findHP``: a hyperpath from ``source`` to ``target``, or ``None``.

        Uses forward chaining to record a derivation edge per node, then walks
        the derivation of ``target`` backwards, emitting each used edge once.
        The result contains no redundant edges (every edge derives a node that
        is needed, directly or transitively, for ``target``).
        """
        source_set = frozenset(source)
        derivations = self._forward_chain(source_set)
        if target not in derivations:
            return None
        if target in source_set:
            return Hyperpath(source_set, target, ())

        ordered: list[Hyperedge] = []
        emitted: set[Node] = set()

        def emit(node: Node) -> None:
            if node in source_set or node in emitted:
                return
            edge = derivations.get(node)
            if edge is None:
                raise PlanError(f"node {node!r} has no derivation")  # pragma: no cover
            for head_node in edge.head:
                emit(head_node)
            emitted.add(node)
            ordered.append(edge)

        emit(target)
        return Hyperpath(source_set, target, tuple(ordered))

    def shortest_hyperpaths(
        self, source: Iterable[Node]
    ) -> tuple[dict[Node, int], dict[Node, Hyperedge]]:
        """Shortest B-hyperpath distances from ``source`` (additive cost model).

        The cost of deriving a node via edge ``e`` is ``weight(e)`` plus the
        sum of the costs of the nodes in ``head(e)``; source nodes cost 0.
        Returns the distance map and, for each reached non-source node, the
        edge used in its cheapest derivation.  This is the classical SBT
        (shortest B-tree) procedure for directed hypergraphs.
        """
        source_set = frozenset(source)
        dist: dict[Node, int] = {node: 0 for node in source_set}
        best_edge: dict[Node, Hyperedge] = {}
        remaining = [len(edge.head) for edge in self._edges]
        head_cost = [0 for _ in self._edges]
        heap: list[tuple[int, int, Node]] = []
        counter = itertools.count()
        for node in source_set:
            heapq.heappush(heap, (0, next(counter), node))
        settled: set[Node] = set()

        while heap:
            cost, _, node = heapq.heappop(heap)
            if node in settled or cost > dist.get(node, float("inf")):
                continue
            settled.add(node)
            for index in self._edges_by_head_member.get(node, ()):
                remaining[index] -= 1
                head_cost[index] += cost
                if remaining[index] == 0:
                    edge = self._edges[index]
                    candidate = edge.weight + head_cost[index]
                    if candidate < dist.get(edge.tail, float("inf")):
                        dist[edge.tail] = candidate
                        best_edge[edge.tail] = edge
                        heapq.heappush(heap, (candidate, next(counter), edge.tail))
        return dist, best_edge

    def shortest_hyperpath(self, source: Iterable[Node], target: Node) -> Hyperpath | None:
        """A cheapest-found hyperpath from ``source`` to ``target``.

        Minimum-weight B-hyperpaths are NP-hard in general; the SBT model is
        a heuristic whose additive node costs can double-charge an edge that
        derives several needed nodes at once.  The extracted SBT path is
        therefore clamped against the plain forward-chaining path of
        :meth:`find_hyperpath`: the lighter of the two is returned, so the
        result is never worse than the unweighted baseline.
        """
        source_set = frozenset(source)
        dist, best_edge = self.shortest_hyperpaths(source_set)
        if target not in dist:
            return None
        if target in source_set:
            return Hyperpath(source_set, target, ())
        ordered: list[Hyperedge] = []
        emitted: set[Node] = set()

        def emit(node: Node) -> None:
            if node in source_set or node in emitted:
                return
            edge = best_edge[node]
            for head_node in edge.head:
                emit(head_node)
            emitted.add(node)
            ordered.append(edge)

        emit(target)
        candidate = Hyperpath(source_set, target, tuple(ordered))
        baseline = self.find_hyperpath(source_set, target)
        if baseline is not None and baseline.weight < candidate.weight:
            return baseline
        return candidate

    # -- derived simple graph ----------------------------------------------------
    def to_simple_graph(self) -> dict[Node, set[Node]]:
        """``Ḡ_{Q,A}``: replace each hyperedge ``({u1..up}, v)`` by edges ``ui → v``."""
        graph: dict[Node, set[Node]] = {node: set() for node in self._nodes}
        for edge in self._edges:
            for node in edge.head:
                graph[node].add(edge.tail)
        return graph

    def is_acyclic(self) -> bool:
        """Whether the derived simple graph ``Ḡ_{Q,A}`` is acyclic (Section 6.1)."""
        graph = self.to_simple_graph()
        state: dict[Node, int] = {}

        def visit(node: Node) -> bool:
            state[node] = 1
            for successor in graph[node]:
                mark = state.get(successor, 0)
                if mark == 1:
                    return False
                if mark == 0 and not visit(successor):
                    return False
            state[node] = 2
            return True

        return all(visit(node) for node in graph if state.get(node, 0) == 0)


# ---------------------------------------------------------------------------
# ⟨Q,A⟩-hypergraph construction
# ---------------------------------------------------------------------------

@dataclass
class QAHypergraph:
    """The ⟨Q,A⟩-hypergraph of a (normalized) query and an actualized access schema.

    ``graph`` is the underlying directed hypergraph; attribute nodes are the
    unified attribute names (``ρ_U`` tokens) of the max SPC sub-queries,
    plus the dummy source :data:`ROOT` and one set-node per induced FD.
    ``analyses`` holds the per-sub-query :class:`SPCAnalysis` used to map
    query attributes to node names.
    """

    graph: DirectedHypergraph
    analyses: list[SPCAnalysis]
    weighted: bool = False
    _analysis_by_relation: dict[str, SPCAnalysis] = field(default_factory=dict)

    def analysis_for_relation(self, relation: str) -> SPCAnalysis:
        """The :class:`SPCAnalysis` of the max SPC sub-query containing ``relation``."""
        try:
            return self._analysis_by_relation[relation]
        except KeyError:
            raise PlanError(
                f"relation {relation!r} does not belong to any max SPC sub-query"
            ) from None

    def analysis_for_attribute(self, attribute: Attribute) -> SPCAnalysis:
        """The SPC analysis of the sub-query owning ``attribute``'s relation."""
        return self.analysis_for_relation(attribute.relation)

    def node_for(self, attribute: Attribute) -> Node:
        """The node encoding ``ρ_U(attribute)``."""
        return self.analysis_for_attribute(attribute).unify(attribute)

    def hyperpath_to(self, attribute: Attribute) -> Hyperpath | None:
        """``findHP`` from ``r`` to the node of ``attribute``."""
        return self.graph.find_hyperpath({ROOT}, self.node_for(attribute))

    def shortest_hyperpath_to(self, attribute: Attribute) -> Hyperpath | None:
        """Minimum-weight hyperpath from ``r`` to ``attribute``'s node."""
        return self.graph.shortest_hyperpath({ROOT}, self.node_for(attribute))

    def is_acyclic(self) -> bool:
        """Whether the underlying hypergraph has no directed cycle."""
        return self.graph.is_acyclic()


def _set_node(index: int, tokens: frozenset[str]) -> Node:
    return ("set", index, tuple(sorted(tokens)))


def build_qa_hypergraph(
    query: Query,
    actualized: AccessSchema,
    *,
    weighted: bool = False,
    analyses: Sequence[SPCAnalysis] | None = None,
) -> QAHypergraph:
    """Build the (optionally weighted) ⟨Q,A⟩-hypergraph for ``query`` and ``actualized``.

    ``query`` must be normalized and ``actualized`` must be the actualized
    access schema on it.  Construction follows Appendix A:

    * for each induced FD ``X → Y`` there is a set-node ``u_Y``, a hyperedge
      from the ``X``-nodes to ``u_Y`` (weight ``N`` in the weighted variant)
      and zero-weight edges from ``u_Y`` to each ``Y``-attribute node;
    * induced FDs with empty left-hand side hang off the dummy source ``r``;
    * every constant attribute of a sub-query gets a zero-weight edge from ``r``.
    """
    graph = DirectedHypergraph()
    graph.add_node(ROOT)
    if analyses is None:
        analyses = [SPCAnalysis(sub) for sub in max_spc_subqueries(query)]
    else:
        analyses = list(analyses)

    by_relation: dict[str, SPCAnalysis] = {}
    for analysis in analyses:
        for rel in analysis.relations:
            by_relation[rel.name] = analysis

    edge_counter = itertools.count()
    for analysis in analyses:
        # Edges from r to constant attributes (case 3 of the construction).
        for attribute in analysis.constant_attributes:
            token = analysis.unify(attribute)
            graph.add_edge(
                Hyperedge(
                    head=frozenset({ROOT}),
                    tail=token,
                    weight=0,
                    constant=analysis.constant_for(attribute),
                )
            )
        # Edges for induced FDs (cases 1 and 2).
        for constraint in analysis.relevant_constraints(actualized):
            lhs_tokens = analysis.unify_all(
                Attribute(constraint.relation, a) for a in constraint.lhs
            )
            rhs_tokens = analysis.unify_all(
                Attribute(constraint.relation, a) for a in constraint.rhs
            )
            new_tokens = rhs_tokens - lhs_tokens
            if not new_tokens:
                # The FD adds nothing (Y ⊆ X after unification); skip the edge
                # but keep the nodes so the relation's attributes exist.
                for token in lhs_tokens | rhs_tokens:
                    graph.add_node(token)
                continue
            set_node = _set_node(next(edge_counter), rhs_tokens)
            head = lhs_tokens if lhs_tokens else frozenset({ROOT})
            weight = constraint.bound if weighted else 0
            graph.add_edge(
                Hyperedge(
                    head=frozenset(head),
                    tail=set_node,
                    weight=weight,
                    constraint=constraint,
                )
            )
            for token in new_tokens:
                graph.add_edge(
                    Hyperedge(
                        head=frozenset({set_node}),
                        tail=token,
                        weight=0,
                        constraint=constraint,
                    )
                )

    return QAHypergraph(
        graph=graph,
        analyses=list(analyses),
        weighted=weighted,
        _analysis_by_relation=by_relation,
    )
