"""Data-access accounting and data-version counters.

The central claim of bounded evaluability is about *how much data is
accessed*, so every component that touches tuples (index lookups, relation
scans, fetch execution) reports to an :class:`AccessCounter`.  The counters
feed the ``P(D_Q) = |D_Q| / |D|`` ratios reported by the experiments.

:class:`VersionClock` is the complementary *write-side* counter: a
monotonically increasing global data version plus per-key (relation /
constraint) counters, bumped by the maintenance path.  It is the primitive
behind constraint-granular cache invalidation and versioned result serving
in :mod:`repro.core.engine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable


@dataclass
class AccessCounter:
    """Counts tuples accessed, broken down by mechanism.

    ``fetched`` counts tuples retrieved through constraint indexes (the only
    access mechanism a bounded plan may use); ``scanned`` counts tuples read
    by full relation scans (used by the conventional baseline); ``index_probes``
    counts the number of index lookups issued.
    """

    fetched: int = 0
    scanned: int = 0
    index_probes: int = 0
    per_relation: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Total tuples accessed by any mechanism (the ``|D_Q|`` of the paper)."""
        return self.fetched + self.scanned

    def record_fetch(self, relation: str, count: int) -> None:
        self.fetched += count
        self.index_probes += 1
        self.per_relation[relation] = self.per_relation.get(relation, 0) + count

    def record_fetch_many(self, relation: str, probes: int, count: int) -> None:
        """Aggregate form of :meth:`record_fetch` for bulk index lookups."""
        self.fetched += count
        self.index_probes += probes
        self.per_relation[relation] = self.per_relation.get(relation, 0) + count

    def record_scan(self, relation: str, count: int) -> None:
        self.scanned += count
        self.per_relation[relation] = self.per_relation.get(relation, 0) + count

    def reset(self) -> None:
        self.fetched = 0
        self.scanned = 0
        self.index_probes = 0
        self.per_relation.clear()

    def merge(self, other: "AccessCounter") -> None:
        """Fold another counter into this one (used when combining sub-runs)."""
        self.fetched += other.fetched
        self.scanned += other.scanned
        self.index_probes += other.index_probes
        for relation, count in other.per_relation.items():
            self.per_relation[relation] = self.per_relation.get(relation, 0) + count

    def ratio(self, database_size: int) -> float:
        """``P(D_Q)``: the fraction of the database accessed."""
        if database_size <= 0:
            return 0.0
        return self.total / database_size


@dataclass
class VersionClock:
    """Monotonic data-version counters: one global tick plus per-key counters.

    ``bump(keys)`` advances the global version by one and stamps every given
    key with the new version, so a batch of updates costs a single tick no
    matter how many keys it touches.  ``version_of(key)`` returns the global
    version at which ``key`` was last written (0 for never-written keys).

    Keys are arbitrary hashables; the storage layer keys by relation name
    (every access constraint on a relation shares its relation's counter,
    which is exactly the granularity at which a write can change fetch
    results), while callers may also stamp individual constraints.
    """

    global_version: int = 0
    _per_key: dict[Hashable, int] = field(default_factory=dict)

    def bump(self, keys: Iterable[Hashable] = ()) -> int:
        """Advance the global version once and stamp ``keys`` with it."""
        self.global_version += 1
        for key in keys:
            self._per_key[key] = self.global_version
        return self.global_version

    def version_of(self, key: Hashable) -> int:
        """The global version at which ``key`` was last bumped (0 if never)."""
        return self._per_key.get(key, 0)

    def snapshot(self, keys: Iterable[Hashable]) -> tuple[int, ...]:
        """The versions of ``keys``, in order — a cache-validity token.

        Two snapshots of the same keys are equal iff none of the keys was
        written in between, which is what makes ``(fingerprint, snapshot)``
        a sound result-cache key.
        """
        return tuple(self._per_key.get(key, 0) for key in keys)

    def validate(self, keys: Iterable[Hashable], snapshot: tuple[int, ...]) -> bool:
        """Whether ``keys`` still stand at ``snapshot`` — a lock-free read check.

        Readers in the serving tier validate optimistically instead of
        locking: capture a snapshot, do the read, then ``validate`` that no
        dependent key was written meanwhile.  A ``False`` answer means the
        read may have observed a torn state and must be retried or dropped.
        """
        return self.snapshot(keys) == snapshot

    def sync_to(self, other: "VersionClock") -> None:
        """Adopt ``other``'s state wholesale — the replica catch-up primitive.

        A replica that diverged (missed or tore a routed batch) is resynced
        by row-diffing against a healthy sibling; the data repair itself
        moves this clock in ways that do not mirror the authoritative bump
        history, so the final step of catch-up is to overwrite this clock
        with the authoritative one — after which snapshot validation against
        the authoritative clock holds again by construction.
        """
        self.global_version = other.global_version
        self._per_key = dict(other._per_key)

    def changed_since(
        self, keys: Iterable[Hashable], snapshot: tuple[int, ...]
    ) -> tuple[Hashable, ...]:
        """The subset of ``keys`` written since ``snapshot`` was taken.

        Diagnostic companion of :meth:`validate`: names *which* dependencies
        moved, in the order given (pairs ``keys`` with ``snapshot``
        positionally, exactly as :meth:`snapshot` produced it).
        """
        return tuple(
            key
            for key, version in zip(keys, snapshot)
            if self._per_key.get(key, 0) != version
        )
