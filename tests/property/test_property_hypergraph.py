"""Property-based cross-validation of hypergraph reachability against FD closure.

The ⟨Q,A⟩-hypergraph encodes induced FDs; a node is reachable from the root
iff the corresponding attribute is in the FD closure of the constant
attributes (this is the heart of Lemmas 4 and 7).  Here we check the two
implementations against each other on random FD sets, plus structural
hyperpath invariants.
"""

from hypothesis import given, settings, strategies as st

from repro.core.fd import FDSet, FunctionalDependency
from repro.core.hypergraph import DirectedHypergraph, Hyperedge

TOKENS = ["a", "b", "c", "d", "e", "f", "g"]
ROOT = "__root__"

token_sets = st.sets(st.sampled_from(TOKENS), min_size=0, max_size=3)
nonempty_token_sets = st.sets(st.sampled_from(TOKENS), min_size=1, max_size=3)


@st.composite
def fd_lists(draw):
    count = draw(st.integers(min_value=0, max_value=8))
    return [
        FunctionalDependency.of(draw(token_sets), draw(nonempty_token_sets))
        for _ in range(count)
    ]


def hypergraph_for(fds, seed):
    """Encode FDs the same way build_qa_hypergraph encodes induced FDs."""
    graph = DirectedHypergraph()
    graph.add_node(ROOT)
    for token in seed:
        graph.add_edge(Hyperedge(head=frozenset({ROOT}), tail=token))
    for index, dependency in enumerate(fds):
        new_tokens = dependency.rhs - dependency.lhs
        if not new_tokens:
            continue
        set_node = ("set", index)
        head = dependency.lhs if dependency.lhs else frozenset({ROOT})
        graph.add_edge(Hyperedge(head=frozenset(head), tail=set_node, weight=index))
        for token in new_tokens:
            graph.add_edge(Hyperedge(head=frozenset({set_node}), tail=token))
    return graph


class TestReachabilityEqualsClosure:
    @given(fd_lists(), token_sets)
    @settings(max_examples=80, deadline=None)
    def test_reachable_tokens_equal_fd_closure(self, fds, seed):
        graph = hypergraph_for(fds, seed)
        reachable = {
            node
            for node in graph.reachable({ROOT})
            if isinstance(node, str) and node != ROOT
        }
        closure = set(FDSet(fds).closure(seed))
        assert reachable == (closure | set(seed))

    @given(fd_lists(), token_sets)
    @settings(max_examples=60, deadline=None)
    def test_hyperpath_exists_iff_reachable(self, fds, seed):
        graph = hypergraph_for(fds, seed)
        reachable = graph.reachable({ROOT})
        for token in TOKENS:
            if token not in graph:
                continue
            path = graph.find_hyperpath({ROOT}, token)
            assert (path is not None) == (token in reachable)

    @given(fd_lists(), token_sets)
    @settings(max_examples=60, deadline=None)
    def test_hyperpath_edges_form_valid_derivation(self, fds, seed):
        """Condition (a) of the hyperpath definition: heads are always derivable."""
        graph = hypergraph_for(fds, seed)
        for token in TOKENS:
            if token not in graph:
                continue
            path = graph.find_hyperpath({ROOT}, token)
            if path is None:
                continue
            derived = set(path.source)
            for edge in path.edges:
                assert edge.head <= derived
                derived.add(edge.tail)
            if path.edges:
                assert path.edges[-1].tail == token

    @given(fd_lists(), token_sets)
    @settings(max_examples=40, deadline=None)
    def test_shortest_path_never_beats_reachability(self, fds, seed):
        """Shortest hyperpaths reach exactly the reachable nodes."""
        graph = hypergraph_for(fds, seed)
        dist, _ = graph.shortest_hyperpaths({ROOT})
        reachable = graph.reachable({ROOT})
        assert set(dist) == set(reachable)

    @given(fd_lists(), token_sets)
    @settings(max_examples=40, deadline=None)
    def test_shortest_hyperpath_weight_le_arbitrary_hyperpath(self, fds, seed):
        graph = hypergraph_for(fds, seed)
        for token in TOKENS:
            if token not in graph:
                continue
            any_path = graph.find_hyperpath({ROOT}, token)
            best_path = graph.shortest_hyperpath({ROOT}, token)
            if any_path is None:
                assert best_path is None
            else:
                assert best_path is not None
                assert best_path.weight <= any_path.weight
