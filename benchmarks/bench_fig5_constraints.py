"""Figure 5(d,h,l): impact of the number of access constraints (‖A‖ fraction 0.2..1).

More constraints give QPlan more options, so plans get cheaper and access less
data; fewer constraints cover fewer of the test queries.  The series reports,
per fraction of A: how many of the covered test queries remain covered, the
average evalQP time and P(D_Q).
"""

from repro.bench.experiments import constraints_experiment


def test_fig5_constraints_sweep(benchmark, workload, bench_scale):
    table = benchmark.pedantic(
        constraints_experiment,
        kwargs={
            "workload": workload,
            "fractions": (0.2, 0.4, 0.6, 0.8, 1.0),
            "seed": 23,
            "scale": bench_scale // 2,
            "n_queries": 5,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())

    covered = table.column("covered_queries")
    # With the full access schema every selected query is covered (they were
    # chosen that way), and dropping constraints can only lose coverage.
    assert covered[-1] >= max(covered)
    assert covered[-1] >= 1
