"""Exp-1(IV): size and creation time of the constraint indexes I_A.

The measured operation is building every index of the workload's access
schema over a generated instance; the table reports the footprint in tuples
and in value cells (the cell fraction is the analogue of the paper's
10.6–16.8% byte fractions — higher here because the synthetic tables are much
narrower than the 285–358-attribute originals).
"""

from repro.bench.experiments import index_size_experiment
from repro.storage.index import IndexSet


def test_index_build_time(benchmark, prepared):
    """Time to build all constraint indexes over the prepared instance."""
    workload = prepared["workload"]
    database = prepared["database"]
    result = benchmark.pedantic(
        IndexSet.build,
        kwargs={"database": database, "access_schema": workload.access_schema, "check": False},
        rounds=3,
        iterations=1,
    )
    assert result.total_size > 0


def test_index_size_report(benchmark, workload, bench_scale):
    table = benchmark.pedantic(
        index_size_experiment,
        kwargs={"workload": workload, "seed": 31, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    row = table.rows[0]
    assert row["index_tuples"] > 0
    assert row["cell_fraction"] > 0
    assert row["build_s"] < 60
