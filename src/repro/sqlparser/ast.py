"""Abstract syntax for the parsed SQL subset (before translation to RA)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class ColumnExpr:
    """A column reference, optionally qualified: ``alias.column`` or ``column``."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class LiteralExpr:
    """A string or numeric literal."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class ComparisonExpr:
    """``left op right`` where either side is a column or a literal."""

    left: ColumnExpr | LiteralExpr
    op: str
    right: ColumnExpr | LiteralExpr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM clause, with an optional alias."""

    table: str
    alias: str | None = None

    @property
    def name(self) -> str:
        """The occurrence name this table is referred to by."""
        return self.alias or self.table


@dataclass(frozen=True)
class JoinClause:
    """``JOIN <table> ON <condition>`` attached to the preceding FROM items."""

    table: TableRef
    condition: tuple[ComparisonExpr, ...]


@dataclass
class SelectStatement:
    """One SELECT block."""

    columns: Sequence[ColumnExpr] | None  # None means SELECT *
    from_tables: list[TableRef] = field(default_factory=list)
    joins: list[JoinClause] = field(default_factory=list)
    where: tuple[ComparisonExpr, ...] = ()
    distinct: bool = True


@dataclass
class SetOperation:
    """``left UNION right`` or ``left EXCEPT right`` (left-associative chains)."""

    operator: str  # "union" | "except"
    left: "SelectStatement | SetOperation"
    right: "SelectStatement | SetOperation"
