"""Bounded evaluability of relational queries under access constraints.

A reproduction of "An Effective Syntax for Bounded Relational Queries"
(Cao & Fan, SIGMOD 2016): covered queries, the CovChk coverage checker,
QPlan canonical bounded plan generation, access minimization, and an
end-to-end bounded evaluation engine on an in-memory relational substrate.
"""

from .core import (
    AccessConstraint,
    AccessSchema,
    Attribute,
    BoundedEngine,
    BoundedPlan,
    CoverageResult,
    DatabaseSchema,
    NotCoveredError,
    Relation,
    RelationSchema,
    ReproError,
    check_coverage,
    eq,
    generate_plan,
    is_covered,
    plan_query,
)
from .storage import AccessCounter, Database, IndexSet, RelationInstance

__version__ = "1.0.0"

__all__ = [
    "AccessConstraint",
    "AccessSchema",
    "AccessCounter",
    "Attribute",
    "BoundedEngine",
    "BoundedPlan",
    "CoverageResult",
    "Database",
    "DatabaseSchema",
    "IndexSet",
    "NotCoveredError",
    "Relation",
    "RelationInstance",
    "RelationSchema",
    "ReproError",
    "check_coverage",
    "eq",
    "generate_plan",
    "is_covered",
    "plan_query",
    "__version__",
]
