"""A-equivalent query rewriting and the bounded-evaluability oracle.

Deciding whether an arbitrary RA query is boundedly evaluable is undecidable;
the paper's Example 1 shows the key pattern that makes a query bounded even
though it is not covered as written: a set difference ``Q1 − Q2`` whose right
operand is unbounded can be *guarded* by the left operand,

    ``Q1 − Q2  ≡  Q1 − π_out(Q1' ⋈_out Q2)``,

because only answers of ``Q1`` can be removed by the difference.  The guarded
right-hand side joins on the output attributes, which are covered through
``Q1``, and often becomes covered (e.g. via a key-like constraint such as ψ3).

This module implements that rewrite (plus unsatisfiable-branch pruning) and a
best-effort *oracle* :func:`is_boundedly_evaluable` that the experiments use
in place of the paper's "manual examination" when measuring Figure 6's
percentage of boundedly evaluable queries.  The oracle is sound but not
complete: a ``True`` answer always comes with a covered witness query that is
``A``-equivalent (indeed plain-equivalent) to the input.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from .access import AccessSchema
from .coverage import check_coverage
from .query import (
    Comparison,
    Difference,
    Join,
    Predicate,
    Product,
    Projection,
    Query,
    Relation,
    Rename,
    Selection,
    Union,
    conjunction,
    eq,
)
from .spc import SPCAnalysis, max_spc_subqueries

_clone_counter = itertools.count(1)


# ---------------------------------------------------------------------------
# Structure-preserving cloning with fresh occurrence names
# ---------------------------------------------------------------------------

def clone_with_fresh_names(query: Query, suffix: str | None = None) -> Query:
    """A deep copy of ``query`` in which every relation occurrence gets a fresh name.

    Needed when a rewrite duplicates a sub-query (e.g. the guard of a set
    difference), so that the result can still be normalized into distinct
    occurrences.
    """
    if suffix is None:
        suffix = f"copy{next(_clone_counter)}"
    mapping: dict[str, str] = {}

    def rename_attr(attribute):
        from .schema import Attribute

        new_relation = mapping.get(attribute.relation)
        if new_relation is None:
            return attribute
        return Attribute(new_relation, attribute.name)

    def rewrite_predicate(condition: Predicate) -> Predicate:
        from .query import And, Constant
        from .schema import Attribute

        atoms = []
        for atom in condition.atoms():
            left = rename_attr(atom.left) if isinstance(atom.left, Attribute) else atom.left
            right = rename_attr(atom.right) if isinstance(atom.right, Attribute) else atom.right
            atoms.append(Comparison(left, atom.op, right))
        combined = conjunction(atoms)
        assert combined is not None
        return combined

    def visit(node: Query) -> Query:
        if isinstance(node, Relation):
            new_name = f"{node.name}_{suffix}"
            mapping[node.name] = new_name
            return Relation(new_name, node.attribute_names, base=node.base)
        if isinstance(node, Selection):
            child = visit(node.child)
            return Selection(child, rewrite_predicate(node.condition))
        if isinstance(node, Projection):
            child = visit(node.child)
            return Projection(child, [rename_attr(a) for a in node.attributes])
        if isinstance(node, Product):
            return Product(visit(node.left), visit(node.right))
        if isinstance(node, Join):
            left = visit(node.left)
            right = visit(node.right)
            return Join(left, right, rewrite_predicate(node.condition))
        if isinstance(node, Union):
            return Union(visit(node.left), visit(node.right))
        if isinstance(node, Difference):
            return Difference(visit(node.left), visit(node.right))
        if isinstance(node, Rename):
            return Rename(visit(node.child), f"{node.name}_{suffix}")
        raise TypeError(f"cannot clone query node {type(node).__name__}")  # pragma: no cover

    return visit(query)


# ---------------------------------------------------------------------------
# Rewrites
# ---------------------------------------------------------------------------

def guard_difference(node: Difference) -> Difference:
    """Rewrite ``L − R`` into the equivalent ``L − π_out(L' ⋈ R)``.

    ``L'`` is a fresh-named copy of ``L``; the join equates the output
    attributes of ``L'`` and ``R`` positionally.  The rewrite is an ordinary
    equivalence (not just A-equivalence): only tuples of ``L`` can survive
    into the intersection, so subtracting the guarded right side removes
    exactly the tuples the original difference removes.
    """
    left_copy = clone_with_fresh_names(node.left)
    join_atoms = [
        eq(left_attr, right_attr)
        for left_attr, right_attr in zip(
            left_copy.output_attributes(), node.right.output_attributes()
        )
    ]
    condition = conjunction(join_atoms)
    assert condition is not None
    guarded = Projection(
        Join(left_copy, node.right, condition), list(left_copy.output_attributes())
    )
    return Difference(node.left, guarded)


def guard_differences(query: Query) -> Query:
    """Apply :func:`guard_difference` to every set-difference node, bottom-up."""

    def visit(node: Query) -> Query:
        if isinstance(node, Relation):
            return node
        if isinstance(node, Selection):
            return Selection(visit(node.child), node.condition)
        if isinstance(node, Projection):
            return Projection(visit(node.child), list(node.attributes))
        if isinstance(node, Product):
            return Product(visit(node.left), visit(node.right))
        if isinstance(node, Join):
            return Join(visit(node.left), visit(node.right), node.condition)
        if isinstance(node, Union):
            return Union(visit(node.left), visit(node.right))
        if isinstance(node, Difference):
            return guard_difference(Difference(visit(node.left), visit(node.right)))
        if isinstance(node, Rename):
            return Rename(visit(node.child), node.name)
        raise TypeError(f"cannot rewrite query node {type(node).__name__}")  # pragma: no cover

    return visit(query)


def prune_unsatisfiable_branches(query: Query) -> Query:
    """Drop union branches whose SPC analysis equates two distinct constants.

    This mirrors the constraint-driven simplification of Example 3: branches
    that can never produce a tuple (their selection equates two different
    constants) may be removed without changing the answer on any database.
    """

    def branch_unsatisfiable(node: Query) -> bool:
        if not node.is_spc():
            return False
        try:
            return SPCAnalysis(node).unsatisfiable is not None
        except Exception:  # pragma: no cover - defensive
            return False

    def visit(node: Query) -> Query:
        if isinstance(node, Union):
            left, right = visit(node.left), visit(node.right)
            if branch_unsatisfiable(left):
                return right
            if branch_unsatisfiable(right):
                return left
            return Union(left, right)
        if isinstance(node, Difference):
            left, right = visit(node.left), visit(node.right)
            return Difference(left, right)
        if isinstance(node, Selection):
            return Selection(visit(node.child), node.condition)
        if isinstance(node, Projection):
            return Projection(visit(node.child), list(node.attributes))
        if isinstance(node, Product):
            return Product(visit(node.left), visit(node.right))
        if isinstance(node, Join):
            return Join(visit(node.left), visit(node.right), node.condition)
        if isinstance(node, Rename):
            return Rename(visit(node.child), node.name)
        return node

    return visit(query)


# ---------------------------------------------------------------------------
# Bounded-evaluability oracle
# ---------------------------------------------------------------------------

@dataclass
class BoundednessVerdict:
    """The oracle's answer: whether a covered witness was found, and which one."""

    bounded: bool
    witness: Query | None
    rewrite: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.bounded


def rewrite_candidates(query: Query) -> list[tuple[str, Query]]:
    """The equivalent rewritings the oracle considers, in preference order."""
    candidates: list[tuple[str, Query]] = [("identity", query)]
    pruned = prune_unsatisfiable_branches(query)
    candidates.append(("prune", pruned))
    candidates.append(("guard-difference", guard_differences(query)))
    candidates.append(("prune+guard", guard_differences(pruned)))
    return candidates


def find_covered_rewrite(query: Query, access_schema: AccessSchema) -> BoundednessVerdict:
    """Search the rewrite space for an equivalent query covered by ``access_schema``.

    Tried in order: the query itself, unsatisfiable-branch pruning, difference
    guarding, and both combined.  Sound but incomplete (undecidability forbids
    completeness): a negative verdict means "no covered witness found".
    """
    for name, candidate in rewrite_candidates(query):
        if check_coverage(candidate, access_schema).is_covered:
            return BoundednessVerdict(bounded=True, witness=candidate, rewrite=name)
    return BoundednessVerdict(bounded=False, witness=None, rewrite="none")


def is_boundedly_evaluable(query: Query, access_schema: AccessSchema) -> bool:
    """Best-effort decision of bounded evaluability via covered rewrites."""
    return find_covered_rewrite(query, access_schema).bounded
