"""Unit tests for access minimization (AMP, Section 6)."""

import pytest

from repro.core.access import AccessConstraint, AccessSchema
from repro.core.coverage import is_covered
from repro.core.errors import NotCoveredError
from repro.core.minimize import (
    is_acyclic_case,
    is_elementary_case,
    minimize_access,
    minimize_access_acyclic,
    minimize_access_elementary,
    minimize_access_exact,
    minimize_auto,
    schema_cost,
)
from repro.workloads import facebook


@pytest.fixture
def fb_access_with_psi5(fb_schema):
    """A1 of Example 9: A0 plus ψ5 = dine((pid, year) -> cid, 366)."""
    schema = facebook.access_schema(fb_schema)
    schema.add(AccessConstraint.of("dine", ["pid", "year"], "cid", 366, name="psi5"))
    return schema


class TestMinA:
    def test_example9_drops_psi5_and_psi3(self, fb_q1, fb_access_with_psi5):
        """Example 9: minA returns {ψ1, ψ2, ψ4} for Q1 under A1."""
        result = minimize_access(fb_q1, fb_access_with_psi5)
        names = sorted(c.name for c in result.selected)
        assert names == ["psi1", "psi2", "psi4"]
        assert result.method == "minA"
        assert result.cost == 5000 + 31 + 1

    def test_result_still_covers(self, fb_q1, fb_access):
        result = minimize_access(fb_q1, fb_access)
        assert is_covered(fb_q1, result.selected)

    def test_result_is_minimal(self, fb_q1, fb_access):
        """Removing any constraint from the returned subset breaks coverage."""
        result = minimize_access(fb_q1, fb_access)
        for constraint in result.selected:
            smaller = result.selected.without(constraint)
            assert not is_covered(fb_q1, smaller)

    def test_uncovered_query_rejected(self, fb_q2, fb_access):
        with pytest.raises(NotCoveredError):
            minimize_access(fb_q2, fb_access)

    def test_cost_matches_schema_cost(self, fb_q0_prime, fb_access):
        result = minimize_access(fb_q0_prime, fb_access)
        assert result.cost == schema_cost(result.selected)
        assert result.cost <= schema_cost(fb_access)

    def test_weight_coefficients_change_tie_breaking(self, fb_q1, fb_access_with_psi5):
        weighted = minimize_access(fb_q1, fb_access_with_psi5, c1=1.0, c2=1.0)
        unweighted = minimize_access(fb_q1, fb_access_with_psi5, c1=0.0, c2=1.0)
        # both remain covering subsets
        assert is_covered(fb_q1, weighted.selected)
        assert is_covered(fb_q1, unweighted.selected)


class TestSpecialCases:
    def test_acyclic_case_detection(self, fb_q1, fb_access):
        assert is_acyclic_case(fb_q1, fb_access)

    def test_elementary_case_detection(self, fb_schema):
        elementary = AccessSchema(
            [
                AccessConstraint.of("cafe", "cid", "city", 1),
                AccessConstraint.of("dine", ["pid", "cid"], ["pid", "cid"], 1),
            ],
            schema=fb_schema,
        )
        assert is_elementary_case(elementary)
        not_elementary = facebook.access_schema(fb_schema)
        assert not is_elementary_case(not_elementary)

    def test_minadag_example10(self, fb_q1, fb_access_with_psi5):
        """Example 10: minADAG picks ψ2 (31) over ψ5 (366) on the shortest hyperpath."""
        result = minimize_access_acyclic(fb_q1, fb_access_with_psi5)
        names = {c.name for c in result.selected}
        assert "psi2" in names
        assert "psi5" not in names
        assert is_covered(fb_q1, result.selected)
        assert result.method == "minADAG"

    def test_minadag_covers(self, fb_q0_prime, fb_access):
        result = minimize_access_acyclic(fb_q0_prime, fb_access)
        assert is_covered(fb_q0_prime, result.selected)

    def test_minae_covers(self, fb_q1, fb_access):
        result = minimize_access_elementary(fb_q1, fb_access)
        assert is_covered(fb_q1, result.selected)
        assert result.method == "minAE"

    def test_minauto_dispatch(self, fb_q1, fb_access):
        result = minimize_auto(fb_q1, fb_access)
        assert result.method in {"minA", "minADAG", "minAE"}
        assert is_covered(fb_q1, result.selected)


class TestExactAndQuality:
    def test_exact_is_lower_bound(self, fb_q1, fb_access_with_psi5):
        exact = minimize_access_exact(fb_q1, fb_access_with_psi5)
        greedy = minimize_access(fb_q1, fb_access_with_psi5)
        adag = minimize_access_acyclic(fb_q1, fb_access_with_psi5)
        assert exact.cost <= greedy.cost
        assert exact.cost <= adag.cost
        assert is_covered(fb_q1, exact.selected)

    def test_exact_matches_greedy_on_example9(self, fb_q1, fb_access_with_psi5):
        exact = minimize_access_exact(fb_q1, fb_access_with_psi5)
        greedy = minimize_access(fb_q1, fb_access_with_psi5)
        assert exact.cost == greedy.cost == 5032

    def test_exact_guard_on_large_schemas(self, fb_q1, fb_access):
        with pytest.raises(ValueError):
            minimize_access_exact(fb_q1, fb_access, max_constraints=2)

    def test_minimization_result_len(self, fb_q1, fb_access):
        result = minimize_access(fb_q1, fb_access)
        assert len(result) == len(result.selected)
