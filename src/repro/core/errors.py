"""Exception hierarchy for the bounded-evaluation library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of the library with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SchemaError(ReproError):
    """A relational schema is malformed or referenced inconsistently.

    Raised, e.g., when a relation is declared twice, when an attribute is
    referenced that does not belong to its relation, or when a constraint
    mentions an unknown relation.
    """


class QueryError(ReproError):
    """A relational-algebra query is structurally invalid.

    Examples: projecting an attribute that does not exist in the input,
    taking the union of expressions with different arities, or referencing
    a relation that is not part of the schema.
    """


class AccessConstraintError(ReproError):
    """An access constraint is malformed (e.g. attributes outside its relation)."""


class NotCoveredError(ReproError):
    """An operation that requires a covered query received one that is not.

    ``QPlan`` and the access-minimization algorithms are only defined for
    queries covered by the access schema; calling them on an uncovered query
    raises this error rather than silently producing an unbounded plan.
    """


class PlanError(ReproError):
    """A bounded query plan is invalid or cannot be executed.

    Raised when a plan references an undefined intermediate result, when a
    ``fetch`` uses an access constraint that is not part of the access
    schema, or when plan execution encounters incompatible arities.
    """


class ParseError(ReproError):
    """The SQL parser could not parse the input text."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)


class StorageError(ReproError):
    """The storage layer was used inconsistently.

    Examples: inserting a tuple with the wrong arity, loading a relation that
    does not exist, or building an index over attributes the relation lacks.
    """


class ConstraintViolation(ReproError):
    """A dataset does not satisfy an access constraint it was declared to satisfy."""

    def __init__(self, constraint, value, count: int):
        self.constraint = constraint
        self.value = value
        self.count = count
        super().__init__(
            f"constraint {constraint} violated: X-value {value!r} has {count} "
            f"distinct Y-values (limit {constraint.bound})"
        )


class DiscoveryError(ReproError):
    """Access-constraint discovery was configured or used incorrectly."""
