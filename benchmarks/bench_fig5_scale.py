"""Figure 5(a,e,i): evalQP vs evalQP⁻ vs evalDBMS while |D| grows (scale 2⁻⁵..1).

Regenerates the |D|-sweep series — average evaluation time of the bounded
plans (with and without minA) and of the conventional baseline, plus the
fraction of data accessed P(D_Q) — and checks the headline shape: bounded
evaluation's data access does not grow with |D| while the baseline's does.
"""

from repro.bench.experiments import scale_experiment


def test_fig5_scale_sweep(benchmark, workload, bench_scale):
    table = benchmark.pedantic(
        scale_experiment,
        kwargs={
            "workload": workload,
            "base_scale": bench_scale,
            "scale_factors": (2 ** -5, 2 ** -3, 2 ** -1, 1.0),
            "n_queries": 4,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())

    tuples = table.column("db_tuples")
    ratios = table.column("P_DQ")
    ratios_minus = table.column("P_DQ_minus")
    dbms = table.column("evalDBMS_s")

    assert tuples[-1] > tuples[0]
    # Bounded evaluation touches a small fraction of the full-size database
    # (the absolute number of accessed tuples is capped by Q and A; at tiny
    # scales the ratio can fluctuate, so the check is on the largest instance).
    assert ratios[-1] < 0.05
    # minA never accesses more data than running with the full schema.
    assert all(m <= p * 1.05 for m, p in zip(ratios, ratios_minus))
    # The conventional baseline's time grows with the data.
    assert dbms[-1] >= dbms[0]
