"""Access constraints and access schemas (Section 2 of the paper).

An access constraint has the form ``R(X -> Y, N)``: for every ``X``-value in
an instance of ``R`` there are at most ``N`` distinct corresponding
``Y``-values, and an index exists that retrieves those ``Y``-values by
accessing at most ``N`` tuples.  An :class:`AccessSchema` is a set of such
constraints.

The module also implements *actualization* (Lemma 1): when a query renames
relation occurrences apart, each constraint on a base relation ``R`` is copied
onto every occurrence ``S`` of ``R`` in the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from .errors import AccessConstraintError, SchemaError
from .schema import DatabaseSchema, RelationSchema


@dataclass(frozen=True)
class AccessConstraint:
    """An access constraint ``R(X -> Y, N)``.

    ``lhs`` (the ``X`` of the paper) may be empty, meaning "there are at most
    ``N`` distinct ``Y`` values in any instance of ``R``" — e.g. at most 12
    distinct months.  ``bound`` is the cardinality bound ``N``.
    """

    relation: str
    lhs: frozenset[str]
    rhs: frozenset[str]
    bound: int
    name: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.bound < 1:
            raise AccessConstraintError(f"bound must be positive, got {self.bound}")
        if not self.rhs:
            raise AccessConstraintError("the right-hand side of an access constraint must be non-empty")

    @classmethod
    def of(
        cls,
        relation: str,
        lhs: Iterable[str] | str,
        rhs: Iterable[str] | str,
        bound: int,
        name: str | None = None,
    ) -> "AccessConstraint":
        """Convenience constructor accepting strings or iterables of strings.

        ``AccessConstraint.of("friend", "pid", "fid", 5000)`` builds the
        paper's ψ1.  Pass ``()`` or ``""`` for an empty left-hand side.
        """
        if isinstance(lhs, str):
            lhs = [lhs] if lhs else []
        if isinstance(rhs, str):
            rhs = [rhs] if rhs else []
        return cls(relation, frozenset(lhs), frozenset(rhs), bound, name)

    # -- structural predicates ------------------------------------------------
    @property
    def is_functional_dependency(self) -> bool:
        """True when ``N = 1`` — a classical FD with an index."""
        return self.bound == 1

    @property
    def is_indexing(self) -> bool:
        """An *indexing constraint* per Section 6.1: ``R(X -> X, 1)``."""
        return self.bound == 1 and self.lhs == self.rhs

    @property
    def is_unit(self) -> bool:
        """A *unit constraint* per Section 6.1: ``|X| = |Y| = 1``."""
        return len(self.lhs) == 1 and len(self.rhs) == 1

    @property
    def size(self) -> int:
        """The length of the constraint (contributes to ``|A|``)."""
        return len(self.lhs) + len(self.rhs) + 1

    def attributes(self) -> frozenset[str]:
        """All attributes the constraint mentions (``X ∪ Y``)."""
        return self.lhs | self.rhs

    def validate(self, schema: DatabaseSchema) -> None:
        """Check that the constraint only mentions attributes of its relation."""
        if self.relation not in schema:
            raise AccessConstraintError(f"constraint {self} refers to unknown relation {self.relation!r}")
        relation = schema[self.relation]
        for attr in self.attributes():
            if attr not in relation:
                raise AccessConstraintError(
                    f"constraint {self} uses attribute {attr!r} not in relation {self.relation!r}"
                )

    def actualize(self, occurrence: str) -> "AccessConstraint":
        """The actualized constraint of this constraint on occurrence ``occurrence``."""
        return AccessConstraint(occurrence, self.lhs, self.rhs, self.bound, self.name)

    def __str__(self) -> str:
        lhs = ",".join(sorted(self.lhs)) if self.lhs else "∅"
        rhs = ",".join(sorted(self.rhs))
        return f"{self.relation}(({lhs}) -> ({rhs}), {self.bound})"


class AccessSchema:
    """A set ``A`` of access constraints over a database schema.

    Provides the size measures used throughout the paper: ``size`` is ``|A|``
    (total length of the constraints) and ``len(A)`` is ``||A||`` (the number
    of constraints).
    """

    def __init__(
        self,
        constraints: Iterable[AccessConstraint] = (),
        schema: DatabaseSchema | None = None,
    ):
        self._constraints: list[AccessConstraint] = []
        self._by_relation: dict[str, list[AccessConstraint]] = {}
        self.schema = schema
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint: AccessConstraint) -> None:
        """Add a constraint (validated against the schema; duplicates ignored)."""
        if self.schema is not None:
            constraint.validate(self.schema)
        if constraint in self._constraints:
            return
        self._constraints.append(constraint)
        self._by_relation.setdefault(constraint.relation, []).append(constraint)

    # -- protocol ------------------------------------------------------------
    def __iter__(self) -> Iterator[AccessConstraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        """``||A||`` — the number of constraints."""
        return len(self._constraints)

    def __contains__(self, constraint: AccessConstraint) -> bool:
        return constraint in self._constraints

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessSchema):
            return NotImplemented
        return set(self._constraints) == set(other._constraints)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"AccessSchema({len(self._constraints)} constraints)"

    # -- size measures ---------------------------------------------------------
    @property
    def size(self) -> int:
        """``|A|`` — the total length of the access constraints."""
        return sum(constraint.size for constraint in self._constraints)

    @property
    def total_bound(self) -> int:
        """``N_A = Σ N`` over all constraints (used by Proposition 12 and AMP)."""
        return sum(constraint.bound for constraint in self._constraints)

    # -- lookups ---------------------------------------------------------------
    def for_relation(self, relation: str) -> tuple[AccessConstraint, ...]:
        """All constraints whose relation (occurrence) is ``relation``."""
        return tuple(self._by_relation.get(relation, ()))

    def constraints(self) -> tuple[AccessConstraint, ...]:
        """All constraints in insertion order."""
        return tuple(self._constraints)

    def restrict(self, keep: Iterable[AccessConstraint]) -> "AccessSchema":
        """A new access schema containing only the given constraints (a subset A_m)."""
        keep_set = set(keep)
        return AccessSchema(
            (c for c in self._constraints if c in keep_set), schema=self.schema
        )

    def without(self, dropped: AccessConstraint) -> "AccessSchema":
        """A new access schema with one constraint removed."""
        return AccessSchema(
            (c for c in self._constraints if c != dropped), schema=self.schema
        )

    def subset_fraction(self, fraction: float) -> "AccessSchema":
        """The first ``fraction`` of the constraints, in insertion order.

        Used by the experiments that vary ``||A||`` with scale factors.
        """
        if not 0.0 <= fraction <= 1.0:
            raise AccessConstraintError(f"fraction must be in [0, 1], got {fraction}")
        count = max(0, round(len(self._constraints) * fraction))
        return AccessSchema(self._constraints[:count], schema=self.schema)

    def sample_fraction(self, fraction: float, seed: int = 0) -> "AccessSchema":
        """A random (but seed-deterministic) ``fraction`` of the constraints.

        The Figure 6 experiment uses random subsets so the covered percentage
        grows gradually with ``||A||`` instead of jumping when one pivotal
        constraint happens to enter the prefix.
        """
        import random

        if not 0.0 <= fraction <= 1.0:
            raise AccessConstraintError(f"fraction must be in [0, 1], got {fraction}")
        count = max(0, round(len(self._constraints) * fraction))
        rng = random.Random(seed)
        chosen = rng.sample(self._constraints, count) if count else []
        ordering = {id(c): i for i, c in enumerate(self._constraints)}
        chosen.sort(key=lambda c: ordering[id(c)])
        return AccessSchema(chosen, schema=self.schema)

    # -- actualization (Lemma 1) -----------------------------------------------
    def actualize(self, occurrences: Mapping[str, str]) -> "AccessSchema":
        """The actualized access schema of ``A`` on a normalized query.

        ``occurrences`` maps each occurrence name used in the query to the
        base relation it renames (identity for non-renamed relations).  Every
        constraint of a base relation is copied to each of its occurrences,
        which takes ``O(|Q| * |A|)`` time as stated by Lemma 1.
        """
        actualized = AccessSchema()
        for occurrence, base in occurrences.items():
            for constraint in self._by_relation.get(base, ()):
                actualized.add(constraint.actualize(occurrence))
        return actualized
