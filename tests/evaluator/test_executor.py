"""Unit tests for the bounded-plan executor (evalQP)."""

import pytest

from repro.core.access import AccessConstraint, AccessSchema
from repro.core.errors import PlanError
from repro.core.plan import (
    ColumnPredicate,
    ColumnRef,
    ConstOp,
    DifferenceOp,
    FetchOp,
    IntersectOp,
    PlanBuilder,
    ProductOp,
    ProjectOp,
    RenameOp,
    SelectOp,
    UnionOp,
    UnitOp,
)
from repro.core.planner import plan_query
from repro.evaluator.algebra import evaluate
from repro.evaluator.executor import PlanExecutor, execute_plan
from repro.storage.counters import AccessCounter
from repro.storage.index import IndexSet


@pytest.fixture
def psi1(fb_access):
    return next(c for c in fb_access if c.name == "psi1")


class TestStepSemantics:
    def test_const_unit_project_select(self, fb_database, fb_indexes, fb_access):
        builder = PlanBuilder(fb_access)
        t0 = builder.add(ConstOp(value="p0", column="x"), ["x"])
        t1 = builder.add(UnitOp(), [])
        t2 = builder.add(ProductOp(inputs=(t0, t1)), ["x"])
        t3 = builder.add(SelectOp(predicates=(ColumnPredicate("x", "=", "p0"),), inputs=(t2,)), ["x"])
        t4 = builder.add(ProjectOp(columns=("x",), inputs=(t3,), output_names=("person",)), ["person"])
        plan = builder.build(t4)
        result = execute_plan(plan, fb_database, fb_indexes)
        assert result.rows == {("p0",)}
        assert result.columns == ("person",)

    def test_fetch_uses_index_and_counts(self, fb_database, fb_indexes, fb_access, psi1):
        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
        t1 = builder.add(
            FetchOp(constraint=psi1, key_columns=("friend.pid",), inputs=(t0,)),
            ["friend.fid", "friend.pid"],
        )
        plan = builder.build(t1)
        result = execute_plan(plan, fb_database, fb_indexes)
        expected = {
            (fid, pid) for pid, fid in fb_database.relation("friend").rows if pid == "p0"
        }
        assert result.rows == expected
        assert result.counter.fetched == len(expected)
        assert result.counter.scanned == 0

    def test_fetch_deduplicates_keys(self, fb_database, fb_indexes, fb_access, psi1):
        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
        t1 = builder.add(ConstOp(value="p0", column="other"), ["other"])
        t2 = builder.add(ProductOp(inputs=(t0, t1)), ["friend.pid", "other"])
        t3 = builder.add(
            FetchOp(constraint=psi1, key_columns=("friend.pid",), inputs=(t2,)),
            ["friend.fid", "friend.pid"],
        )
        plan = builder.build(t3)
        result = execute_plan(plan, fb_database, fb_indexes)
        assert result.counter.index_probes == 1

    def test_set_operations(self, fb_database, fb_indexes, fb_access):
        builder = PlanBuilder(fb_access)
        t0 = builder.add(ConstOp(value=1, column="x"), ["x"])
        t1 = builder.add(ConstOp(value=2, column="x"), ["x"])
        t2 = builder.add(UnionOp(inputs=(t0, t1)), ["x"])
        t3 = builder.add(DifferenceOp(inputs=(t2, t0)), ["x"])
        t4 = builder.add(IntersectOp(inputs=(t2, t2)), ["x"])
        t5 = builder.add(RenameOp(mapping={"x": "y"}, inputs=(t4,)), ["y"])
        plan = builder.build(t5)
        executor = PlanExecutor(fb_database, fb_indexes)
        result = executor.execute(plan)
        assert result.step_cardinalities[2] == 2
        assert result.step_cardinalities[3] == 1
        assert result.step_cardinalities[4] == 2
        assert result.columns == ("y",)

    def test_select_with_column_ref(self, fb_database, fb_indexes, fb_access):
        builder = PlanBuilder(fb_access)
        t0 = builder.add(ConstOp(value=1, column="x"), ["x"])
        t1 = builder.add(ConstOp(value=1, column="y"), ["y"])
        t2 = builder.add(ProductOp(inputs=(t0, t1)), ["x", "y"])
        t3 = builder.add(
            SelectOp(predicates=(ColumnPredicate("x", "=", ColumnRef("y")),), inputs=(t2,)),
            ["x", "y"],
        )
        plan = builder.build(t3)
        assert execute_plan(plan, fb_database, fb_indexes).rows == {(1, 1)}

    def test_missing_index_raises(self, fb_database, fb_access, psi1):
        empty_indexes = IndexSet()
        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
        t1 = builder.add(
            FetchOp(constraint=psi1, key_columns=("friend.pid",), inputs=(t0,)),
            ["friend.fid", "friend.pid"],
        )
        plan = builder.build(t1)
        with pytest.raises(PlanError, match="no index available"):
            execute_plan(plan, fb_database, empty_indexes)


class TestEndToEndExecution:
    def test_result_matches_reference(self, fb_q1, fb_access, fb_database, fb_indexes):
        plan = plan_query(fb_q1, fb_access)
        result = execute_plan(plan, fb_database, fb_indexes)
        assert result.rows == evaluate(fb_q1, fb_database).rows

    def test_only_fetch_access(self, fb_q0_prime, fb_access, fb_database, fb_indexes):
        """A bounded plan never scans base relations."""
        plan = plan_query(fb_q0_prime, fb_access)
        result = execute_plan(plan, fb_database, fb_indexes)
        assert result.counter.scanned == 0
        assert result.counter.fetched > 0

    def test_access_ratio_and_external_counter(
        self, fb_q1, fb_access, fb_database, fb_indexes
    ):
        plan = plan_query(fb_q1, fb_access)
        counter = AccessCounter()
        result = execute_plan(plan, fb_database, fb_indexes, counter)
        assert result.counter is counter
        assert 0 < result.access_ratio(fb_database.size) <= counter.total

    def test_actualized_constraints_resolve_to_base_indexes(
        self, fb_q0_prime, fb_access, fb_database, fb_indexes
    ):
        """Fetches on renamed occurrences (dine__2, ...) use the base-relation index."""
        plan = plan_query(fb_q0_prime, fb_access)
        occurrence_relations = {c.relation for c in plan.constraints_used()}
        assert any(rel not in fb_database.relation_names() for rel in occurrence_relations)
        result = execute_plan(plan, fb_database, fb_indexes)
        assert result.rows == evaluate(fb_q0_prime, fb_database).rows
