"""Relational-algebra queries as syntax trees.

This module defines the RA query AST used throughout the library: relation
atoms, selection (σ), projection (π), Cartesian product (×), equi-join (⋈,
sugar for × followed by σ), union (∪), set difference (−) and renaming (ρ).

Attributes are always *qualified* with the relation occurrence they come from
(:class:`~repro.core.schema.Attribute`), which makes attribute provenance
explicit once a query has been normalized so that every relation occurrence
has a distinct name (Section 2 of the paper, Lemma 1).

The query size ``|Q|`` used in the paper's complexity statements is the number
of AST nodes plus the number of condition atoms.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence, Union as TypingUnion

from .errors import QueryError
from .schema import Attribute, DatabaseSchema


# ---------------------------------------------------------------------------
# Terms and predicates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Constant:
    """A literal constant appearing in a selection condition."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


Term = TypingUnion[Attribute, Constant]


def _as_term(value: object) -> Term:
    """Coerce a raw value into a :class:`Term` (attributes pass through)."""
    if isinstance(value, (Attribute, Constant)):
        return value
    return Constant(value)


class Predicate:
    """Base class of selection conditions."""

    def atoms(self) -> Iterator["Comparison"]:
        """All comparison atoms in this predicate (conjunctive or not)."""
        raise NotImplementedError

    def conjuncts(self) -> Iterator["Predicate"]:
        """Top-level conjuncts (a single predicate yields itself)."""
        yield self

    def attributes(self) -> set[Attribute]:
        """Every attribute referenced by any atom of this predicate."""
        return {
            term
            for atom in self.atoms()
            for term in (atom.left, atom.right)
            if isinstance(term, Attribute)
        }

    @property
    def atom_count(self) -> int:
        return sum(1 for _ in self.atoms())


@dataclass(frozen=True)
class Comparison(Predicate):
    """An atomic comparison ``left op right`` with ``op`` in ``= != < <= > >=``."""

    left: Term
    op: str
    right: Term

    _OPS: tuple[str, ...] = ("=", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise QueryError(f"unsupported comparison operator {self.op!r}")

    def atoms(self) -> Iterator["Comparison"]:
        """A comparison is its own single atom."""
        yield self

    @property
    def is_equality(self) -> bool:
        return self.op == "="

    def evaluate(self, left_value: object, right_value: object) -> bool:
        """Apply the comparison to two concrete values."""
        if self.op == "=":
            return left_value == right_value
        if self.op == "!=":
            return left_value != right_value
        if self.op == "<":
            return left_value < right_value  # type: ignore[operator]
        if self.op == "<=":
            return left_value <= right_value  # type: ignore[operator]
        if self.op == ">":
            return left_value > right_value  # type: ignore[operator]
        return left_value >= right_value  # type: ignore[operator]

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Predicate):
    """A conjunction of predicates."""

    parts: tuple[Predicate, ...]

    def __init__(self, parts: Iterable[Predicate]):
        object.__setattr__(self, "parts", tuple(parts))
        if not self.parts:
            raise QueryError("And() requires at least one conjunct")

    def atoms(self) -> Iterator[Comparison]:
        """Atoms of every conjunct, in order."""
        for part in self.parts:
            yield from part.atoms()

    def conjuncts(self) -> Iterator[Predicate]:
        """Flattened top-level conjuncts (nested ``And`` nodes unrolled)."""
        for part in self.parts:
            yield from part.conjuncts()

    def __str__(self) -> str:
        return " AND ".join(str(p) for p in self.parts)


def eq(left: object, right: object) -> Comparison:
    """Shorthand for an equality atom; coerces non-terms to constants."""
    return Comparison(_as_term(left), "=", _as_term(right))


def conjunction(predicates: Sequence[Predicate]) -> Predicate | None:
    """Combine predicates with AND; ``None`` when the sequence is empty."""
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return And(predicates)


# ---------------------------------------------------------------------------
# Query nodes
# ---------------------------------------------------------------------------

class Query:
    """Base class of RA query-tree nodes."""

    #: child sub-queries, in order
    children: tuple["Query", ...] = ()

    # -- structure -----------------------------------------------------------
    def output_attributes(self) -> tuple[Attribute, ...]:
        """The (qualified) attributes of the query's output relation."""
        raise NotImplementedError

    def arity(self) -> int:
        """The number of output attributes."""
        return len(self.output_attributes())

    def subqueries(self) -> Iterator["Query"]:
        """All nodes of the query tree, post-order (children before parents)."""
        for child in self.children:
            yield from child.subqueries()
        yield self

    def relations(self) -> Iterator["Relation"]:
        """All relation atoms in the tree, in left-to-right order."""
        for node in self.subqueries():
            if isinstance(node, Relation):
                yield node

    def relation_names(self) -> tuple[str, ...]:
        """Occurrence names of all relation atoms, in left-to-right order."""
        return tuple(r.name for r in self.relations())

    @property
    def size(self) -> int:
        """``|Q|``: the number of AST nodes plus condition atoms."""
        total = 0
        for node in self.subqueries():
            total += 1
            condition = getattr(node, "condition", None)
            if condition is not None:
                total += condition.atom_count
        return total

    def is_spc(self) -> bool:
        """True when the subtree uses only SPC operators (σ, π, ×, ⋈, ρ, atoms)."""
        return all(
            isinstance(node, (Relation, Selection, Projection, Product, Join, Rename))
            for node in self.subqueries()
        )

    # -- combinators (fluent construction) -------------------------------------
    def select(self, condition: Predicate) -> "Selection":
        """σ: filter this query's rows by ``condition``."""
        return Selection(self, condition)

    def project(self, attributes: Sequence[Attribute | str]) -> "Projection":
        """π: keep only ``attributes`` (strings resolve via :meth:`attribute`)."""
        return Projection(self, attributes)

    def product(self, other: "Query") -> "Product":
        """×: Cartesian product with ``other`` (attribute sets must not overlap)."""
        return Product(self, other)

    def join(self, other: "Query", condition: Predicate | None = None) -> "Join":
        """⋈: equi-join with ``other``; natural join when ``condition`` is None."""
        return Join(self, other, condition)

    def union(self, other: "Query") -> "Union":
        """∪: set union with a union-compatible ``other``."""
        return Union(self, other)

    def difference(self, other: "Query") -> "Difference":
        """−: set difference with a union-compatible ``other``."""
        return Difference(self, other)

    # -- misc -------------------------------------------------------------------
    def attribute(self, name: str) -> Attribute:
        """Resolve an unqualified attribute name against the output attributes.

        Raises :class:`QueryError` when the name is missing or ambiguous.
        """
        matches = [a for a in self.output_attributes() if a.name == name or str(a) == name]
        if not matches:
            raise QueryError(f"no output attribute named {name!r}")
        if len(matches) > 1:
            raise QueryError(f"attribute name {name!r} is ambiguous: {matches}")
        return matches[0]

    def __str__(self) -> str:
        return format_query(self)


class Relation(Query):
    """A relation atom.

    ``name`` is the occurrence name used in the query; ``base`` is the base
    relation in the database schema the occurrence refers to (identical to
    ``name`` unless the query has been normalized or explicitly renamed).
    """

    def __init__(self, name: str, attributes: Sequence[str], base: str | None = None):
        if not attributes:
            raise QueryError(f"relation {name!r} must have at least one attribute")
        self.name = name
        self.base = base or name
        self.attribute_names: tuple[str, ...] = tuple(attributes)
        self.children = ()

    @classmethod
    def from_schema(cls, schema: DatabaseSchema, name: str, base: str | None = None) -> "Relation":
        """A relation atom for occurrence ``name`` of base relation ``base`` in ``schema``."""
        return cls(name, schema[base or name].attributes, base=base)

    def output_attributes(self) -> tuple[Attribute, ...]:
        """Each schema attribute qualified by this occurrence's name."""
        return tuple(Attribute(self.name, a) for a in self.attribute_names)

    def __getitem__(self, attribute: str) -> Attribute:
        if attribute not in self.attribute_names:
            raise QueryError(f"relation {self.name!r} has no attribute {attribute!r}")
        return Attribute(self.name, attribute)


class Selection(Query):
    """σ_condition(child)."""

    def __init__(self, child: Query, condition: Predicate):
        if condition is None:
            raise QueryError("selection requires a condition")
        available = set(child.output_attributes())
        for attr in condition.attributes():
            if attr not in available:
                raise QueryError(f"selection condition references unknown attribute {attr}")
        self.condition = condition
        self.children = (child,)

    @property
    def child(self) -> Query:
        return self.children[0]

    def output_attributes(self) -> tuple[Attribute, ...]:
        """Selection preserves its child's output attributes."""
        return self.child.output_attributes()


class Projection(Query):
    """π_attributes(child)."""

    def __init__(self, child: Query, attributes: Sequence[Attribute | str]):
        if not attributes:
            raise QueryError("projection requires at least one attribute")
        resolved: list[Attribute] = []
        for attr in attributes:
            if isinstance(attr, Attribute):
                if attr not in child.output_attributes():
                    raise QueryError(f"projection attribute {attr} not produced by child")
                resolved.append(attr)
            else:
                resolved.append(child.attribute(attr))
        self.attributes: tuple[Attribute, ...] = tuple(resolved)
        self.children = (child,)

    @property
    def child(self) -> Query:
        return self.children[0]

    def output_attributes(self) -> tuple[Attribute, ...]:
        """Exactly the projected attributes, in projection order."""
        return self.attributes


class Product(Query):
    """Cartesian product of two sub-queries."""

    def __init__(self, left: Query, right: Query):
        overlap = set(left.output_attributes()) & set(right.output_attributes())
        if overlap:
            raise QueryError(
                f"Cartesian product operands share attributes {sorted(map(str, overlap))}; "
                "rename one side first"
            )
        self.children = (left, right)

    @property
    def left(self) -> Query:
        return self.children[0]

    @property
    def right(self) -> Query:
        return self.children[1]

    def output_attributes(self) -> tuple[Attribute, ...]:
        """Left attributes followed by right attributes."""
        return self.left.output_attributes() + self.right.output_attributes()


class Join(Query):
    """An equi-join ``left ⋈_condition right``.

    A join is SPC-expressible (product followed by selection); it exists as a
    separate node purely for readability of queries and plans.  When
    ``condition`` is ``None`` the join is a *natural join* over the attribute
    names shared by the two sides.
    """

    def __init__(self, left: Query, right: Query, condition: Predicate | None = None):
        overlap = set(left.output_attributes()) & set(right.output_attributes())
        if overlap:
            raise QueryError(
                f"join operands share qualified attributes {sorted(map(str, overlap))}; "
                "rename one side first"
            )
        if condition is None:
            shared = {a.name for a in left.output_attributes()} & {
                a.name for a in right.output_attributes()
            }
            if not shared:
                raise QueryError("natural join requires at least one shared attribute name")
            atoms = [
                eq(_find(left, name), _find(right, name)) for name in sorted(shared)
            ]
            condition = conjunction(atoms)
        assert condition is not None
        available = set(left.output_attributes()) | set(right.output_attributes())
        for attr in condition.attributes():
            if attr not in available:
                raise QueryError(f"join condition references unknown attribute {attr}")
        self.condition = condition
        self.children = (left, right)

    @property
    def left(self) -> Query:
        return self.children[0]

    @property
    def right(self) -> Query:
        return self.children[1]

    def output_attributes(self) -> tuple[Attribute, ...]:
        """Left attributes followed by right attributes (no fusion)."""
        return self.left.output_attributes() + self.right.output_attributes()


class Union(Query):
    """Set union of two union-compatible sub-queries (positional)."""

    def __init__(self, left: Query, right: Query):
        if left.arity() != right.arity():
            raise QueryError(
                f"union operands have different arities: {left.arity()} vs {right.arity()}"
            )
        self.children = (left, right)

    @property
    def left(self) -> Query:
        return self.children[0]

    @property
    def right(self) -> Query:
        return self.children[1]

    def output_attributes(self) -> tuple[Attribute, ...]:
        """The left side's attributes (union is positional)."""
        return self.left.output_attributes()


class Difference(Query):
    """Set difference ``left − right`` of two union-compatible sub-queries."""

    def __init__(self, left: Query, right: Query):
        if left.arity() != right.arity():
            raise QueryError(
                f"difference operands have different arities: {left.arity()} vs {right.arity()}"
            )
        self.children = (left, right)

    @property
    def left(self) -> Query:
        return self.children[0]

    @property
    def right(self) -> Query:
        return self.children[1]

    def output_attributes(self) -> tuple[Attribute, ...]:
        """The left side's attributes (difference is positional)."""
        return self.left.output_attributes()


class Rename(Query):
    """ρ: rename the output attributes of a sub-query to a fresh occurrence name."""

    def __init__(self, child: Query, name: str):
        if not name:
            raise QueryError("rename requires a non-empty name")
        self.name = name
        self.children = (child,)

    @property
    def child(self) -> Query:
        return self.children[0]

    def output_attributes(self) -> tuple[Attribute, ...]:
        """The child's attributes re-qualified under the new occurrence name."""
        return tuple(Attribute(self.name, a.name) for a in self.child.output_attributes())


def _find(query: Query, attribute_name: str) -> Attribute:
    for attr in query.output_attributes():
        if attr.name == attribute_name:
            return attr
    raise QueryError(f"attribute {attribute_name!r} not found")  # pragma: no cover


# ---------------------------------------------------------------------------
# Pretty printing and structural equality
# ---------------------------------------------------------------------------

def format_query(query: Query, indent: int = 0) -> str:
    """A readable multi-line rendering of the query tree."""
    pad = "  " * indent
    if isinstance(query, Relation):
        if query.base != query.name:
            return f"{pad}{query.name} (renaming of {query.base})"
        return f"{pad}{query.name}"
    if isinstance(query, Selection):
        return f"{pad}σ[{query.condition}]\n" + format_query(query.child, indent + 1)
    if isinstance(query, Projection):
        attrs = ", ".join(str(a) for a in query.attributes)
        return f"{pad}π[{attrs}]\n" + format_query(query.child, indent + 1)
    if isinstance(query, Product):
        return (
            f"{pad}×\n"
            + format_query(query.left, indent + 1)
            + "\n"
            + format_query(query.right, indent + 1)
        )
    if isinstance(query, Join):
        return (
            f"{pad}⋈[{query.condition}]\n"
            + format_query(query.left, indent + 1)
            + "\n"
            + format_query(query.right, indent + 1)
        )
    if isinstance(query, Union):
        return (
            f"{pad}∪\n"
            + format_query(query.left, indent + 1)
            + "\n"
            + format_query(query.right, indent + 1)
        )
    if isinstance(query, Difference):
        return (
            f"{pad}−\n"
            + format_query(query.left, indent + 1)
            + "\n"
            + format_query(query.right, indent + 1)
        )
    if isinstance(query, Rename):
        return f"{pad}ρ[{query.name}]\n" + format_query(query.child, indent + 1)
    raise QueryError(f"unknown query node {type(query).__name__}")  # pragma: no cover


def queries_equal(left: Query, right: Query) -> bool:
    """Structural (syntactic) equality of two query trees."""
    if type(left) is not type(right):
        return False
    if isinstance(left, Relation) and isinstance(right, Relation):
        return (
            left.name == right.name
            and left.base == right.base
            and left.attribute_names == right.attribute_names
        )
    left_condition = getattr(left, "condition", None)
    right_condition = getattr(right, "condition", None)
    if left_condition != right_condition:
        return False
    if isinstance(left, Projection) and isinstance(right, Projection):
        if left.attributes != right.attributes:
            return False
    if isinstance(left, Rename) and isinstance(right, Rename):
        if left.name != right.name:
            return False
    if len(left.children) != len(right.children):
        return False
    return all(
        queries_equal(lc, rc) for lc, rc in zip(left.children, right.children)
    )


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

_occurrence_counter = itertools.count(1)


def fresh_occurrence(base: str) -> str:
    """A fresh occurrence name for a base relation (used by normalization)."""
    return f"{base}#{next(_occurrence_counter)}"


def relation(schema: DatabaseSchema, name: str) -> Relation:
    """Shorthand for :meth:`Relation.from_schema`."""
    return Relation.from_schema(schema, name)
