"""Unit tests for query normalization (distinct relation occurrences, Lemma 1)."""

import pytest

from repro.core.normalize import normalize
from repro.core.query import Difference, Projection, Relation, Rename, Union, eq
from repro.core.schema import Attribute
from repro.workloads import facebook


class TestNormalizeSimple:
    def test_single_occurrence_untouched(self, fb_schema):
        friend = Relation.from_schema(fb_schema, "friend")
        query = friend.select(eq(friend["pid"], "p0"))
        normalized = normalize(query)
        assert normalized.occurrences == {"friend": "friend"}
        assert normalized.renamed == {}
        assert [r.name for r in normalized.query.relations()] == ["friend"]

    def test_duplicate_across_difference_renamed(self, fb_schema):
        dine_a = Relation.from_schema(fb_schema, "dine")
        dine_b = Relation.from_schema(fb_schema, "dine")
        query = Difference(
            dine_a.project([dine_a["cid"]]), dine_b.project([dine_b["cid"]])
        )
        normalized = normalize(query)
        names = [r.name for r in normalized.query.relations()]
        assert len(set(names)) == 2
        assert normalized.occurrences[names[0]] == "dine"
        assert normalized.occurrences[names[1]] == "dine"

    def test_duplicate_across_union_condition_rewritten(self, fb_schema):
        cafe_a = Relation.from_schema(fb_schema, "cafe")
        cafe_b = Relation.from_schema(fb_schema, "cafe")
        query = Union(
            cafe_a.select(eq(cafe_a["city"], "nyc")).project([cafe_a["cid"]]),
            cafe_b.select(eq(cafe_b["city"], "boston")).project([cafe_b["cid"]]),
        )
        normalized = normalize(query)
        right = normalized.query.children[1]
        renamed_relation = next(iter(right.relations()))
        assert renamed_relation.name != "cafe"
        # the selection and projection inside the renamed branch reference the new name
        selection = right.children[0]
        attrs = {a.relation for a in selection.condition.attributes()}
        assert attrs == {renamed_relation.name}
        assert right.output_attributes()[0].relation == renamed_relation.name

    def test_rename_node_folds_into_relation(self, fb_schema):
        friend = Relation.from_schema(fb_schema, "friend")
        renamed = Rename(friend, "buddies")
        normalized = normalize(renamed)
        occurrence = next(iter(normalized.query.relations()))
        assert occurrence.name == "buddies"
        assert occurrence.base == "friend"
        assert normalized.occurrences["buddies"] == "friend"


class TestNormalizePaperQueries:
    def test_q0_prime_occurrences(self, fb_q0_prime):
        normalized = normalize(fb_q0_prime)
        occurrences = normalized.occurrences
        # Q0' mentions friend twice, dine three times, cafe twice.
        bases = sorted(occurrences.values())
        assert bases.count("dine") == 3
        assert bases.count("friend") == 2
        assert bases.count("cafe") == 2
        names = [r.name for r in normalized.query.relations()]
        assert len(names) == len(set(names))

    def test_actualize_copies_constraints(self, fb_q0_prime, fb_access):
        normalized = normalize(fb_q0_prime)
        actualized = normalized.actualize(fb_access)
        # every dine occurrence gets psi2 and psi3
        dine_occurrences = [o for o, b in normalized.occurrences.items() if b == "dine"]
        for occurrence in dine_occurrences:
            assert len(actualized.for_relation(occurrence)) == 2

    def test_normalization_preserves_semantics(self, fb_database, fb_q0_prime):
        from repro.evaluator.algebra import evaluate

        normalized = normalize(fb_q0_prime)
        original = evaluate(fb_q0_prime, fb_database)
        rewritten = evaluate(normalized.query, fb_database)
        assert original.rows == rewritten.rows
