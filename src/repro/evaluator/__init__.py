"""Query evaluation: reference RA semantics, the DBMS baseline, and the plan executor.

Execution pipeline
------------------

A query answered by :class:`~repro.core.engine.BoundedEngine` flows through
three evaluation-layer stages:

1. **optimizer** — the canonical plan from ``QPlan`` is peephole-optimized
   (:func:`repro.core.optimizer.optimize_plan`): select-over-product pairs
   fuse into hash joins, stacked projections/selections collapse, common
   subplans are deduplicated and dead steps dropped;
2. **cache** — the optimized plan is stored in the engine's
   :class:`~repro.core.planstore.PlanStore` under the query's canonical
   fingerprint, so repeated queries skip coverage checking, minimization,
   planning and optimization entirely; repeated covered queries on
   unchanged data skip execution too, served from the engine's versioned
   :class:`~repro.core.planstore.ResultCache`;
3. **executor** — :class:`~repro.evaluator.executor.PlanExecutor` lowers the
   plan once into per-step kernels (positions, predicates and index handles
   resolved up front).  Two kernel families share the compiled-plan seam:
   the row kernels pipeline mutable-set intermediates, and the columnar
   kernels (:mod:`repro.evaluator.columnar`) run batch-at-a-time over
   :class:`~repro.evaluator.columnar.ColumnBatch` intermediates with
   dictionary-encoded strings and virtual candidate products
   (:class:`~repro.evaluator.columnar.ProductView`).  ``executor_mode``
   picks the family per engine, or per plan under ``"auto"``
   (:func:`repro.core.optimizer.choose_executor_mode`); either way only the
   output is frozen back to the row-set contract.

The reference evaluator (:mod:`repro.evaluator.algebra`) and the conventional
baseline (:mod:`repro.evaluator.baseline`) stay interpreter-style on purpose:
they are the ground truth the optimized path is tested against.
"""

from .algebra import AlgebraEvaluator, ResultSet, evaluate
from .baseline import BaselineResult, ConventionalEvaluator, evaluate_conventional
from .columnar import ColumnBatch, ColumnarCompiler, Dictionary, FetchEncoder, ProductView
from .executor import (
    EXECUTOR_MODES,
    CompiledPlan,
    ExecutionResult,
    PlanExecutor,
    execute_plan,
)

__all__ = [
    "AlgebraEvaluator",
    "BaselineResult",
    "ColumnBatch",
    "ColumnarCompiler",
    "CompiledPlan",
    "ConventionalEvaluator",
    "Dictionary",
    "EXECUTOR_MODES",
    "ExecutionResult",
    "FetchEncoder",
    "PlanExecutor",
    "ProductView",
    "ResultSet",
    "evaluate",
    "evaluate_conventional",
    "execute_plan",
]
