"""Property-based tests for coverage checking (CovChk invariants)."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.coverage import CoverageChecker, check_coverage
from repro.core.minimize import minimize_access
from repro.core.rewrite import guard_differences, prune_unsatisfiable_branches
from repro.evaluator.algebra import evaluate
from repro.workloads import WORKLOADS, RandomQueryGenerator

WORKLOAD = WORKLOADS["TFACC"]
_DATABASE = WORKLOAD.database(scale=30, seed=13)
_GENERATOR_CACHE: dict[int, RandomQueryGenerator] = {}


def generated_query(seed: int, n_sel: int, n_join: int, n_unidiff: int):
    generator = _GENERATOR_CACHE.get(seed)
    if generator is None:
        generator = RandomQueryGenerator(WORKLOAD, database=_DATABASE, seed=seed)
        _GENERATOR_CACHE[seed] = generator
    return generator.generate(n_sel=n_sel, n_join=n_join, n_unidiff=n_unidiff)


query_parameters = st.tuples(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=2),
)


class TestCoverageInvariants:
    @given(query_parameters, st.floats(min_value=0.2, max_value=0.9), st.integers(0, 100))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_coverage_monotone_in_access_schema(self, parameters, fraction, subset_seed):
        """If a subset of A covers Q then A covers Q."""
        query = generated_query(*parameters)
        checker = CoverageChecker(query)
        subset = WORKLOAD.access_schema.sample_fraction(fraction, seed=subset_seed)
        if checker.is_covered(subset):
            assert checker.is_covered(WORKLOAD.access_schema)

    @given(query_parameters)
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_covered_means_fetchable_and_indexed(self, parameters):
        query = generated_query(*parameters)
        result = check_coverage(query, WORKLOAD.access_schema)
        assert result.is_covered == (result.is_fetchable and result.is_indexed)

    @given(query_parameters)
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_checker_agrees_with_one_shot_check(self, parameters):
        query = generated_query(*parameters)
        checker = CoverageChecker(query)
        assert (
            checker.is_covered(WORKLOAD.access_schema)
            == check_coverage(query, WORKLOAD.access_schema).is_covered
        )

    @given(query_parameters)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_minimized_subset_still_covers(self, parameters):
        query = generated_query(*parameters)
        checker = CoverageChecker(query)
        if not checker.is_covered(WORKLOAD.access_schema):
            return
        result = minimize_access(query, WORKLOAD.access_schema)
        assert checker.is_covered(result.selected)
        assert result.cost <= sum(c.bound for c in WORKLOAD.access_schema)


class TestRewriteInvariants:
    @given(query_parameters)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_rewrites_preserve_semantics(self, parameters):
        """Guarding differences and pruning unsat branches never change Q(D)."""
        query = generated_query(*parameters)
        truth = evaluate(query, _DATABASE).rows
        assert evaluate(guard_differences(query), _DATABASE).rows == truth
        assert evaluate(prune_unsatisfiable_branches(query), _DATABASE).rows == truth
