"""Replica sets: lockstep writes, divergence healing, failover, hedging.

Every test measures the replicated federation against the single-database
reference its ``write_observer`` mirror keeps in step — the same contract as
:mod:`tests.sharding.test_router`, now with faults injected at the
shard-fetch seam (:mod:`repro.sharding.faults`) that the replica layer must
absorb without the reference ever seeing a wrong row.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StorageError, TransientFault
from repro.discovery.maintenance import Update
from repro.evaluator.algebra import evaluate
from repro.sharding import (
    ReplicaSet,
    ShardFaultInjector,
    ShardFaultSpec,
    build_topology,
)
from repro.storage.counters import AccessCounter
from repro.workloads import facebook


def replicated_topology(scale=30, seed=5, shards=2, replicas=2, **kwargs):
    """A replicated federation plus its single-database reference mirror."""
    database = facebook.generate(scale=scale, seed=seed)
    access = facebook.access_schema(database.schema)

    def mirror(updates):
        for update in updates:
            instance = database.relation(update.relation)
            prepared = instance.prepare(update.row)
            if update.kind == "insert":
                instance.insert(prepared)
            else:
                instance.delete(prepared)

    router = build_topology(
        database,
        access,
        shards=shards,
        replicas=replicas,
        write_observer=mirror,
        **kwargs,
    )
    return router, database


def psi1(router):
    return next(c for c in router.access_schema if c.name == "psi1")


def person_on(router, target_set, scale=30):
    """A pid whose routed friend-fetch lands on ``target_set``."""
    index = router.shards.index(target_set)
    return next(
        pid
        for pid in (f"p{i}" for i in range(scale))
        if router.partitioner.shard_for_value("friend", pid) == index
    )


def set_batch(router, target_set, size=2):
    """``size`` deletes of friend rows that all route to ``target_set``."""
    index = router.shards.index(target_set)
    rows = [
        row
        for row in sorted(router._gather(("friend",)).relation("friend").rows)
        if router.partitioner.shard_for_row("friend", row) == index
    ]
    assert len(rows) >= size, "scale too small for a same-shard batch"
    return [Update.delete("friend", row) for row in rows[:size]]


class TestReplicatedReads:
    def test_rows_identical_to_single_database_reference(self):
        router, database = replicated_topology()
        for shard in router.shards:
            assert isinstance(shard, ReplicaSet)
            # Member substrates alternate, so failover crosses backends.
            assert {member.kind for member in shard.replicas} == {"memory", "sqlite"}
        for query in (facebook.query_q1(), facebook.query_q0_prime()):
            result = router.execute(query)
            assert result.strategy == "bounded"
            assert result.rows == evaluate(query, database).rows

    def test_routed_writes_keep_members_in_lockstep(self):
        router, database = replicated_topology()
        target = router.shards[0]
        router.apply_updates(set_batch(router, target))
        for member in target.replicas:
            assert target._in_lockstep(member, ("friend",))
            assert set(member.relation_rows("friend")) == set(
                target.replicas[0].relation_rows("friend")
            )
        query = facebook.query_q1()
        assert router.execute(query).rows == evaluate(query, database).rows

    def test_constructor_rejects_members_out_of_lockstep(self):
        router, _ = replicated_topology()
        members = router.shards[0].replicas
        members[1].database.clock.bump(("friend",))
        with pytest.raises(StorageError, match="out of\n?\\s*lockstep|lockstep"):
            ReplicaSet("broken", members)


class TestFailoverReads:
    def test_dead_primary_fails_over_to_sibling(self):
        router, database = replicated_topology(result_cache_size=0)
        target = router.shards[0]
        injector = ShardFaultInjector(seed=3)
        injector.kill(target.replicas[0])
        query = facebook.query_q1()
        assert router.execute(query).rows == evaluate(query, database).rows
        assert target.failovers > 0

    def test_breaker_quarantines_a_repeatedly_failing_member(self):
        router, database = replicated_topology(
            result_cache_size=0, failure_threshold=2
        )
        target = router.shards[0]
        victim = target.replicas[0]
        injector = ShardFaultInjector(seed=3)
        injector.kill(victim)
        query = facebook.query_q1()
        for _ in range(4):
            assert router.execute(query).rows == evaluate(query, database).rows
        health = target.health(victim.name)
        assert health.failures_total >= 2
        assert target.quarantines >= 1

    def test_every_member_dead_raises_a_typed_fault(self):
        router, _ = replicated_topology()
        target = router.shards[0]
        injector = ShardFaultInjector(seed=3)
        for member in target.replicas:
            injector.kill(member)
        with pytest.raises(TransientFault, match="candidate replica failed"):
            target.fetch(psi1(router), "friend", [("p0",)], AccessCounter())


class TestDivergenceHealing:
    """The satellite-4 contract: a missed routed write is detected by
    snapshot validation at the next fetch touching the relation, the
    member is quarantined, caught up from a sibling, and re-admitted —
    never merged while diverged."""

    def test_lost_write_detected_quarantined_caught_up_readmitted(self):
        router, database = replicated_topology(result_cache_size=0)
        target = router.shards[0]
        victim = target.replicas[1]
        injector = ShardFaultInjector(seed=7)
        injector.install_shard(victim)
        injector.configure(f"{victim.name}.write", ShardFaultSpec(lost_write_every=1))

        batch = set_batch(router, target)
        report = router.apply_updates(batch)
        # The victim silently swallowed its copy: no error, no mutation —
        # the routed batch still applied (canonical = the healthy sibling).
        assert report.applied == len(batch)
        assert not target._in_lockstep(victim, ("friend",))
        assert target.health(victim.name).state == "healthy"  # not yet caught

        injector.uninstall()
        query = facebook.query_q1(person=person_on(router, target))
        result = router.execute(query)
        assert result.rows == evaluate(query, database).rows
        # The first fetch touching "friend" swept the set: quarantine on the
        # lagging clock, catch-up from the sibling, verified re-admission.
        assert target.quarantines == 1
        assert target.catch_ups == 1
        assert target.rows_resynced == len(batch)
        assert target.health(victim.name).state == "healthy"
        assert target._in_lockstep(victim, ("friend",))
        assert set(victim.relation_rows("friend")) == set(
            target.replicas[0].relation_rows("friend")
        )

    def test_catch_up_refused_while_writes_still_vanish(self):
        router, database = replicated_topology(result_cache_size=0, probe_after=1)
        target = router.shards[0]
        victim = target.replicas[1]
        injector = ShardFaultInjector(seed=7)
        injector.install_shard(victim)
        injector.configure(f"{victim.name}.write", ShardFaultSpec(lost_write_every=1))

        router.apply_updates(set_batch(router, target))
        query = facebook.query_q1(person=person_on(router, target))
        assert router.execute(query).rows == evaluate(query, database).rows
        # The catch-up's resync batch was itself swallowed; the verify
        # re-diff must notice and keep the member out of rotation — a
        # "probe succeeded" response alone never re-admits.
        assert target.quarantines == 1
        assert target.catch_ups == 0
        assert target.health(victim.name).state == "quarantined"

        injector.uninstall()
        assert router.execute(query).rows == evaluate(query, database).rows
        assert target.catch_ups == 1
        assert target.health(victim.name).state == "healthy"

    def test_torn_write_quarantines_immediately(self):
        router, database = replicated_topology(result_cache_size=0, probe_after=1)
        target = router.shards[0]
        victim = target.replicas[1]
        injector = ShardFaultInjector(seed=7)
        injector.install_shard(victim)
        injector.configure(f"{victim.name}.write", ShardFaultSpec(torn_write_every=1))

        batch = set_batch(router, target, size=4)
        report = router.apply_updates(batch)
        # The victim applied a strict prefix then raised: it is quarantined
        # on the spot (its clock settled over the prefix, so clock checks
        # alone cannot be trusted), and the batch proceeded on the sibling.
        assert report.applied == len(batch)
        assert target.quarantines == 1
        assert target.health(victim.name).reason == "write_failed"

        injector.uninstall()
        query = facebook.query_q1(person=person_on(router, target))
        assert router.execute(query).rows == evaluate(query, database).rows
        assert target.catch_ups == 1
        assert target.rows_resynced > 0  # the torn remainder was resynced
        assert target.health(victim.name).state == "healthy"

    def test_quarantined_member_misses_writes_then_catches_up(self):
        router, database = replicated_topology(result_cache_size=0, probe_after=1)
        target = router.shards[0]
        victim = target.replicas[1]
        target._quarantine(victim, "divergence")
        batch = set_batch(router, target)
        router.apply_updates(batch)  # applied to the healthy member only
        assert set(victim.relation_rows("friend")) != set(
            target.replicas[0].relation_rows("friend")
        )
        query = facebook.query_q1(person=person_on(router, target))
        assert router.execute(query).rows == evaluate(query, database).rows
        assert target.health(victim.name).state == "healthy"
        assert set(victim.relation_rows("friend")) == set(
            target.replicas[0].relation_rows("friend")
        )


class TestHedgedReads:
    def test_slow_primary_diverts_to_fastest_sibling(self):
        router, _ = replicated_topology(hedge_threshold=0.001)
        target = router.shards[0]
        primary, sibling = target.replicas
        # Seed the shared recorder: the primary's observed p95 is far over
        # the knob, the sibling's far under it.
        for _ in range(10):
            target.latency.observe(f"replica:{primary.name}", 0.5)
            target.latency.observe(f"replica:{sibling.name}", 0.0001)
        rows = target.fetch(psi1(router), "friend", [("p0",)], AccessCounter())
        assert target.hedged_reads == 1
        assert rows == sibling.fetch(psi1(router), "friend", [("p0",)])

    def test_recorder_is_shared_with_router_metrics(self):
        router, _ = replicated_topology()
        assert all(s.latency is router.metrics.latency for s in router.shards)
        router.execute(facebook.query_q1())
        samples = router.metrics.latency.snapshot()
        assert any(key.startswith("replica:") for key in samples)


@settings(max_examples=12, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["write", "arm_lost", "heal", "read"]),
            st.integers(min_value=0, max_value=13),
        ),
        min_size=2,
        max_size=10,
    )
)
def test_property_reads_match_reference_under_lost_write_chaos(ops):
    """Random interleavings of routed writes, a lost-write fault arming and
    healing on one member, and reads: every read is row-identical to the
    mirrored reference, and after healing the member converges."""
    router, database = replicated_topology(
        scale=14, seed=2, result_cache_size=0, probe_after=1
    )
    target = router.shards[0]
    victim = target.replicas[1]
    injector = ShardFaultInjector(seed=11)
    injector.install_shard(victim)
    site = f"{victim.name}.write"
    removed: list[tuple] = []
    try:
        for action, pick in ops + [("heal", 0), ("read", 0), ("read", 1)]:
            if action == "arm_lost":
                injector.configure(site, ShardFaultSpec(lost_write_every=1))
            elif action == "heal":
                injector.configure(site, ShardFaultSpec())
            elif action == "write":
                rows = sorted(database.relation("friend").rows)
                if removed and pick % 2:
                    router.apply_updates([Update.insert("friend", removed.pop())])
                elif rows:
                    row = rows[pick % len(rows)]
                    removed.append(row)
                    router.apply_updates([Update.delete("friend", row)])
            else:
                query = facebook.query_q1(person=f"p{pick}")
                result = router.execute(query)
                assert result.rows == evaluate(query, database).rows
        # A fetch guaranteed to reach the victim's set, so healing runs.
        target.fetch(
            psi1(router), "friend", [(person_on(router, target, scale=14),)]
        )
    finally:
        injector.uninstall()
    # Post-heal reads re-admitted the member via verified catch-up.
    assert target.health(victim.name).state == "healthy"
    assert set(victim.relation_rows("friend")) == set(
        target.replicas[0].relation_rows("friend")
    )
