"""Unit tests for the columnar executor: batches, dictionaries, kernels.

Every plan-level test runs the same :class:`~repro.core.plan.BoundedPlan`
through both kernel families and asserts frozen-result identity — the
row executor is the semantics oracle, the reference evaluator having
blessed it elsewhere.
"""

import pytest

from repro.core.optimizer import (
    COLUMNAR_BOUND_THRESHOLD,
    choose_executor_mode,
)
from repro.core.errors import PlanError
from repro.core.plan import (
    ColumnPredicate,
    ConstOp,
    DifferenceOp,
    FetchOp,
    IntersectOp,
    PlanBuilder,
    ProductOp,
    ProjectOp,
    RenameOp,
    SelectOp,
    UnionOp,
    UnitOp,
)
from repro.evaluator.columnar import ColumnBatch, Dictionary, ProductView
from repro.evaluator.executor import PlanExecutor
from repro.storage.counters import AccessCounter


@pytest.fixture
def psi1(fb_access):
    return next(c for c in fb_access if c.name == "psi1")


def both_modes(plan, fb_database, fb_indexes):
    """Execute ``plan`` on row and columnar kernels; assert identity."""
    results = {}
    for mode in ("row", "columnar"):
        executor = PlanExecutor(fb_database, fb_indexes, mode=mode)
        results[mode] = executor.execute(plan)
    assert results["row"].rows == results["columnar"].rows
    assert results["row"].columns == results["columnar"].columns
    assert results["columnar"].executor_mode == "columnar"
    assert results["columnar"].kernel_batches == len(plan.steps)
    return results["columnar"]


class TestDictionary:
    def test_encode_decode_roundtrip(self):
        dictionary = Dictionary()
        column = ["a", "b", "a", "c", "b"]
        codes = dictionary.encode_column(column)
        assert codes == [0, 1, 0, 2, 1]
        assert dictionary.decode_column(codes) == column
        # steady state: encoding again grows nothing and reuses codes
        assert dictionary.encode_column(["c", "a"]) == [2, 0]
        assert len(dictionary) == 3

    def test_mixed_type_column_stays_plain(self):
        dictionary = Dictionary()
        assert dictionary.encode_column(["a", 7, "b"]) is None

    def test_translate_maps_missing_codes_to_none(self):
        left, right = Dictionary(), Dictionary()
        left.encode_column(["x", "y", "z"])
        right.encode_column(["z", "x"])
        translated = left.translate_column([0, 1, 2], right)
        assert translated == [right.codes["x"], None, right.codes["z"]]

    def test_translation_cache_rebuilds_after_growth(self):
        left, right = Dictionary(), Dictionary()
        left.encode_column(["x", "y"])
        right.encode_column(["y"])
        assert left.translate_column([0, 1], right) == [None, 0]
        # the target learns "x": the cached table must be rebuilt, not reused
        right.encode_column(["x"])
        assert left.translate_column([0, 1], right) == [1, 0]


class TestColumnBatch:
    def test_from_rows_and_back(self):
        rows = [(1, "a"), (2, "b"), (1, "a")]
        batch = ColumnBatch.from_rows(("n", "s"), rows)
        assert len(batch) == 3
        assert batch.row_tuples() == rows
        assert batch.to_frozenset() == frozenset(rows)

    def test_empty_and_zero_width(self):
        empty = ColumnBatch.from_rows(("a",), [])
        assert len(empty) == 0 and empty.to_frozenset() == frozenset()
        unit = ColumnBatch.from_rows((), [(), ()])
        assert len(unit) == 2
        assert unit.to_frozenset() == frozenset({()})


class TestProductView:
    def test_materialize_matches_itertools_product(self):
        import itertools

        left = ColumnBatch.from_rows(("a",), [(1,), (2,)], distinct=True)
        right = ColumnBatch.from_rows(("b", "c"), [("x", 1), ("y", 2)], distinct=True)
        view = ProductView(("a", "b", "c"), (left, right))
        expected = {
            l + r for l, r in itertools.product(left.row_tuples(), right.row_tuples())
        }
        assert len(view) == 4
        assert view.to_frozenset() == expected
        assert view.materialize() is view.materialize()  # cached

    def test_empty_factor_empties_the_product(self):
        left = ColumnBatch.from_rows(("a",), [(1,)], distinct=True)
        right = ColumnBatch.empty(("b",))
        view = ProductView(("a", "b"), (left, right))
        assert len(view) == 0
        assert view.to_frozenset() == frozenset()

    def test_key_tuples_enumerates_distinct_combinations(self):
        left = ColumnBatch.from_rows(("a",), [(1,), (2,), (1,)], distinct=False)
        right = ColumnBatch.from_rows(("b",), [("x",), ("y",)], distinct=True)
        view = ProductView(("a", "b"), (left, right))
        # keys over (b, a): reorder swaps the factor-concatenation order
        keys = view.key_tuples(((0, (0,)), (1, (0,))), (1, 0))
        assert set(keys) == {("x", 1), ("x", 2), ("y", 1), ("y", 2)}


class TestKernelEdgeCases:
    def test_empty_fetch_propagates_empty_batches(
        self, fb_database, fb_indexes, fb_access, psi1
    ):
        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="nobody", column="friend.pid"), ["friend.pid"])
        t1 = builder.add(
            FetchOp(constraint=psi1, key_columns=("friend.pid",), inputs=(t0,)),
            ["friend.fid", "friend.pid"],
        )
        t2 = builder.add(ProjectOp(columns=("friend.fid",), inputs=(t1,)), ["friend.fid"])
        result = both_modes(builder.build(t2), fb_database, fb_indexes)
        assert result.rows == frozenset()

    def test_select_filtering_every_row(self, fb_database, fb_indexes, fb_access, psi1):
        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
        t1 = builder.add(
            FetchOp(constraint=psi1, key_columns=("friend.pid",), inputs=(t0,)),
            ["friend.fid", "friend.pid"],
        )
        t2 = builder.add(
            SelectOp(
                predicates=(ColumnPredicate("friend.pid", "=", "nobody"),),
                inputs=(t1,),
            ),
            ["friend.fid", "friend.pid"],
        )
        result = both_modes(builder.build(t2), fb_database, fb_indexes)
        assert result.rows == frozenset()

    def test_join_with_duplicate_build_keys(
        self, fb_database, fb_indexes, fb_access, psi1
    ):
        # friend fetched for two people, self-joined on the friend column:
        # every person pair sharing a friend — build side keys repeat.
        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
        t1 = builder.add(ConstOp(value="p1", column="friend.pid"), ["friend.pid"])
        t2 = builder.add(UnionOp(inputs=(t0, t1)), ["friend.pid"])
        t3 = builder.add(
            FetchOp(constraint=psi1, key_columns=("friend.pid",), inputs=(t2,)),
            ["friend.fid", "friend.pid"],
        )
        t4 = builder.add(
            RenameOp(
                mapping={"friend.fid": "other.fid", "friend.pid": "other.pid"},
                inputs=(t3,),
            ),
            ["other.fid", "other.pid"],
        )
        from repro.core.plan import HashJoinOp

        t5 = builder.add(
            HashJoinOp(
                pairs=(("friend.fid", "other.fid"),), residual=(), inputs=(t3, t4)
            ),
            ["friend.fid", "friend.pid", "other.fid", "other.pid"],
        )
        t6 = builder.add(
            ProjectOp(columns=("friend.pid", "other.pid"), inputs=(t5,)),
            ["friend.pid", "other.pid"],
        )
        result = both_modes(builder.build(t6), fb_database, fb_indexes)
        assert result.rows  # p0/p1 at least pair with themselves

    def test_set_operations(self, fb_database, fb_indexes, fb_access):
        builder = PlanBuilder(fb_access)
        t0 = builder.add(ConstOp(value=1, column="x"), ["x"])
        t1 = builder.add(ConstOp(value=2, column="x"), ["x"])
        t2 = builder.add(UnionOp(inputs=(t0, t1)), ["x"])
        t3 = builder.add(DifferenceOp(inputs=(t2, t1)), ["x"])
        t4 = builder.add(IntersectOp(inputs=(t2, t0)), ["x"])
        t5 = builder.add(UnionOp(inputs=(t3, t4)), ["x"])
        result = both_modes(builder.build(t5), fb_database, fb_indexes)
        assert result.rows == frozenset({(1,)})

    def test_zero_column_plan(self, fb_database, fb_indexes, fb_access):
        builder = PlanBuilder(fb_access)
        t0 = builder.add(UnitOp(), [])
        result = both_modes(builder.build(t0), fb_database, fb_indexes)
        assert result.rows == frozenset({()})

    def test_product_with_empty_side(self, fb_database, fb_indexes, fb_access, psi1):
        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="a"), ["a"])
        t1 = builder.add(ConstOp(value="nobody", column="friend.pid"), ["friend.pid"])
        t2 = builder.add(
            FetchOp(constraint=psi1, key_columns=("friend.pid",), inputs=(t1,)),
            ["friend.fid", "friend.pid"],
        )
        t3 = builder.add(ProductOp(inputs=(t0, t2)), ["a", "friend.fid", "friend.pid"])
        result = both_modes(builder.build(t3), fb_database, fb_indexes)
        assert result.rows == frozenset()


class TestObservability:
    def test_execution_result_surfaces_mode_and_counts(
        self, fb_database, fb_indexes, fb_access, psi1
    ):
        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
        t1 = builder.add(
            FetchOp(constraint=psi1, key_columns=("friend.pid",), inputs=(t0,)),
            ["friend.fid", "friend.pid"],
        )
        plan = builder.build(t1)
        executor = PlanExecutor(fb_database, fb_indexes, mode="columnar")
        result = executor.execute(plan)
        assert result.executor_mode == "columnar"
        assert result.kernel_batches == 2
        assert result.rows_processed == sum(result.step_cardinalities.values())
        stats = executor.stats()
        assert stats["columnar_executions"] == 1
        assert stats["row_executions"] == 0
        assert stats["kernel_batches"] == 2
        assert stats["rows_processed"] == result.rows_processed

    def test_auto_mode_records_its_choice(
        self, fb_database, fb_indexes, fb_access, psi1
    ):
        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
        t1 = builder.add(
            FetchOp(constraint=psi1, key_columns=("friend.pid",), inputs=(t0,)),
            ["friend.fid", "friend.pid"],
        )
        plan = builder.build(t1)
        executor = PlanExecutor(fb_database, fb_indexes, mode="auto")
        result = executor.execute(plan)
        expected = choose_executor_mode(plan)
        assert result.executor_mode == expected
        stats = executor.stats()
        assert stats[f"auto_{expected}_choices"] == 1

    def test_columnar_access_accounting_matches_row(
        self, fb_database, fb_indexes, fb_access, psi1
    ):
        builder = PlanBuilder(fb_access, occurrences={"friend": "friend"})
        t0 = builder.add(ConstOp(value="p0", column="friend.pid"), ["friend.pid"])
        t1 = builder.add(ConstOp(value="p1", column="friend.pid"), ["friend.pid"])
        t2 = builder.add(UnionOp(inputs=(t0, t1)), ["friend.pid"])
        t3 = builder.add(
            FetchOp(constraint=psi1, key_columns=("friend.pid",), inputs=(t2,)),
            ["friend.fid", "friend.pid"],
        )
        plan = builder.build(t3)
        counters = {}
        for mode in ("row", "columnar"):
            counter = AccessCounter()
            PlanExecutor(fb_database, fb_indexes, mode=mode).execute(plan, counter)
            counters[mode] = counter
        assert counters["row"].fetched == counters["columnar"].fetched
        assert counters["row"].index_probes == counters["columnar"].index_probes
        assert counters["row"].per_relation == counters["columnar"].per_relation


class TestLookupMany:
    def test_bulk_lookup_matches_per_key_lookups(self, fb_indexes, psi1):
        index = fb_indexes.index_for(psi1)
        keys = list(index.keys())[:5] + [("nobody",)]
        single_counter = AccessCounter()
        singles = []
        for key in keys:
            singles.extend(index.lookup(key, single_counter))
        bulk_counter = AccessCounter()
        bulk = index.lookup_many(keys, bulk_counter)
        assert sorted(bulk) == sorted(singles)
        assert bulk_counter.fetched == single_counter.fetched
        assert bulk_counter.index_probes == single_counter.index_probes == len(keys)
        assert bulk_counter.per_relation == single_counter.per_relation


class _StubPlan:
    def __init__(self, bound):
        self._bound = bound

    def access_bound(self):
        if isinstance(self._bound, Exception):
            raise self._bound
        return self._bound


class TestModeChoice:
    def test_threshold_splits_point_and_analytic_plans(self):
        assert choose_executor_mode(_StubPlan(COLUMNAR_BOUND_THRESHOLD - 1)) == "row"
        assert choose_executor_mode(_StubPlan(COLUMNAR_BOUND_THRESHOLD)) == "columnar"

    def test_unboundable_plan_falls_back_to_row(self):
        assert choose_executor_mode(_StubPlan(PlanError("no bound"))) == "row"

    def test_unknown_mode_rejected(self, fb_database, fb_indexes):
        with pytest.raises(PlanError):
            PlanExecutor(fb_database, fb_indexes, mode="vectorized")
