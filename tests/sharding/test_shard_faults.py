"""The shard-fetch-seam fault injector: determinism, modes, clean teardown."""

import pytest

from repro.core.errors import MaintenanceError, TransientFault
from repro.discovery.maintenance import Update
from repro.sharding import ShardFaultInjector, ShardFaultSpec, build_topology
from repro.storage.counters import AccessCounter
from repro.workloads import facebook


@pytest.fixture()
def shard():
    database = facebook.generate(scale=20, seed=9)
    access = facebook.access_schema(database.schema)
    router = build_topology(database, access, shards=1, backends="memory")
    return router.shards[0]


def psi1(shard):
    return next(c for c in shard.engine.access_schema if c.name == "psi1")


def a_fetch(shard, counter=None):
    return shard.fetch(psi1(shard), "friend", [("p0",)], counter)


def a_batch(shard, size=4):
    rows = sorted(shard.database.relation("friend").rows)[:size]
    return [Update.delete("friend", row) for row in rows]


class TestBasicFaults:
    def test_fail_every_is_deterministic_and_fires_before_the_call(self, shard):
        injector = ShardFaultInjector(seed=0)
        injector.install_shard(shard)
        injector.configure(f"{shard.name}.fetch", ShardFaultSpec(fail_every=2))
        counter = AccessCounter()
        a_fetch(shard, counter)
        touched_after_success = counter.fetched
        with pytest.raises(TransientFault, match="deterministic shard fault"):
            a_fetch(shard, counter)
        # The error fired *before* the index lookup ran: a failed-then-
        # failed-over fetch must never double-count accessed tuples.
        assert counter.fetched == touched_after_success

    def test_error_rate_schedule_reproducible_across_installs(self, shard):
        def schedule(seed):
            injector = ShardFaultInjector(seed=seed)
            injector.install_shard(shard)
            injector.configure(f"{shard.name}.fetch", ShardFaultSpec(error_rate=0.5))
            outcomes = []
            for _ in range(12):
                try:
                    a_fetch(shard)
                    outcomes.append("ok")
                except TransientFault:
                    outcomes.append("fault")
            injector.uninstall()
            return outcomes

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)  # per-seed streams, not a fixed script

    def test_kill_fails_every_fetch_and_write(self, shard):
        injector = ShardFaultInjector(seed=0)
        injector.kill(shard)
        with pytest.raises(TransientFault):
            a_fetch(shard)
        before = set(shard.database.relation("friend").rows)
        with pytest.raises(TransientFault):
            shard.apply_updates(a_batch(shard))
        assert set(shard.database.relation("friend").rows) == before


class TestWriteFaults:
    def test_torn_write_applies_a_strict_prefix_then_raises(self, shard):
        injector = ShardFaultInjector(seed=0)
        injector.install_shard(shard)
        injector.configure(f"{shard.name}.write", ShardFaultSpec(torn_write_every=1))
        batch = a_batch(shard, size=4)
        before = set(shard.database.relation("friend").rows)
        with pytest.raises(MaintenanceError, match="torn") as info:
            shard.apply_updates(batch)
        report = info.value.report
        assert report.failed
        assert report.applied == 2  # len(batch) // 2
        assert report.failed_update == batch[2]
        after = set(shard.database.relation("friend").rows)
        # Exactly the prefix is gone — the mid-batch abort contract.
        assert before - after == {u.row for u in batch[:2]}

    def test_lost_write_mutates_nothing_and_reports_success(self, shard):
        injector = ShardFaultInjector(seed=0)
        injector.install_shard(shard)
        injector.configure(f"{shard.name}.write", ShardFaultSpec(lost_write_every=1))
        before = set(shard.database.relation("friend").rows)
        clock_before = shard.database.clock.snapshot(("friend",))
        report = shard.apply_updates(a_batch(shard))
        # The one failure mode no exception surfaces: an empty report, no
        # rows changed, no clock bump — detectable only by a later
        # snapshot-validation check against the authoritative clock.
        assert report.applied == 0 and not report.failed
        assert set(shard.database.relation("friend").rows) == before
        assert shard.database.clock.snapshot(("friend",)) == clock_before


class TestSnapshotFaults:
    def test_stale_snapshot_replays_the_previous_epoch_token(self, shard):
        injector = ShardFaultInjector(seed=0)
        injector.install_shard(shard)
        injector.configure(
            f"{shard.name}.snapshot", ShardFaultSpec(stale_snapshot_rate=1.0)
        )
        first = shard.snapshot(("friend",))  # no previous token yet: clean
        shard.database.clock.bump(("friend",))
        stale = shard.snapshot(("friend",))
        assert stale == first
        # The replayed token must fail validation — that is the whole point:
        # the router's merge guard refuses to serve through it.
        assert not shard.validate(("friend",), stale)


class TestTeardownAndStats:
    def test_uninstall_restores_originals(self, shard):
        injector = ShardFaultInjector(seed=0)
        injector.kill(shard)
        with pytest.raises(TransientFault):
            a_fetch(shard)
        injector.uninstall()
        assert "fetch" not in shard.__dict__  # instance attribute removed
        assert a_fetch(shard)  # back to the class implementation

    def test_install_is_idempotent(self, shard):
        injector = ShardFaultInjector(seed=0)
        injector.install_shard(shard)
        injector.install_shard(shard)  # no double wrap
        injector.uninstall()
        assert "fetch" not in shard.__dict__

    def test_context_manager_uninstalls(self, shard):
        with ShardFaultInjector(seed=0) as injector:
            injector.kill(shard)
            with pytest.raises(TransientFault):
                a_fetch(shard)
        assert a_fetch(shard)

    def test_stats_report_calls_and_injections(self, shard):
        injector = ShardFaultInjector(seed=0)
        injector.install_shard(shard)
        injector.configure(f"{shard.name}.fetch", ShardFaultSpec(fail_every=2))
        a_fetch(shard)
        with pytest.raises(TransientFault):
            a_fetch(shard)
        stats = injector.stats()
        assert stats[f"{shard.name}.fetch"] == {"calls": 2, "injected": 1}

    def test_inactive_spec_disarms_a_site(self, shard):
        injector = ShardFaultInjector(seed=0)
        injector.install_shard(shard)
        site = f"{shard.name}.fetch"
        injector.configure(site, ShardFaultSpec(fail_every=1))
        with pytest.raises(TransientFault):
            a_fetch(shard)
        injector.configure(site, ShardFaultSpec())
        assert a_fetch(shard)
