"""Property: row and columnar kernels agree on every covered plan.

Random queries over the TFACC workload are prepared through the full C2-C4
pipeline (coverage, minimization, planning, peephole optimization) and the
resulting plan is executed by both kernel families over the same indexes.
The frozen results must be identical to each other *and* to the reference
evaluator — the executor-mode seam may never change answers, only speed.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import prepare_query
from repro.evaluator.algebra import evaluate
from repro.evaluator.executor import PlanExecutor
from repro.storage.index import IndexSet
from repro.workloads import WORKLOADS, RandomQueryGenerator

WORKLOAD = WORKLOADS["TFACC"]
_DATABASE = WORKLOAD.database(scale=30, seed=13)
_INDEXES = IndexSet.build(_DATABASE, WORKLOAD.access_schema, check=False)
_EXECUTORS = {
    mode: PlanExecutor(_DATABASE, _INDEXES, mode=mode)
    for mode in ("row", "columnar", "auto")
}
_GENERATOR_CACHE: dict[int, RandomQueryGenerator] = {}


def generated_query(seed: int, n_sel: int, n_join: int, n_unidiff: int):
    generator = _GENERATOR_CACHE.get(seed)
    if generator is None:
        generator = RandomQueryGenerator(WORKLOAD, database=_DATABASE, seed=seed)
        _GENERATOR_CACHE[seed] = generator
    return generator.generate(n_sel=n_sel, n_join=n_join, n_unidiff=n_unidiff)


query_parameters = st.tuples(
    st.integers(min_value=0, max_value=500),
    st.integers(min_value=2, max_value=7),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=2),
)


class TestRowColumnarEquivalence:
    @given(query_parameters)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_modes_agree_with_each_other_and_the_reference(self, parameters):
        query = generated_query(*parameters)
        prepared = prepare_query(query, WORKLOAD.access_schema)
        if not prepared.covered:
            return
        plan = prepared.executable
        results = {
            mode: executor.execute(plan) for mode, executor in _EXECUTORS.items()
        }
        reference = frozenset(evaluate(prepared.target, _DATABASE))
        assert results["row"].rows == reference
        assert results["columnar"].rows == reference
        assert results["auto"].rows == reference
        assert results["columnar"].executor_mode == "columnar"
        assert results["auto"].executor_mode in ("row", "columnar")

    @given(query_parameters)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_access_accounting_is_mode_independent(self, parameters):
        from repro.storage.counters import AccessCounter

        query = generated_query(*parameters)
        prepared = prepare_query(query, WORKLOAD.access_schema)
        if not prepared.covered:
            return
        plan = prepared.executable
        counters = {}
        for mode in ("row", "columnar"):
            counter = AccessCounter()
            _EXECUTORS[mode].execute(plan, counter)
            counters[mode] = counter
        assert counters["row"].fetched == counters["columnar"].fetched
        assert counters["row"].per_relation == counters["columnar"].per_relation
