"""Property-based tests for the FD engine (closure and implication)."""

from hypothesis import given, settings, strategies as st

from repro.core.fd import FDSet, FunctionalDependency

TOKENS = ["a", "b", "c", "d", "e", "f"]

token_sets = st.sets(st.sampled_from(TOKENS), min_size=0, max_size=3)
nonempty_token_sets = st.sets(st.sampled_from(TOKENS), min_size=1, max_size=3)


@st.composite
def fd_sets(draw):
    count = draw(st.integers(min_value=0, max_value=8))
    dependencies = []
    for _ in range(count):
        lhs = draw(token_sets)
        rhs = draw(nonempty_token_sets)
        dependencies.append(FunctionalDependency.of(lhs, rhs))
    return FDSet(dependencies)


class TestClosureProperties:
    @given(fd_sets(), token_sets)
    @settings(max_examples=60, deadline=None)
    def test_closure_contains_seed(self, fds, seed):
        assert set(seed) <= fds.closure(seed)

    @given(fd_sets(), token_sets)
    @settings(max_examples=60, deadline=None)
    def test_closure_idempotent(self, fds, seed):
        once = fds.closure(seed)
        assert fds.closure(once) == once

    @given(fd_sets(), token_sets, token_sets)
    @settings(max_examples=60, deadline=None)
    def test_closure_monotone_in_seed(self, fds, smaller, extra):
        larger = set(smaller) | set(extra)
        assert fds.closure(smaller) <= fds.closure(larger)

    @given(fd_sets(), fd_sets(), token_sets)
    @settings(max_examples=60, deadline=None)
    def test_closure_monotone_in_fds(self, first, second, seed):
        combined = FDSet(list(first) + list(second))
        assert first.closure(seed) <= combined.closure(seed)

    @given(fd_sets(), token_sets)
    @settings(max_examples=60, deadline=None)
    def test_every_fired_fd_justified(self, fds, seed):
        """Each token in the closure but not the seed is the RHS of an FD whose
        LHS is inside the closure (soundness of the derivation)."""
        closure = fds.closure(seed)
        for token in closure - set(seed):
            assert any(
                token in dependency.rhs and dependency.lhs <= closure
                for dependency in fds
            )

    @given(fd_sets(), token_sets)
    @settings(max_examples=60, deadline=None)
    def test_closure_is_fixpoint(self, fds, seed):
        """No FD with satisfied LHS adds anything outside the closure (completeness)."""
        closure = fds.closure(seed)
        for dependency in fds:
            if dependency.lhs <= closure:
                assert dependency.rhs <= closure


class TestImplicationProperties:
    @given(fd_sets(), token_sets, token_sets)
    @settings(max_examples=60, deadline=None)
    def test_implication_matches_closure(self, fds, lhs, rhs):
        assert fds.implies(lhs, rhs) == (set(rhs) <= fds.closure(lhs))

    @given(fd_sets(), nonempty_token_sets)
    @settings(max_examples=40, deadline=None)
    def test_reflexive_implication(self, fds, attrs):
        assert fds.implies(attrs, attrs)

    @given(fd_sets())
    @settings(max_examples=40, deadline=None)
    def test_member_fds_are_implied(self, fds):
        for dependency in fds:
            assert fds.implies_fd(dependency)

    @given(fd_sets())
    @settings(max_examples=30, deadline=None)
    def test_minimal_cover_preserves_implication(self, fds):
        reduced = fds.minimal_cover_step()
        for dependency in fds:
            assert reduced.implies_fd(dependency)
        for dependency in reduced:
            assert fds.implies_fd(dependency)
