"""Experiment harness reproducing the tables and figures of Section 8."""

from .metrics import ExperimentTable, format_ratio, format_seconds
from .experiments import (
    constraints_experiment,
    coverage_experiment,
    efficiency_experiment,
    index_size_experiment,
    join_experiment,
    maintenance_experiment,
    mina_effect_experiment,
    scale_experiment,
    select_covered_queries,
    selection_experiment,
    unidiff_experiment,
)

__all__ = [
    "ExperimentTable",
    "constraints_experiment",
    "coverage_experiment",
    "efficiency_experiment",
    "format_ratio",
    "format_seconds",
    "index_size_experiment",
    "join_experiment",
    "maintenance_experiment",
    "mina_effect_experiment",
    "scale_experiment",
    "select_covered_queries",
    "selection_experiment",
    "unidiff_experiment",
]
