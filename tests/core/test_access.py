"""Unit tests for access constraints and access schemas."""

import pytest

from repro.core.access import AccessConstraint, AccessSchema
from repro.core.errors import AccessConstraintError
from repro.core.schema import DatabaseSchema


class TestAccessConstraint:
    def test_of_accepts_strings(self):
        constraint = AccessConstraint.of("friend", "pid", "fid", 5000)
        assert constraint.lhs == frozenset({"pid"})
        assert constraint.rhs == frozenset({"fid"})
        assert constraint.bound == 5000

    def test_of_accepts_iterables(self):
        constraint = AccessConstraint.of("dine", ["pid", "year"], ["cid"], 31)
        assert constraint.lhs == frozenset({"pid", "year"})

    def test_empty_lhs_allowed(self):
        constraint = AccessConstraint.of("dine", (), "month", 12)
        assert constraint.lhs == frozenset()

    def test_empty_rhs_rejected(self):
        with pytest.raises(AccessConstraintError):
            AccessConstraint.of("dine", "pid", (), 5)

    def test_non_positive_bound_rejected(self):
        with pytest.raises(AccessConstraintError):
            AccessConstraint.of("dine", "pid", "cid", 0)

    def test_is_functional_dependency(self):
        assert AccessConstraint.of("cafe", "cid", "city", 1).is_functional_dependency
        assert not AccessConstraint.of("friend", "pid", "fid", 5000).is_functional_dependency

    def test_is_indexing(self):
        assert AccessConstraint.of("dine", ["pid", "cid"], ["pid", "cid"], 1).is_indexing
        assert not AccessConstraint.of("dine", ["pid", "cid"], ["pid", "cid"], 2).is_indexing
        assert not AccessConstraint.of("cafe", "cid", "city", 1).is_indexing

    def test_is_unit(self):
        assert AccessConstraint.of("cafe", "cid", "city", 1).is_unit
        assert not AccessConstraint.of("dine", ["pid", "year"], "cid", 31).is_unit

    def test_size(self):
        constraint = AccessConstraint.of("dine", ["pid", "year", "month"], "cid", 31)
        assert constraint.size == 5

    def test_validate_against_schema(self, fb_schema):
        AccessConstraint.of("friend", "pid", "fid", 10).validate(fb_schema)
        with pytest.raises(AccessConstraintError, match="unknown relation"):
            AccessConstraint.of("nope", "a", "b", 1).validate(fb_schema)
        with pytest.raises(AccessConstraintError, match="not in relation"):
            AccessConstraint.of("friend", "pid", "city", 1).validate(fb_schema)

    def test_actualize_renames_relation_only(self):
        constraint = AccessConstraint.of("dine", "pid", "cid", 31, name="psi")
        actualized = constraint.actualize("dine_2")
        assert actualized.relation == "dine_2"
        assert actualized.lhs == constraint.lhs
        assert actualized.bound == constraint.bound
        assert actualized.name == "psi"

    def test_str_rendering(self):
        constraint = AccessConstraint.of("cafe", "cid", "city", 1)
        assert "cafe" in str(constraint)
        assert "1" in str(constraint)


class TestAccessSchema:
    def test_size_measures(self, fb_access):
        assert len(fb_access) == 4  # ||A||
        assert fb_access.size == sum(c.size for c in fb_access)  # |A|
        assert fb_access.total_bound == 5000 + 31 + 1 + 1

    def test_for_relation(self, fb_access):
        assert len(fb_access.for_relation("dine")) == 2
        assert fb_access.for_relation("unknown") == ()

    def test_duplicate_add_is_noop(self, fb_access):
        before = len(fb_access)
        fb_access.add(AccessConstraint.of("friend", "pid", "fid", 5000, name="psi1"))
        assert len(fb_access) == before

    def test_validation_on_add(self, fb_schema):
        schema = AccessSchema(schema=fb_schema)
        with pytest.raises(AccessConstraintError):
            schema.add(AccessConstraint.of("friend", "pid", "bogus", 2))

    def test_restrict_and_without(self, fb_access):
        constraints = list(fb_access)
        subset = fb_access.restrict(constraints[:2])
        assert len(subset) == 2
        without = fb_access.without(constraints[0])
        assert constraints[0] not in without
        assert len(without) == 3

    def test_subset_fraction(self, fb_access):
        assert len(fb_access.subset_fraction(0.5)) == 2
        assert len(fb_access.subset_fraction(1.0)) == 4
        assert len(fb_access.subset_fraction(0.0)) == 0
        with pytest.raises(AccessConstraintError):
            fb_access.subset_fraction(1.5)

    def test_sample_fraction_deterministic(self, fb_access):
        first = list(fb_access.sample_fraction(0.5, seed=3))
        second = list(fb_access.sample_fraction(0.5, seed=3))
        assert first == second
        assert len(first) == 2

    def test_actualize_copies_constraints_per_occurrence(self, fb_access):
        actualized = fb_access.actualize(
            {"dine": "dine", "dine_2": "dine", "cafe": "cafe"}
        )
        assert len(actualized.for_relation("dine")) == 2
        assert len(actualized.for_relation("dine_2")) == 2
        assert len(actualized.for_relation("cafe")) == 1
        assert len(actualized.for_relation("friend")) == 0

    def test_equality_is_set_based(self, fb_schema):
        a = AccessSchema([AccessConstraint.of("friend", "pid", "fid", 5)], schema=fb_schema)
        b = AccessSchema([AccessConstraint.of("friend", "pid", "fid", 5)], schema=fb_schema)
        assert a == b
