"""Tests for workload-level access-constraint selection (Section 9 future work)."""

import pytest

from repro.core.coverage import is_covered
from repro.discovery.workload_cover import cover_workload, cover_workload_from_data
from repro.workloads import WORKLOADS, RandomQueryGenerator, facebook


@pytest.fixture
def fb_queries():
    return [
        facebook.query_q1(),
        facebook.query_q3(),
        facebook.query_q0_prime(),
        facebook.query_q2(),  # not coverable under A0 at all
    ]


class TestCoverWorkload:
    def test_covers_all_coverable_queries(self, fb_queries, fb_access):
        result = cover_workload(fb_queries, fb_access)
        assert set(result.covered_queries) == {0, 1, 2}
        assert result.uncovered_queries == (3,)
        assert 0 < result.coverage_ratio < 1
        for index in result.covered_queries:
            assert is_covered(fb_queries[index], result.selected)

    def test_selection_is_minimal_for_covered_queries(self, fb_queries, fb_access):
        result = cover_workload(fb_queries, fb_access)
        for constraint in result.selected:
            reduced = result.selected.without(constraint)
            still_all_covered = all(
                is_covered(fb_queries[index], reduced) for index in result.covered_queries
            )
            assert not still_all_covered, f"{constraint} is redundant"

    def test_cost_not_worse_than_full_schema(self, fb_queries, fb_access):
        result = cover_workload(fb_queries, fb_access)
        assert result.cost <= sum(c.bound for c in fb_access)

    def test_usefulness_reported(self, fb_queries, fb_access):
        result = cover_workload(fb_queries, fb_access)
        assert set(result.usefulness) == set(result.selected)
        assert all(count >= 1 for count in result.usefulness.values())

    def test_max_constraints_budget(self, fb_queries, fb_access):
        result = cover_workload(fb_queries, fb_access, max_constraints=2)
        assert len(result.selected) <= 2

    def test_empty_workload(self, fb_access):
        result = cover_workload([], fb_access)
        assert result.covered_queries == ()
        assert result.uncovered_queries == ()
        assert len(result.selected) == 0

    def test_single_covered_query_matches_per_query_minimization(self, fb_access):
        """For a single query the workload cover also yields a covering subset."""
        query = facebook.query_q1()
        result = cover_workload([query], fb_access)
        assert result.covered_queries == (0,)
        assert is_covered(query, result.selected)


class TestCoverWorkloadOnGeneratedQueries:
    def test_tfacc_workload_cover(self):
        workload = WORKLOADS["TFACC"]
        generator = RandomQueryGenerator(workload, seed=51, sample_scale=40)
        queries = [q for _, q in generator.generate_batch(12, unidiff_range=(0, 1))]
        result = cover_workload(queries, workload.access_schema)
        # every query that the full schema covers must be covered by the selection
        expected = {
            index
            for index, query in enumerate(queries)
            if is_covered(query, workload.access_schema)
        }
        assert set(result.covered_queries) == expected
        assert len(result.selected) <= len(workload.access_schema)

    def test_cover_from_mined_candidates(self):
        database = facebook.generate(scale=30, seed=17)
        queries = [facebook.query_q1(), facebook.query_q3()]
        result = cover_workload_from_data(queries, database)
        for index in result.covered_queries:
            assert is_covered(queries[index], result.selected)
