"""Hash and range partitioning of relations across shards.

A partitioner assigns every tuple of every relation to exactly one shard,
keyed on one *partition attribute* per relation (the first attribute of the
relation schema unless overridden).  Two schemes are provided:

* :class:`HashPartitioner` — ``shard = stable_hash(key) % n``; spreads any
  key distribution evenly and needs no knowledge of the data.
* :class:`RangePartitioner` — per-relation sorted cut points; shard ``i``
  owns keys in ``[boundary[i-1], boundary[i])``, i.e. a boundary value is
  the *inclusive lower bound* of the shard to its right.  Built either from
  explicit boundaries or from observed data quantiles
  (:meth:`RangePartitioner.from_database`).

Hashing must be deterministic across processes (Python's ``hash`` of
strings is salted per interpreter), so keys are hashed via CRC-32 of their
``repr``.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Iterable, Mapping, Sequence

from ..core.errors import StorageError
from ..core.schema import DatabaseSchema
from ..storage.database import Database


def stable_hash(value: object) -> int:
    """A process-independent hash of a partition-key value."""
    return zlib.crc32(repr(value).encode("utf-8"))


class Partitioner:
    """Base class: per-relation key attributes + the shard assignment rule."""

    def __init__(
        self,
        schema: DatabaseSchema,
        shard_count: int,
        keys: Mapping[str, str] | None = None,
    ):
        if shard_count < 1:
            raise StorageError(f"shard count must be >= 1, got {shard_count}")
        self.schema = schema
        self.shard_count = shard_count
        self._attributes: dict[str, str] = {}
        self._positions: dict[str, int] = {}
        overrides = dict(keys or {})
        for relation in schema:
            attribute = overrides.pop(relation.name, relation.attributes[0])
            if attribute not in relation.attributes:
                raise StorageError(
                    f"partition key {attribute!r} is not an attribute of "
                    f"relation {relation.name!r}"
                )
            self._attributes[relation.name] = attribute
            self._positions[relation.name] = relation.position(attribute)
        if overrides:
            raise StorageError(
                f"partition keys given for unknown relations {sorted(overrides)}"
            )

    # -- assignment ---------------------------------------------------------------
    def attribute(self, relation: str) -> str:
        """The partition attribute of ``relation``."""
        try:
            return self._attributes[relation]
        except KeyError:
            raise StorageError(f"no partitioning defined for relation {relation!r}") from None

    def shard_for_value(self, relation: str, value: object) -> int:
        """The shard owning rows of ``relation`` whose key attribute equals ``value``."""
        raise NotImplementedError

    def shard_for_row(self, relation: str, row: Sequence) -> int:
        """The shard owning ``row`` of ``relation`` (positional tuple)."""
        return self.shard_for_value(relation, tuple(row)[self._positions[relation]])

    # -- bulk splitting ---------------------------------------------------------------
    def partition(self, database: Database) -> list[Database]:
        """Split ``database`` into ``shard_count`` disjoint fragment databases.

        The input database is left untouched; each fragment holds exactly the
        rows this partitioner assigns to its shard, so the union of the
        fragments is the original data and no row appears twice.
        """
        fragments = [Database(self.schema) for _ in range(self.shard_count)]
        for relation in database:
            name = relation.schema.name
            buckets: list[list[tuple]] = [[] for _ in range(self.shard_count)]
            for row in relation:
                buckets[self.shard_for_row(name, row)].append(row)
            for fragment, rows in zip(fragments, buckets):
                if rows:
                    fragment.insert_many(name, rows)
        return fragments


class PartitionOverlay(Partitioner):
    """A base partitioner plus an ordered list of rebalance overrides.

    Online rebalancing moves a key range between shards without rebuilding
    the base partition map: each override is ``(lo, hi, src, dst)`` on one
    relation, read as "keys in ``[lo, hi)`` that the map *so far* assigns to
    ``src`` now belong to ``dst``".  The ``src`` guard is what makes
    overrides sound under hash partitioning: a plain range→dst rule would
    also remap keys owned by *other* shards whose rows were never moved.
    Overrides chain in application order, so a range moved twice follows
    both hops.  Keys that do not compare with the range bounds (mixed-type
    hash keys) are left with their current owner — such keys were never
    part of the migrated range.

    The overlay shares the base partitioner's schema, key attributes and
    shard count, so it is a drop-in :class:`Partitioner` everywhere the
    router consults one (fetch routing, write routing, bulk splitting).
    """

    def __init__(self, base: Partitioner):
        if isinstance(base, PartitionOverlay):
            raise StorageError("refusing to stack a PartitionOverlay on another")
        self.base = base
        self.schema = base.schema
        self.shard_count = base.shard_count
        self._attributes = base._attributes
        self._positions = base._positions
        self._overrides: dict[str, list[tuple]] = {}

    def add_override(self, relation: str, lo, hi, src: int, dst: int) -> None:
        """Append one migration rule; effective for all later assignments."""
        for shard in (src, dst):
            if not (0 <= shard < self.shard_count):
                raise StorageError(
                    f"override shard {shard} out of range for "
                    f"{self.shard_count} shards"
                )
        if src == dst:
            raise StorageError("override source and destination must differ")
        self._overrides.setdefault(relation, []).append((lo, hi, src, dst))

    def overrides(self, relation: str) -> tuple[tuple, ...]:
        return tuple(self._overrides.get(relation, ()))

    @property
    def override_count(self) -> int:
        return sum(len(rules) for rules in self._overrides.values())

    def shard_for_value(self, relation: str, value: object) -> int:
        owner = self.base.shard_for_value(relation, value)
        for lo, hi, src, dst in self._overrides.get(relation, ()):
            if owner != src:
                continue
            try:
                moved = lo <= value < hi
            except TypeError:
                continue
            if moved:
                owner = dst
        return owner


class HashPartitioner(Partitioner):
    """``shard = stable_hash(key) % shard_count`` — even, data-oblivious spread."""

    def shard_for_value(self, relation: str, value: object) -> int:
        return stable_hash(value) % self.shard_count


class RangePartitioner(Partitioner):
    """Per-relation sorted boundaries; a boundary opens the shard to its right.

    ``boundaries[relation]`` holds ``shard_count - 1`` sorted cut points:
    keys strictly below ``boundaries[0]`` go to shard 0, keys in
    ``[boundaries[i-1], boundaries[i])`` to shard ``i``, and keys at or above
    the last boundary to the last shard.  A key exactly equal to a boundary
    therefore belongs to the *upper* shard — the partition-boundary
    convention the router tests pin down.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        shard_count: int,
        boundaries: Mapping[str, Sequence],
        keys: Mapping[str, str] | None = None,
    ):
        super().__init__(schema, shard_count, keys)
        self._boundaries: dict[str, tuple] = {}
        for relation, cuts in boundaries.items():
            ordered = tuple(cuts)
            if list(ordered) != sorted(ordered):
                raise StorageError(
                    f"range boundaries for {relation!r} must be sorted, got {ordered}"
                )
            if len(ordered) != shard_count - 1:
                raise StorageError(
                    f"range partitioning over {shard_count} shards needs "
                    f"{shard_count - 1} boundaries for {relation!r}, got {len(ordered)}"
                )
            self._boundaries[relation] = ordered

    def shard_for_value(self, relation: str, value: object) -> int:
        try:
            cuts = self._boundaries[relation]
        except KeyError:
            raise StorageError(
                f"no range boundaries defined for relation {relation!r}"
            ) from None
        return bisect_right(cuts, value)

    @classmethod
    def from_database(
        cls,
        database: Database,
        shard_count: int,
        keys: Mapping[str, str] | None = None,
    ) -> "RangePartitioner":
        """Derive quantile cut points from the observed key values.

        Each relation's distinct key values are sorted and cut into
        ``shard_count`` even slices; relations with fewer distinct values
        than shards get degenerate (repeated-free, possibly short-ranged)
        boundaries that park all rows on the low shards.
        """
        partitioner = cls.__new__(cls)
        Partitioner.__init__(partitioner, database.schema, shard_count, keys)
        partitioner._boundaries = {}
        for relation in database:
            name = relation.schema.name
            position = partitioner._positions[name]
            values = sorted({row[position] for row in relation})
            cuts = []
            for i in range(1, shard_count):
                if not values:
                    break
                index = min(len(values) - 1, (i * len(values)) // shard_count)
                cuts.append(values[index])
            # A short or duplicate-ridden cut list breaks the sorted/length
            # contract; pad with the maximum so the upper shards sit empty.
            while len(cuts) < shard_count - 1:
                cuts.append(values[-1] if values else 0)
            deduped: list = []
            for cut in cuts:
                deduped.append(max(cut, deduped[-1]) if deduped else cut)
            partitioner._boundaries[name] = tuple(deduped)
        return partitioner
