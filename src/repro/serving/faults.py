"""Deterministic, seedable fault injection at the serving tier's seams.

Robustness code that is never exercised is decoration.  This module wraps
the three seams every request crosses —

* **executor** — bounded-plan execution
  (:meth:`repro.evaluator.executor.PlanExecutor.execute`, wrapped per engine
  instance);
* **fallback** — the unbounded conventional evaluation
  (``BoundedEngine._fallback_evaluator``, an attribute precisely so it can
  be wrapped without monkey-patching the module);
* **storage writes** — :meth:`repro.storage.relation.RelationInstance.insert`
  / ``delete`` on chosen relation instances, which is where a mid-batch
  write failure leaves :func:`~repro.discovery.maintenance.apply_updates`
  partially applied

— and perturbs calls through them according to a :class:`FaultSpec`:
added latency, random transient errors, and deterministic every-Nth-call
failures.  All randomness comes from per-site ``random.Random`` streams
derived from one seed, so a soak run is exactly reproducible and fault
schedules at one site never shift when another site is reconfigured.

Injected errors are :class:`~repro.core.errors.TransientFault` — the typed,
retryable fault the :class:`~repro.serving.policy.RetryPolicy` knows how to
handle.  Write-seam faults are raised *before* the underlying mutation runs,
so storage and the constraint indexes can never diverge: the failure mode
injected is "this row (and the rest of the batch) did not happen", which is
exactly the partial-batch scenario the maintenance path must survive.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from ..core.errors import TransientFault


@dataclass(frozen=True)
class FaultSpec:
    """What to inject at one site.

    ``latency`` (+ uniform ``latency_jitter``) is slept before the call;
    ``error_rate`` raises a :class:`TransientFault` with that probability;
    ``fail_every`` deterministically fails every Nth call through the site
    (counted from 1, so ``fail_every=3`` fails calls 3, 6, 9, …).  Checks run
    in that order; an injected failure still pays the injected latency, like
    a real slow-then-dead dependency.
    """

    latency: float = 0.0
    latency_jitter: float = 0.0
    error_rate: float = 0.0
    fail_every: int | None = None

    @property
    def active(self) -> bool:
        return (
            self.latency > 0.0
            or self.latency_jitter > 0.0
            or self.error_rate > 0.0
            or self.fail_every is not None
        )


class FaultInjector:
    """Wraps callables at named sites and perturbs calls deterministically.

    One injector owns every site of one serving stack.  ``configure(site,
    spec)`` arms a site; ``install_*`` helpers wrap the concrete seams by
    replacing *instance attributes* (never classes or modules), and
    ``uninstall()`` restores every original, so an injector can be mounted
    inside a test and torn down without trace.
    """

    def __init__(self, seed: int = 0, sleeper: Callable[[float], None] = time.sleep):
        self.seed = seed
        self.sleeper = sleeper
        self._specs: dict[str, FaultSpec] = {}
        self._rngs: dict[str, random.Random] = {}
        self._calls: dict[str, int] = {}
        #: per-site count of TransientFaults actually raised
        self.injected: dict[str, int] = {}
        self._installed: list[tuple[object, str, object]] = []

    # -- configuration ---------------------------------------------------------
    def configure(self, site: str, spec: FaultSpec) -> None:
        """Arm ``site`` with ``spec`` (a default/empty spec disarms it)."""
        if spec.active:
            self._specs[site] = spec
            # Seed per site name: schedules are independent across sites and
            # stable under reconfiguration of other sites.
            self._rngs.setdefault(site, random.Random((self.seed, site).__repr__()))
        else:
            self._specs.pop(site, None)

    def calls(self, site: str) -> int:
        return self._calls.get(site, 0)

    # -- the perturbation itself -----------------------------------------------
    def perturb(self, site: str) -> None:
        """Apply ``site``'s spec to the current call (sleep and/or raise)."""
        spec = self._specs.get(site)
        if spec is None:
            return
        count = self._calls.get(site, 0) + 1
        self._calls[site] = count
        rng = self._rngs[site]
        delay = spec.latency
        if spec.latency_jitter > 0.0:
            delay += rng.uniform(0.0, spec.latency_jitter)
        if delay > 0.0:
            self.sleeper(delay)
        if spec.fail_every is not None and count % spec.fail_every == 0:
            self._raise(site, f"deterministic fault (call #{count})")
        if spec.error_rate > 0.0 and rng.random() < spec.error_rate:
            self._raise(site, f"random transient fault (call #{count})")

    def _raise(self, site: str, detail: str) -> None:
        self.injected[site] = self.injected.get(site, 0) + 1
        raise TransientFault(f"injected at {site!r}: {detail}")

    def wrap(self, site: str, fn: Callable) -> Callable:
        """A callable that perturbs ``site`` and then runs ``fn``."""

        def faulty(*args, **kwargs):
            self.perturb(site)
            return fn(*args, **kwargs)

        faulty.__wrapped__ = fn  # lets uninstall/debugging find the original
        return faulty

    # -- seam installers -------------------------------------------------------
    def _install_attr(self, obj: object, attr: str, site: str) -> None:
        original = getattr(obj, attr)
        # Remember whether the attribute lived on the instance itself (e.g.
        # ``_fallback_evaluator``) or was a method found on the class: the
        # latter is restored by deleting the shadowing instance attribute.
        was_instance_attr = attr in getattr(obj, "__dict__", {})
        self._installed.append((obj, attr, original if was_instance_attr else None))
        setattr(obj, attr, self.wrap(site, original))

    def install_engine(self, engine) -> None:
        """Wrap one engine's bounded-execution and conventional-fallback seams.

        Sites: ``"executor"`` (compiled-plan execution; result-cache hits
        never reach it, mirroring a storage-side fault) and ``"fallback"``
        (the unbounded conventional evaluation guarded by the breaker).
        """
        self._install_attr(engine._executor, "execute", "executor")
        self._install_attr(engine, "_fallback_evaluator", "fallback")

    def install_writes(self, database, relations: Iterable[str] | None = None) -> None:
        """Wrap the storage write seam of ``relations`` (default: all).

        Site ``"storage.write"``.  Faults fire *before* the row is applied,
        so an aborted batch is always a clean prefix: rows up to the fault
        are stored and indexed, the faulting row and everything after it are
        not.
        """
        names = tuple(relations) if relations is not None else database.relation_names()
        for name in names:
            instance = database.relation(name)
            self._install_attr(instance, "insert", "storage.write")
            self._install_attr(instance, "delete", "storage.write")

    def uninstall(self) -> None:
        """Restore every wrapped seam to its original callable."""
        while self._installed:
            obj, attr, original = self._installed.pop()
            if original is None:
                delattr(obj, attr)
            else:
                setattr(obj, attr, original)

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- reporting -------------------------------------------------------------
    def stats(self) -> dict[str, dict[str, int]]:
        return {
            site: {
                "calls": self._calls.get(site, 0),
                "injected": self.injected.get(site, 0),
            }
            for site in sorted(self._specs)
        }
