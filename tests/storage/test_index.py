"""Unit tests for constraint indexes and index sets."""

import pytest

from repro.core.access import AccessConstraint, AccessSchema
from repro.core.errors import ConstraintViolation, StorageError
from repro.storage.counters import AccessCounter
from repro.storage.database import Database
from repro.storage.index import ConstraintIndex, IndexSet


@pytest.fixture
def small_db(fb_schema):
    database = Database(fb_schema)
    database.insert_many(
        "friend", [("p0", "f1"), ("p0", "f2"), ("p1", "f1")]
    )
    database.insert_many(
        "dine",
        [
            ("f1", "c1", "may", 2015),
            ("f1", "c2", "may", 2015),
            ("f2", "c1", "jan", 2014),
        ],
    )
    database.insert_many("cafe", [("c1", "nyc"), ("c2", "boston")])
    return database


class TestConstraintIndex:
    def test_lookup_returns_distinct_xy_values(self, small_db):
        psi1 = AccessConstraint.of("friend", "pid", "fid", 5000)
        index = ConstraintIndex(psi1, small_db.relation("friend"))
        values = index.lookup(("p0",))
        assert set(values) == {("f1", "p0"), ("f2", "p0")}
        assert index.lookup(("p9",)) == ()

    def test_lookup_records_access(self, small_db):
        psi1 = AccessConstraint.of("friend", "pid", "fid", 5000)
        index = ConstraintIndex(psi1, small_db.relation("friend"))
        counter = AccessCounter()
        index.lookup(("p0",), counter)
        assert counter.fetched == 2
        assert counter.index_probes == 1
        assert counter.per_relation["friend"] == 2

    def test_composite_key_lookup(self, small_db):
        psi2 = AccessConstraint.of("dine", ["pid", "year", "month"], "cid", 31)
        index = ConstraintIndex(psi2, small_db.relation("dine"))
        # keys follow sorted(lhs) = (month, pid, year)
        assert index.lhs == ("month", "pid", "year")
        values = index.lookup(("may", "f1", 2015))
        assert {v[index.columns.index("cid")] for v in values} == {"c1", "c2"}

    def test_empty_lhs_index(self, small_db):
        months = AccessConstraint.of("dine", (), "month", 12)
        index = ConstraintIndex(months, small_db.relation("dine"))
        values = index.lookup(())
        assert {v[0] for v in values} == {"may", "jan"}

    def test_wrong_relation_rejected(self, small_db):
        psi1 = AccessConstraint.of("friend", "pid", "fid", 5000)
        with pytest.raises(StorageError):
            ConstraintIndex(psi1, small_db.relation("dine"))

    def test_sizes(self, small_db):
        psi1 = AccessConstraint.of("friend", "pid", "fid", 5000)
        index = ConstraintIndex(psi1, small_db.relation("friend"))
        assert index.entry_count == 2
        assert index.size == 3
        assert index.cell_size == 6
        assert index.max_group_size() == 2

    def test_check_detects_violation(self, small_db):
        tight = AccessConstraint.of("friend", "pid", "fid", 1)
        index = ConstraintIndex(tight, small_db.relation("friend"))
        with pytest.raises(ConstraintViolation):
            index.check()

    def test_incremental_add_and_remove(self, small_db):
        psi1 = AccessConstraint.of("friend", "pid", "fid", 5000)
        relation = small_db.relation("friend")
        index = ConstraintIndex(psi1, relation)
        index.add_row(("p0", "f3"))
        assert ("f3", "p0") in index.lookup(("p0",))
        relation.insert(("p0", "f3"))
        relation.delete(("p0", "f3"))
        index.remove_row(("p0", "f3"), relation)
        assert ("f3", "p0") not in index.lookup(("p0",))

    def test_remove_keeps_value_with_other_witness(self, fb_schema):
        """Deleting one tuple must not drop an XY value still present in another tuple."""
        database = Database(fb_schema)
        database.insert_many(
            "dine", [("p0", "c1", "may", 2015), ("p0", "c1", "jun", 2015)]
        )
        constraint = AccessConstraint.of("dine", "pid", "cid", 31)
        relation = database.relation("dine")
        index = ConstraintIndex(constraint, relation)
        relation.delete(("p0", "c1", "may", 2015))
        index.remove_row(("p0", "c1", "may", 2015), relation)
        assert index.lookup(("p0",)) != ()


class TestIndexSet:
    def test_build_all(self, small_db, fb_access):
        indexes = IndexSet.build(small_db, fb_access)
        assert len(indexes) == 4
        for constraint in fb_access:
            assert constraint in indexes
            assert indexes.index_for(constraint).constraint == constraint

    def test_build_checks_violations(self, small_db, fb_schema):
        bad = AccessSchema(
            [AccessConstraint.of("friend", "pid", "fid", 1)], schema=fb_schema
        )
        with pytest.raises(ConstraintViolation):
            IndexSet.build(small_db, bad, check=True)
        # with check disabled the index is still built
        assert len(IndexSet.build(small_db, bad, check=False)) == 1

    def test_find_by_shape(self, small_db, fb_access):
        indexes = IndexSet.build(small_db, fb_access)
        found = indexes.find("friend", {"pid"}, {"fid"})
        assert found is not None
        assert indexes.find("friend", {"fid"}, {"pid"}) is None

    def test_missing_index_raises(self, small_db, fb_access):
        indexes = IndexSet.build(small_db, fb_access)
        other = AccessConstraint.of("cafe", "city", "cid", 100)
        with pytest.raises(StorageError):
            indexes.index_for(other)
        assert indexes.get(other) is None

    def test_total_sizes_and_report(self, small_db, fb_access):
        indexes = IndexSet.build(small_db, fb_access)
        assert indexes.total_size == sum(i.size for i in indexes)
        assert indexes.total_cell_size >= indexes.total_size
        report = indexes.size_report()
        assert len(report) == 4

    def test_apply_insert_and_delete(self, small_db, fb_access):
        indexes = IndexSet.build(small_db, fb_access)
        psi1 = next(c for c in fb_access if c.name == "psi1")
        indexes.apply_insert("friend", ("p1", "f9"))
        assert ("f9", "p1") in indexes.index_for(psi1).lookup(("p1",))
        indexes.apply_delete("friend", ("p1", "f9"), small_db.relation("friend"))
        assert ("f9", "p1") not in indexes.index_for(psi1).lookup(("p1",))
