"""Algorithm ``QPlan``: canonical bounded query plans for covered queries (Section 5).

A canonical bounded plan has three parts:

1. a **fetching plan** — one unit fetching plan per attribute in ``X_Q``,
   obtained by translating hyperpaths of the ⟨Q,A⟩-hypergraph (``transQP``);
2. an **indexing plan** — for every relation occurrence ``S``, combine the
   fetched candidate values for the attributes of ``S`` and validate them
   against real tuples via a ``fetch`` under the constraint that indexes
   ``S``, so that attribute values come from the same tuples;
3. an **evaluation plan** — the original RA expression with each relation
   occurrence replaced by its indexed surrogate.

``generate_plan`` takes a :class:`~repro.core.coverage.CoverageResult`
(i.e. the output of ``CovChk``) and produces a validated
:class:`~repro.core.plan.BoundedPlan` of length ``O(|Q||A|)``.
"""

from __future__ import annotations

from typing import Mapping

from .access import AccessConstraint, AccessSchema
from .coverage import CoverageResult, check_coverage
from .errors import NotCoveredError, PlanError
from .hypergraph import QAHypergraph, ROOT, build_qa_hypergraph
from .plan import (
    BoundedPlan,
    ColumnPredicate,
    ColumnRef,
    ConstOp,
    DifferenceOp,
    FetchOp,
    IntersectOp,
    PlanBuilder,
    ProductOp,
    ProjectOp,
    RenameOp,
    SelectOp,
    UnionOp,
    UnitOp,
)
from .query import (
    Comparison,
    Constant,
    Difference,
    Join,
    Predicate,
    Product,
    Projection,
    Query,
    Relation,
    Rename,
    Selection,
    Union,
)
from .schema import Attribute
from .spc import SPCAnalysis


class _QPlanBuilder:
    """Stateful helper that assembles the three phases of a canonical plan."""

    def __init__(self, coverage: CoverageResult):
        if not coverage.is_covered:
            raise NotCoveredError(
                "QPlan requires a covered query:\n" + coverage.explain()
            )
        self.coverage = coverage
        self.actualized: AccessSchema = coverage.actualized
        self.builder = PlanBuilder(self.actualized, occurrences=coverage.normalized.occurrences)
        self.hypergraph: QAHypergraph = build_qa_hypergraph(
            coverage.normalized.query,
            self.actualized,
            analyses=[sub.analysis for sub in coverage.subqueries],
        )
        self.derivations = self.hypergraph.graph.derivations({ROOT})
        #: unified attribute token -> plan step id of its unit fetching plan
        self.unit_steps: dict[str, int] = {}
        #: constraint -> fetch step id shared by the unit plans it feeds
        self._constraint_fetches: dict[AccessConstraint, int] = {}
        #: relation occurrence -> plan step id of its indexed surrogate
        self.surrogate_steps: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Phase 1: unit fetching plans (transQP over hyperpaths)
    # ------------------------------------------------------------------
    def unit_fetching_plan(self, analysis: SPCAnalysis, attribute: Attribute) -> int:
        """The step id of the unit fetching plan ``ξ_F^c(attribute)`` (memoized per token)."""
        token = analysis.unify(attribute)
        return self._unit_plan_for_token(token)

    def _unit_plan_for_token(self, token: str) -> int:
        if token in self.unit_steps:
            return self.unit_steps[token]
        edge = self.derivations.get(token)
        if edge is None:
            raise PlanError(
                f"attribute token {token!r} is not reachable from r in the ⟨Q,A⟩-hypergraph; "
                "the query is not fetchable"
            )
        if edge.constraint is None:
            # Case (3): an edge from r carrying a constant.
            step = self.builder.add(
                ConstOp(value=edge.constant, column=token),
                columns=[token],
                comment=f"ξF({token}) — constant",
            )
            self.unit_steps[token] = step
            return step

        # The token is derived by a set-node edge ({u_Y}, token); the FD edge
        # deriving u_Y carries the access constraint and its head.
        set_node = next(iter(edge.head))
        fd_edge = self.derivations.get(set_node)
        if fd_edge is None or fd_edge.constraint is None:
            raise PlanError(f"malformed derivation for token {token!r}")  # pragma: no cover
        constraint = fd_edge.constraint
        fetch_step = self._fetch_step_for_constraint(constraint)

        analysis = self.hypergraph.analysis_for_relation(constraint.relation)
        source_attr = self._attribute_for_token(constraint, analysis, token)
        qualified = f"{constraint.relation}.{source_attr}"
        step = self.builder.add(
            ProjectOp(columns=(qualified,), inputs=(fetch_step,), output_names=(token,)),
            columns=[token],
            comment=f"ξF({token}) via {constraint}",
        )
        self.unit_steps[token] = step
        return step

    def _fetch_step_for_constraint(self, constraint: AccessConstraint) -> int:
        """A fetch step retrieving ``X ∪ Y`` of ``constraint`` for all candidate LHS values."""
        if constraint in self._constraint_fetches:
            return self._constraint_fetches[constraint]
        analysis = self.hypergraph.analysis_for_relation(constraint.relation)
        lhs = sorted(constraint.lhs)
        if lhs:
            key_tokens = [
                analysis.unify(Attribute(constraint.relation, attr)) for attr in lhs
            ]
            input_step = self._product_of_tokens(key_tokens)
            key_columns = tuple(key_tokens)
        else:
            input_step = self.builder.add(UnitOp(), columns=[], comment="empty-LHS driver")
            key_columns = ()
        out_columns = [
            f"{constraint.relation}.{attr}"
            for attr in sorted(constraint.lhs | constraint.rhs)
        ]
        step = self.builder.add(
            FetchOp(constraint=constraint, key_columns=key_columns, inputs=(input_step,)),
            columns=out_columns,
            comment=f"fetch via {constraint}",
        )
        self._constraint_fetches[constraint] = step
        return step

    def _product_of_tokens(self, tokens: list[str]) -> int:
        """The Cartesian product of the unit plans of distinct tokens, in order."""
        distinct: list[str] = []
        for token in tokens:
            if token not in distinct:
                distinct.append(token)
        step = self._unit_plan_for_token(distinct[0])
        for token in distinct[1:]:
            other = self._unit_plan_for_token(token)
            columns = list(self.builder.columns(step)) + list(self.builder.columns(other))
            step = self.builder.add(
                ProductOp(inputs=(step, other)), columns=columns, comment="combine candidates"
            )
        return step

    @staticmethod
    def _attribute_for_token(
        constraint: AccessConstraint, analysis: SPCAnalysis, token: str
    ) -> str:
        for attr in sorted(constraint.rhs | constraint.lhs):
            if analysis.unify(Attribute(constraint.relation, attr)) == token:
                return attr
        raise PlanError(
            f"constraint {constraint} does not produce token {token!r}"
        )  # pragma: no cover

    # ------------------------------------------------------------------
    # Phase 2: indexing plans
    # ------------------------------------------------------------------
    def indexing_plan(
        self, analysis: SPCAnalysis, relation: Relation, constraint: AccessConstraint
    ) -> int:
        """The step id of the indexed surrogate for ``relation`` (``ξ_I^c``)."""
        needed = analysis.relation_needed_attributes(relation)
        lhs_attributes = {Attribute(relation.name, a) for a in constraint.lhs}
        combine = sorted(needed | lhs_attributes, key=lambda a: (a.relation, a.name))

        # Candidate combinations of fetched values for the attributes of S.
        tokens = [analysis.unify(attribute) for attribute in combine]
        if tokens:
            candidate = self._product_of_tokens(tokens)
        else:
            candidate = self.builder.add(UnitOp(), columns=[], comment="no needed attributes")

        # Validate candidates against real tuples via the indexing constraint.
        lhs = sorted(constraint.lhs)
        key_columns = tuple(
            analysis.unify(Attribute(relation.name, attr)) for attr in lhs
        )
        fetch_columns = [
            f"{relation.name}.{attr}" for attr in sorted(constraint.lhs | constraint.rhs)
        ]
        fetched = self.builder.add(
            FetchOp(constraint=constraint, key_columns=key_columns, inputs=(candidate,)),
            columns=fetch_columns,
            comment=f"ξI({relation.name}) fetch via {constraint}",
        )

        # Keep only fetched tuples whose attribute values agree with the
        # candidate combinations (the intersection step of the paper), then
        # expose the qualified attributes of S needed downstream.
        candidate_columns = self.builder.columns(candidate)
        if candidate_columns:
            renamed_columns = {col: f"cand::{col}" for col in candidate_columns}
            candidates_renamed = self.builder.add(
                RenameOp(mapping=renamed_columns, inputs=(candidate,)),
                columns=[renamed_columns[c] for c in candidate_columns],
                comment="candidate combinations",
            )
            joined_columns = fetch_columns + [renamed_columns[c] for c in candidate_columns]
            joined = self.builder.add(
                ProductOp(inputs=(fetched, candidates_renamed)),
                columns=joined_columns,
                comment="pair fetched tuples with candidates",
            )
            predicates = []
            for attribute, token in zip(combine, tokens):
                left = f"{relation.name}.{attribute.name}"
                predicates.append(
                    ColumnPredicate(left, "=", ColumnRef(f"cand::{token}"))
                )
            validated = self.builder.add(
                SelectOp(predicates=tuple(predicates), inputs=(joined,)),
                columns=joined_columns,
                comment="keep candidates occurring in real tuples",
            )
        else:
            validated = fetched
            joined_columns = fetch_columns

        surrogate_columns = fetch_columns
        surrogate = self.builder.add(
            ProjectOp(columns=tuple(surrogate_columns), inputs=(validated,)),
            columns=surrogate_columns,
            comment=f"indexed surrogate for {relation.name}",
        )
        self.surrogate_steps[relation.name] = surrogate
        return surrogate

    # ------------------------------------------------------------------
    # Phase 3: evaluation plan
    # ------------------------------------------------------------------
    def evaluation_plan(self) -> int:
        """Compile the normalized query over the surrogates into plan steps."""
        return self._compile(self.coverage.normalized.query)

    def _compile(self, node: Query) -> int:
        if isinstance(node, Relation):
            try:
                return self.surrogate_steps[node.name]
            except KeyError:  # pragma: no cover - guarded by coverage check
                raise PlanError(f"no surrogate for relation occurrence {node.name!r}")
        if isinstance(node, Selection):
            child = self._compile(node.child)
            predicates = tuple(self._compile_predicate(node.condition))
            return self.builder.add(
                SelectOp(predicates=predicates, inputs=(child,)),
                columns=self.builder.columns(child),
                comment="evaluation σ",
            )
        if isinstance(node, Projection):
            child = self._compile(node.child)
            columns = tuple(str(a) for a in node.attributes)
            return self.builder.add(
                ProjectOp(columns=columns, inputs=(child,)),
                columns=columns,
                comment="evaluation π",
            )
        if isinstance(node, Product):
            left = self._compile(node.left)
            right = self._compile(node.right)
            columns = list(self.builder.columns(left)) + list(self.builder.columns(right))
            return self.builder.add(
                ProductOp(inputs=(left, right)), columns=columns, comment="evaluation ×"
            )
        if isinstance(node, Join):
            left = self._compile(node.left)
            right = self._compile(node.right)
            columns = list(self.builder.columns(left)) + list(self.builder.columns(right))
            product = self.builder.add(
                ProductOp(inputs=(left, right)), columns=columns, comment="evaluation ⋈ (×)"
            )
            predicates = tuple(self._compile_predicate(node.condition))
            return self.builder.add(
                SelectOp(predicates=predicates, inputs=(product,)),
                columns=columns,
                comment="evaluation ⋈ (σ)",
            )
        if isinstance(node, Union):
            left = self._compile(node.left)
            right = self._compile(node.right)
            return self.builder.add(
                UnionOp(inputs=(left, right)),
                columns=self.builder.columns(left),
                comment="evaluation ∪",
            )
        if isinstance(node, Difference):
            left = self._compile(node.left)
            right = self._compile(node.right)
            return self.builder.add(
                DifferenceOp(inputs=(left, right)),
                columns=self.builder.columns(left),
                comment="evaluation −",
            )
        if isinstance(node, Rename):
            child = self._compile(node.child)
            old_columns = self.builder.columns(child)
            new_columns = tuple(
                f"{node.name}.{a.name}" for a in node.child.output_attributes()
            )
            mapping = dict(zip(old_columns, new_columns))
            return self.builder.add(
                RenameOp(mapping=mapping, inputs=(child,)),
                columns=new_columns,
                comment="evaluation ρ",
            )
        raise PlanError(f"cannot compile query node {type(node).__name__}")

    @staticmethod
    def _compile_predicate(condition: Predicate) -> list[ColumnPredicate]:
        predicates: list[ColumnPredicate] = []
        for atom in condition.atoms():
            if not isinstance(atom, Comparison):  # pragma: no cover - defensive
                raise PlanError(f"unsupported predicate {atom}")
            left = atom.left
            right = atom.right
            if isinstance(left, Constant) and isinstance(right, Attribute):
                # Normalize "c = A" to "A = c" (and flip inequalities).
                flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(atom.op, atom.op)
                left, right, op = right, left, flipped
            else:
                op = atom.op
            if not isinstance(left, Attribute):
                raise PlanError(f"cannot compile predicate {atom}: no column on either side")
            right_value = ColumnRef(str(right)) if isinstance(right, Attribute) else right.value
            predicates.append(ColumnPredicate(str(left), op, right_value))
        return predicates

    # ------------------------------------------------------------------
    def build(self) -> BoundedPlan:
        for sub in self.coverage.subqueries:
            analysis = sub.analysis
            for attribute in sorted(
                analysis.needed_attributes, key=lambda a: (a.relation, a.name)
            ):
                self.unit_fetching_plan(analysis, attribute)
            for relation in analysis.relations:
                constraint = sub.index_choices[relation.name]
                self.indexing_plan(analysis, relation, constraint)
        output = self.evaluation_plan()
        self.builder.fetch_plans = dict(self.unit_steps)
        self.builder.surrogates = dict(self.surrogate_steps)
        return self.builder.build(output)


def generate_plan(coverage: CoverageResult) -> BoundedPlan:
    """Generate a canonical bounded query plan from a ``CovChk`` result.

    Raises :class:`~repro.core.errors.NotCoveredError` when the result says
    the query is not covered.
    """
    return _QPlanBuilder(coverage).build()


def plan_query(query: Query, access_schema: AccessSchema) -> BoundedPlan:
    """Convenience wrapper: run ``CovChk`` then ``QPlan`` on ``query``."""
    coverage = check_coverage(query, access_schema)
    return generate_plan(coverage)
