"""Experiment workloads: schemas, access constraints, data generators, query generators.

``AIRCA``, ``TFACC`` and ``MCBM`` are synthetic, constraint-faithful stand-ins
for the paper's datasets; ``facebook`` is the running example of Section 1.
"""

from . import airca, facebook, mcbm, tfacc
from .base import WorkloadSpec
from .generator import QueryParameters, RandomQueryGenerator

#: The three experiment workloads of Section 8, by name.
WORKLOADS = {
    "AIRCA": airca.WORKLOAD,
    "TFACC": tfacc.WORKLOAD,
    "MCBM": mcbm.WORKLOAD,
}

__all__ = [
    "QueryParameters",
    "RandomQueryGenerator",
    "WORKLOADS",
    "WorkloadSpec",
    "airca",
    "facebook",
    "mcbm",
    "tfacc",
]
