"""Sharded, federated bounded evaluation (ROADMAP item 1).

Partition a database across heterogeneous shards (in-memory engines and
SQLite mirrors), scatter the fetch steps of covered bounded plans to the
owning shards, and merge the bounded partials centrally under per-shard
epoch validation.  See :mod:`repro.sharding.router` for the soundness
argument and :mod:`repro.sharding.partition` for the partitioning schemes.

The self-healing layer on top: :mod:`repro.sharding.replica` (replica
groups with failover, quarantine and catch-up), :mod:`repro.sharding.
faults` (seeded fault injection at the shard-fetch seam), and
:mod:`repro.sharding.rebalance` (epoch-guarded online key-range
migration).
"""

from .faults import ShardFaultInjector, ShardFaultSpec
from .partition import (
    HashPartitioner,
    Partitioner,
    PartitionOverlay,
    RangePartitioner,
    stable_hash,
)
from .rebalance import RebalanceReport, rebalance_key_range
from .replica import ReplicaHealth, ReplicaSet
from .router import FederatedExecutor, RouterMetrics, ShardRouter, build_topology
from .shards import EngineShard, Shard, SQLiteShard

__all__ = [
    "EngineShard",
    "FederatedExecutor",
    "HashPartitioner",
    "Partitioner",
    "PartitionOverlay",
    "RangePartitioner",
    "RebalanceReport",
    "ReplicaHealth",
    "ReplicaSet",
    "RouterMetrics",
    "Shard",
    "ShardFaultInjector",
    "ShardFaultSpec",
    "ShardRouter",
    "SQLiteShard",
    "build_topology",
    "rebalance_key_range",
    "stable_hash",
]
