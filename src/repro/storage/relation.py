"""In-memory relation instances.

Tuples are stored positionally (aligned with the relation schema's attribute
order) under set semantics: inserting a duplicate row is a no-op, matching
the relational model the paper works in.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from ..core.errors import StorageError
from ..core.schema import RelationSchema

Row = tuple


class RelationInstance:
    """An instance of a relation schema: a set of positional tuples."""

    def __init__(self, schema: RelationSchema, rows: Iterable[Sequence] = ()):
        self.schema = schema
        self._rows: list[Row] = []
        self._row_set: set[Row] = set()
        self.insert_many(rows)

    # -- mutation ---------------------------------------------------------------
    def insert(self, row: Sequence | Mapping[str, object]) -> bool:
        """Insert one tuple; returns ``True`` if the tuple was new.

        Accepts either a positional sequence (aligned with the schema) or a
        mapping from attribute names to values.
        """
        prepared = self._prepare(row)
        if prepared in self._row_set:
            return False
        self._rows.append(prepared)
        self._row_set.add(prepared)
        return True

    def insert_many(self, rows: Iterable[Sequence | Mapping[str, object]]) -> int:
        """Insert several tuples; returns the number actually added."""
        added = 0
        for row in rows:
            if self.insert(row):
                added += 1
        return added

    def delete(self, row: Sequence | Mapping[str, object]) -> bool:
        """Delete one tuple; returns ``True`` if it was present."""
        prepared = self._prepare(row)
        if prepared not in self._row_set:
            return False
        self._row_set.discard(prepared)
        self._rows.remove(prepared)
        return True

    def prepare(self, row: Sequence | Mapping[str, object]) -> Row:
        """Validate ``row`` against the schema and return its positional form.

        Raises :class:`~repro.core.errors.StorageError` (a ``ReproError``) on
        arity mismatches, missing attributes, or unknown attributes — without
        mutating anything, so callers can validate *before* touching storage
        or derived indexes.
        """
        if isinstance(row, Mapping):
            missing = [a for a in self.schema.attributes if a not in row]
            if missing:
                raise StorageError(
                    f"row for {self.schema.name!r} is missing attributes {missing}"
                )
            unknown = sorted(k for k in row if k not in self.schema.attributes)
            if unknown:
                raise StorageError(
                    f"row for {self.schema.name!r} has unknown attributes {unknown}; "
                    f"schema has {list(self.schema.attributes)}"
                )
            return tuple(row[a] for a in self.schema.attributes)
        prepared = tuple(row)
        if len(prepared) != len(self.schema):
            raise StorageError(
                f"row of arity {len(prepared)} does not match relation "
                f"{self.schema.name!r} of arity {len(self.schema)}"
            )
        return prepared

    # Backward-compatible alias (pre-existing callers used the private name).
    _prepare = prepare

    # -- access -------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence | Mapping[str, object]) -> bool:
        return self._prepare(row) in self._row_set

    @property
    def rows(self) -> tuple[Row, ...]:
        return tuple(self._rows)

    def to_dicts(self) -> list[dict[str, object]]:
        """All rows as attribute-name dictionaries (handy in tests and examples)."""
        return [dict(zip(self.schema.attributes, row)) for row in self._rows]

    # -- simple per-relation operations --------------------------------------------
    def project(self, attributes: Sequence[str]) -> set[Row]:
        """Distinct projections of the rows onto ``attributes``."""
        positions = self.schema.positions(attributes)
        return {tuple(row[p] for p in positions) for row in self._rows}

    def distinct_count(self, attributes: Sequence[str]) -> int:
        return len(self.project(attributes))

    def group_max_multiplicity(
        self, lhs: Sequence[str], rhs: Sequence[str]
    ) -> int:
        """``max over lhs-values of |distinct rhs-values|`` — the observed ``N``.

        This is the statistic access-constraint discovery computes to decide
        the bound of a candidate constraint ``R(lhs → rhs, N)``.
        """
        lhs_positions = self.schema.positions(lhs)
        rhs_positions = self.schema.positions(rhs)
        groups: dict[Row, set[Row]] = {}
        for row in self._rows:
            key = tuple(row[p] for p in lhs_positions)
            value = tuple(row[p] for p in rhs_positions)
            groups.setdefault(key, set()).add(value)
        if not groups:
            return 0
        return max(len(values) for values in groups.values())

    # -- persistence ------------------------------------------------------------------
    def to_csv(self, path: str | Path) -> None:
        """Write the relation to a CSV file with a header row."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.schema.attributes)
            writer.writerows(self._rows)

    @classmethod
    def from_csv(cls, schema: RelationSchema, path: str | Path) -> "RelationInstance":
        """Load a relation from a CSV file written by :meth:`to_csv`."""
        instance = cls(schema)
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                return instance
            if tuple(header) != schema.attributes:
                raise StorageError(
                    f"CSV header {header} does not match schema {list(schema.attributes)}"
                )
            for row in reader:
                instance.insert(tuple(row))
        return instance
