"""TFACC — UK traffic-accident workload (synthetic stand-in for the 21.4 GB dataset).

Mirrors the structure of the UK Road Safety Data plus NaPTAN public-transport
nodes used by the paper (19 tables, 89.7 M tuples), at laptop scale.  The
headline constraint the paper quotes — each police force handles at most 304
accidents per day — is part of the access schema, and the generator respects
it (and every other constraint) by construction.
"""

from __future__ import annotations

import random

from ..core.access import AccessConstraint, AccessSchema
from ..core.schema import DatabaseSchema
from ..storage.database import Database
from .base import WorkloadSpec

REGIONS = (
    "north_east", "north_west", "yorkshire", "east_midlands", "west_midlands",
    "east", "london", "south_east", "south_west", "wales", "scotland", "ni",
)
VEHICLE_TYPES = ("car", "van", "bus", "hgv", "motorcycle", "bicycle", "taxi", "other")
CASUALTY_CLASSES = ("driver", "passenger", "pedestrian")
STOP_TYPES = ("bus", "rail", "metro", "tram", "ferry", "coach", "taxi_rank", "air")
ROAD_CLASSES = ("motorway", "a_road", "b_road", "c_road", "unclassified", "slip")
SPEED_LIMITS = (20, 30, 40, 50, 60, 70)
WEATHER_CONDITIONS = ("fine", "rain", "snow", "fog", "wind", "other")
YEARS = tuple(range(1979, 2006))


def schema() -> DatabaseSchema:
    """Eight relations mirroring the TFACC tables used in the experiments."""
    return DatabaseSchema.from_dict(
        {
            "accidents": [
                "accident_id", "acc_date", "year", "police_force", "severity",
                "num_vehicles", "num_casualties", "district",
            ],
            "vehicles": ["vehicle_id", "accident_id", "vehicle_type", "driver_age_band"],
            "casualties": ["casualty_id", "accident_id", "casualty_class", "severity"],
            "police": ["police_force", "force_name", "region"],
            "districts": ["district", "district_name", "region"],
            "stops": ["stop_id", "district", "stop_type", "status"],
            "roads": ["road_id", "district", "road_class", "speed_limit"],
            "weather": ["accident_id", "condition", "visibility"],
        }
    )


def access_schema(database_schema: DatabaseSchema | None = None) -> AccessSchema:
    """The access constraints of the TFACC workload.

    ``accidents((acc_date, police_force) → accident_id, 304)`` is the
    constraint quoted in Section 8.
    """
    database_schema = database_schema or schema()
    accidents_all = list(database_schema["accidents"].attributes)
    vehicles_all = list(database_schema["vehicles"].attributes)
    casualties_all = list(database_schema["casualties"].attributes)
    police_all = list(database_schema["police"].attributes)
    districts_all = list(database_schema["districts"].attributes)
    stops_all = list(database_schema["stops"].attributes)
    roads_all = list(database_schema["roads"].attributes)
    return AccessSchema(
        [
            AccessConstraint.of(
                "accidents", ["acc_date", "police_force"], "accident_id", 304,
                name="force-daily",
            ),
            AccessConstraint.of("accidents", "accident_id", accidents_all, 1, name="accident-key"),
            AccessConstraint.of("accidents", (), "severity", 3, name="severities"),
            AccessConstraint.of("accidents", (), "year", len(YEARS), name="years"),
            AccessConstraint.of(
                "accidents", ["district", "year"], "accident_id", 500, name="district-yearly"
            ),
            AccessConstraint.of("vehicles", "vehicle_id", vehicles_all, 1, name="vehicle-key"),
            AccessConstraint.of("vehicles", "accident_id", "vehicle_id", 20, name="accident-vehicles"),
            AccessConstraint.of("vehicles", (), "vehicle_type", len(VEHICLE_TYPES), name="vehicle-types"),
            AccessConstraint.of("casualties", "casualty_id", casualties_all, 1, name="casualty-key"),
            AccessConstraint.of(
                "casualties", "accident_id", "casualty_id", 30, name="accident-casualties"
            ),
            AccessConstraint.of(
                "casualties", (), "casualty_class", len(CASUALTY_CLASSES), name="casualty-classes"
            ),
            AccessConstraint.of("police", "police_force", police_all, 1, name="police-key"),
            AccessConstraint.of("police", (), "region", len(REGIONS), name="regions"),
            AccessConstraint.of("districts", "district", districts_all, 1, name="district-key"),
            AccessConstraint.of("districts", "region", "district", 60, name="region-districts"),
            AccessConstraint.of("stops", "stop_id", stops_all, 1, name="stop-key"),
            AccessConstraint.of("stops", "district", "stop_id", 400, name="district-stops"),
            AccessConstraint.of("stops", (), "stop_type", len(STOP_TYPES), name="stop-types"),
            AccessConstraint.of("roads", "road_id", roads_all, 1, name="road-key"),
            AccessConstraint.of("roads", "district", "road_id", 200, name="district-roads"),
            AccessConstraint.of("roads", (), "road_class", len(ROAD_CLASSES), name="road-classes"),
            AccessConstraint.of("roads", (), "speed_limit", len(SPEED_LIMITS), name="speed-limits"),
            AccessConstraint.of("weather", "accident_id", ["condition", "visibility"], 1,
                                name="accident-weather"),
        ],
        schema=database_schema,
    )


def generate(scale: int = 200, seed: int = 0) -> Database:
    """Generate a TFACC instance; ``scale`` controls the number of accident days."""
    rng = random.Random(seed)
    database = Database(schema())

    n_forces = max(4, min(20, scale // 20))
    n_districts = max(6, min(40, scale // 10))
    n_days = max(10, scale // 2)
    years = YEARS[-3:]

    forces = [f"PF{i:02d}" for i in range(n_forces)]
    districts = [f"DS{i:03d}" for i in range(n_districts)]

    for force in forces:
        database.insert("police", (force, f"force_{force}", rng.choice(REGIONS)))
    for district in districts:
        database.insert("districts", (district, f"district_{district}", rng.choice(REGIONS)))
        for stop_index in range(rng.randint(2, 12)):
            database.insert(
                "stops",
                (f"ST{district}{stop_index:03d}", district, rng.choice(STOP_TYPES), "active"),
            )
        for road_index in range(rng.randint(2, 8)):
            database.insert(
                "roads",
                (f"RD{district}{road_index:03d}", district, rng.choice(ROAD_CLASSES),
                 rng.choice(SPEED_LIMITS)),
            )

    accident_counter = 0
    vehicle_counter = 0
    casualty_counter = 0
    for day in range(n_days):
        year = years[day % len(years)]
        acc_date = f"{year}-{(day % 12) + 1:02d}-{(day % 28) + 1:02d}"
        for force in forces:
            for _ in range(rng.randint(0, 4)):
                accident_id = f"A{accident_counter:07d}"
                accident_counter += 1
                num_vehicles = rng.randint(1, 4)
                num_casualties = rng.randint(0, 5)
                district = rng.choice(districts)
                database.insert(
                    "accidents",
                    (accident_id, acc_date, year, force, rng.randint(1, 3),
                     num_vehicles, num_casualties, district),
                )
                database.insert(
                    "weather",
                    (accident_id, rng.choice(WEATHER_CONDITIONS), rng.randint(1, 5)),
                )
                for _ in range(num_vehicles):
                    database.insert(
                        "vehicles",
                        (f"V{vehicle_counter:07d}", accident_id, rng.choice(VEHICLE_TYPES),
                         rng.randint(1, 8)),
                    )
                    vehicle_counter += 1
                for _ in range(num_casualties):
                    database.insert(
                        "casualties",
                        (f"C{casualty_counter:07d}", accident_id,
                         rng.choice(CASUALTY_CLASSES), rng.randint(1, 3)),
                    )
                    casualty_counter += 1

    return database


JOIN_EDGES = (
    (("accidents", "police_force"), ("police", "police_force")),
    (("accidents", "district"), ("districts", "district")),
    (("vehicles", "accident_id"), ("accidents", "accident_id")),
    (("casualties", "accident_id"), ("accidents", "accident_id")),
    (("weather", "accident_id"), ("accidents", "accident_id")),
    (("stops", "district"), ("districts", "district")),
    (("roads", "district"), ("districts", "district")),
    (("stops", "district"), ("accidents", "district")),
)

WORKLOAD = WorkloadSpec(
    name="TFACC",
    schema=schema(),
    access_schema=access_schema(),
    generate=generate,
    join_edges=JOIN_EDGES,
    description="UK road-safety accidents joined with NaPTAN transport nodes",
    default_scale=200,
)
