"""Sharded, federated bounded evaluation (ROADMAP item 1).

Partition a database across heterogeneous shards (in-memory engines and
SQLite mirrors), scatter the fetch steps of covered bounded plans to the
owning shards, and merge the bounded partials centrally under per-shard
epoch validation.  See :mod:`repro.sharding.router` for the soundness
argument and :mod:`repro.sharding.partition` for the partitioning schemes.
"""

from .partition import HashPartitioner, Partitioner, RangePartitioner, stable_hash
from .router import FederatedExecutor, RouterMetrics, ShardRouter, build_topology
from .shards import EngineShard, Shard, SQLiteShard

__all__ = [
    "EngineShard",
    "FederatedExecutor",
    "HashPartitioner",
    "Partitioner",
    "RangePartitioner",
    "RouterMetrics",
    "Shard",
    "ShardRouter",
    "SQLiteShard",
    "build_topology",
    "stable_hash",
]
