"""Query normalization (Section 2, Lemma 1).

The paper considers RA queries in a *normal form* in which every occurrence of
a relation name has been made distinct via renaming, and works with the
*actualized* access schema in which every constraint of a base relation is
copied onto each of its occurrences.  :func:`normalize` rewrites an arbitrary
query into this normal form and returns the occurrence-to-base mapping needed
to actualize an access schema, all in ``O(|Q|)`` (plus ``O(|Q||A|)`` for
actualization, per Lemma 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .access import AccessSchema
from .errors import QueryError
from .query import (
    And,
    Comparison,
    Difference,
    Join,
    Predicate,
    Product,
    Projection,
    Query,
    Relation,
    Rename,
    Selection,
    Union,
    conjunction,
)
from .schema import Attribute


@dataclass(frozen=True)
class NormalizedQuery:
    """The result of :func:`normalize`.

    ``query`` is the rewritten query in which all relation occurrences have
    distinct names, ``occurrences`` maps each occurrence name to the base
    relation it refers to, and ``renamed`` maps original occurrence names to
    the fresh names introduced (only for occurrences that had to be renamed).
    """

    query: Query
    occurrences: Mapping[str, str]
    renamed: Mapping[str, str]

    def actualize(self, access_schema: AccessSchema) -> AccessSchema:
        """The actualized access schema of ``access_schema`` on this query (Lemma 1)."""
        return access_schema.actualize(self.occurrences)


def normalize(query: Query) -> NormalizedQuery:
    """Rewrite ``query`` so that every relation occurrence has a distinct name.

    Occurrences that collide with an earlier occurrence are renamed to
    ``<base>__k`` for increasing ``k``; selection/join conditions and
    projection lists inside the renamed branch are rewritten accordingly.
    ``Rename`` nodes are eliminated by pushing the renaming into the relation
    occurrence they wrap when possible (a renamed relation atom), and kept
    otherwise.
    """
    used: dict[str, int] = {}
    occurrences: dict[str, str] = {}
    renamed: dict[str, str] = {}

    def fresh_name(base: str) -> str:
        count = used.get(base, 0)
        while True:
            count += 1
            candidate = f"{base}__{count}" if count > 1 or base in occurrences else base
            if candidate not in occurrences and candidate not in used:
                used[base] = count
                return candidate

    def rewrite(node: Query) -> tuple[Query, dict[str, str]]:
        """Return the rewritten node and the occurrence-name substitution valid below it."""
        if isinstance(node, Relation):
            if node.name not in occurrences:
                occurrences[node.name] = node.base
                used.setdefault(node.name, 1)
                return node, {}
            new_name = fresh_name(node.base)
            occurrences[new_name] = node.base
            renamed[node.name] = new_name
            replacement = Relation(new_name, node.attribute_names, base=node.base)
            return replacement, {node.name: new_name}

        if isinstance(node, Rename):
            child, mapping = rewrite(node.child)
            # A rename of a plain relation atom folds into the occurrence name.
            if isinstance(child, Relation):
                if node.name in occurrences and occurrences.get(node.name) != child.base:
                    raise QueryError(
                        f"rename target {node.name!r} collides with an existing occurrence"
                    )
                occurrences.pop(child.name, None)
                occurrences[node.name] = child.base
                replacement = Relation(node.name, child.attribute_names, base=child.base)
                return replacement, {child.name: node.name}
            return Rename(child, node.name), mapping

        if isinstance(node, Selection):
            child, mapping = rewrite(node.child)
            return Selection(child, _substitute_predicate(node.condition, mapping)), mapping

        if isinstance(node, Projection):
            child, mapping = rewrite(node.child)
            attributes = [_substitute_attribute(a, mapping) for a in node.attributes]
            return Projection(child, attributes), mapping

        if isinstance(node, (Product, Join)):
            left, left_map = rewrite(node.children[0])
            right, right_map = rewrite(node.children[1])
            mapping = _merge_mappings(left_map, right_map)
            if isinstance(node, Product):
                return Product(left, right), mapping
            condition = _substitute_predicate(node.condition, mapping)
            return Join(left, right, condition), mapping

        if isinstance(node, (Union, Difference)):
            left, left_map = rewrite(node.children[0])
            right, _ = rewrite(node.children[1])
            # Attributes above a union/difference refer to the left operand only.
            cls = Union if isinstance(node, Union) else Difference
            return cls(left, right), left_map

        raise QueryError(f"cannot normalize unknown node {type(node).__name__}")

    rewritten, _ = rewrite(query)
    return NormalizedQuery(rewritten, dict(occurrences), dict(renamed))


def _merge_mappings(left: dict[str, str], right: dict[str, str]) -> dict[str, str]:
    merged = dict(left)
    for key, value in right.items():
        if key in merged and merged[key] != value:
            raise QueryError(
                f"ambiguous occurrence {key!r}: renamed to both {merged[key]!r} and {value!r} "
                "within the same product/join"
            )
        merged[key] = value
    return merged


def _substitute_attribute(attribute: Attribute, mapping: Mapping[str, str]) -> Attribute:
    new_relation = mapping.get(attribute.relation)
    if new_relation is None:
        return attribute
    return Attribute(new_relation, attribute.name)


def _substitute_predicate(predicate: Predicate, mapping: Mapping[str, str]) -> Predicate:
    if not mapping:
        return predicate
    atoms = []
    for conjunct in predicate.conjuncts():
        if isinstance(conjunct, Comparison):
            left = (
                _substitute_attribute(conjunct.left, mapping)
                if isinstance(conjunct.left, Attribute)
                else conjunct.left
            )
            right = (
                _substitute_attribute(conjunct.right, mapping)
                if isinstance(conjunct.right, Attribute)
                else conjunct.right
            )
            atoms.append(Comparison(left, conjunct.op, right))
        elif isinstance(conjunct, And):  # pragma: no cover - conjuncts() flattens Ands
            atoms.append(_substitute_predicate(conjunct, mapping))
        else:
            atoms.append(conjunct)
    result = conjunction(atoms)
    assert result is not None
    return result
