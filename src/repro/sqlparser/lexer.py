"""Tokenizer for the SQL subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.errors import ParseError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    STRING = "string"
    NUMBER = "number"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    EOF = "eof"


KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "and",
    "or",
    "join",
    "inner",
    "on",
    "as",
    "union",
    "except",
    "intersect",
    "not",
    "in",
    "all",
}

OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
PUNCTUATION = (",", "(", ")", ".", "*", ";")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its position in the input text."""

    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        if self.type is not token_type:
            return False
        if value is None:
            return True
        return self.value.lower() == value.lower()


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`ParseError` on unexpected characters."""
    tokens: list[Token] = []
    position = 0
    length = len(text)

    while position < length:
        char = text[position]

        if char.isspace():
            position += 1
            continue

        if char == "-" and text[position : position + 2] == "--":
            end = text.find("\n", position)
            position = length if end == -1 else end + 1
            continue

        if char == "'":
            end = position + 1
            buffer: list[str] = []
            while end < length:
                if text[end] == "'" and end + 1 < length and text[end + 1] == "'":
                    buffer.append("'")
                    end += 2
                    continue
                if text[end] == "'":
                    break
                buffer.append(text[end])
                end += 1
            else:
                raise ParseError("unterminated string literal", position, text)
            tokens.append(Token(TokenType.STRING, "".join(buffer), position))
            position = end + 1
            continue

        if char == '"':
            end = text.find('"', position + 1)
            if end == -1:
                raise ParseError("unterminated quoted identifier", position, text)
            tokens.append(Token(TokenType.IDENTIFIER, text[position + 1 : end], position))
            position = end + 1
            continue

        if char.isdigit():
            end = position
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # A dot not followed by a digit is qualification, not a decimal point.
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenType.NUMBER, text[position:end], position))
            position = end
            continue

        matched_operator = next(
            (op for op in OPERATORS if text.startswith(op, position)), None
        )
        if matched_operator:
            tokens.append(Token(TokenType.OPERATOR, matched_operator, position))
            position += len(matched_operator)
            continue

        if char in PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, position))
            position += 1
            continue

        if char.isalpha() or char == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[position:end]
            token_type = TokenType.KEYWORD if word.lower() in KEYWORDS else TokenType.IDENTIFIER
            tokens.append(Token(token_type, word, position))
            position = end
            continue

        raise ParseError(f"unexpected character {char!r}", position, text)

    tokens.append(Token(TokenType.EOF, "", length))
    return tokens
