"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.core.serialize import dump_access_schema, dump_schema
from repro.workloads import facebook


FB_Q1_SQL = (
    "SELECT d.cid FROM friend f JOIN dine d ON f.fid = d.pid "
    "JOIN cafe c ON d.cid = c.cid "
    "WHERE f.pid = 'p0' AND d.month = 'may' AND d.year = 2015 AND c.city = 'nyc'"
)
FB_Q2_SQL = "SELECT cid FROM dine WHERE pid = 'p0'"


class TestCheckCommand:
    def test_covered_query_exit_zero(self, capsys):
        code = main(["check", "--workload", "facebook", "--scale", "30", "--sql", FB_Q1_SQL])
        out = capsys.readouterr().out
        assert code == 0
        assert "covered: True" in out
        assert "access bound" in out

    def test_uncovered_query_exit_one(self, capsys):
        code = main(["check", "--workload", "facebook", "--scale", "30", "--sql", FB_Q2_SQL])
        out = capsys.readouterr().out
        assert code == 1
        assert "covered: False" in out

    def test_parse_error_reported(self, capsys):
        code = main(["check", "--workload", "facebook", "--scale", "30",
                     "--sql", "SELEC broken"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err


class TestPlanCommand:
    def test_plan_steps_printed(self, capsys):
        code = main(["plan", "--workload", "facebook", "--scale", "30", "--sql", FB_Q1_SQL])
        out = capsys.readouterr().out
        assert code == 0
        assert "fetch" in out
        assert "access bound" in out
        assert "minimized access schema" in out

    def test_plan_sql_output(self, capsys):
        code = main(["plan", "--workload", "facebook", "--scale", "30",
                     "--sql", FB_Q1_SQL, "--sql-output"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.lstrip().startswith("--") or "WITH" in out
        assert "ind_" in out

    def test_plan_uncovered_fails(self, capsys):
        code = main(["plan", "--workload", "facebook", "--scale", "30", "--sql", FB_Q2_SQL])
        captured = capsys.readouterr()
        assert code == 1
        assert "not fetchable" in captured.err or "not indexed" in captured.err


class TestRunCommand:
    def test_run_prints_rows_and_stats(self, capsys):
        code = main(["run", "--workload", "facebook", "--scale", "40", "--seed", "1",
                     "--sql", FB_Q1_SQL])
        captured = capsys.readouterr()
        assert code == 0
        assert "strategy: bounded" in captured.err
        assert "P(D_Q)" in captured.err

    def test_run_falls_back_for_uncovered(self, capsys):
        code = main(["run", "--workload", "facebook", "--scale", "30",
                     "--sql", FB_Q2_SQL])
        captured = capsys.readouterr()
        assert code == 0
        assert "strategy: conventional" in captured.err


class TestDiscoverCommand:
    def test_discover_to_stdout(self, capsys):
        code = main(["discover", "--workload", "facebook", "--scale", "25",
                     "--max-lhs", "1", "--max-bound", "100"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert isinstance(payload, list) and payload
        assert {"relation", "lhs", "rhs", "bound"} <= set(payload[0])

    def test_discover_to_file(self, tmp_path, capsys):
        output = tmp_path / "constraints.json"
        code = main(["discover", "--workload", "facebook", "--scale", "25",
                     "--output", str(output)])
        assert code == 0
        assert output.exists()
        assert json.loads(output.read_text())


class TestCSVSource:
    def test_check_with_csv_data_and_constraints(self, tmp_path, fb_schema, fb_access, capsys):
        database = facebook.generate(scale=25, seed=3)
        data_dir = tmp_path / "data"
        database.to_directory(data_dir)
        schema_path = tmp_path / "schema.json"
        constraints_path = tmp_path / "constraints.json"
        dump_schema(fb_schema, schema_path)
        dump_access_schema(fb_access, constraints_path)
        code = main([
            "check",
            "--schema", str(schema_path),
            "--data", str(data_dir),
            "--constraints", str(constraints_path),
            "--sql", FB_Q1_SQL,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "covered: True" in out

    def test_missing_source_arguments(self):
        with pytest.raises(SystemExit):
            main(["check", "--sql", FB_Q1_SQL])
