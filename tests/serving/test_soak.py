"""The seeded chaos soak, exercised end to end at test scale.

The configurations here are small but real: faults armed at every seam,
every served read cross-checked against the uncached reference evaluator.
Determinism makes pinning a seed sound — the same seed replays the same
schedule bit for bit.
"""

from repro.serving.soak import SoakConfig, run_soak

QUICK = dict(
    scale=40,
    requests=60,
    seed=11,
    queue_depth=8,
    covered_queries=4,
    uncovered_queries=2,
)


class TestSoak:
    def test_seeded_chaos_soak_passes(self):
        report = run_soak(SoakConfig(**QUICK))
        failed = [check for check, ok in report["checks"].items() if not ok]
        assert report["passed"], f"failed checks: {failed}\noutcome: {report['outcome']}"
        assert report["outcome"]["reads_verified"] > 0
        assert report["outcome"]["mismatches"] == []
        # The chaos actually happened: faults were injected at every seam.
        assert report["faults"]["fallback"]["injected"] > 0
        assert report["faults"]["storage.write"]["injected"] > 0

    def test_soak_without_faults_passes_clean(self):
        report = run_soak(SoakConfig(**{**QUICK, "requests": 30}, faults=False))
        assert report["passed"], report["checks"]
        assert "breaker_opened" not in report["checks"]  # fault checks not demanded
        assert report["outcome"]["writes_partial"] == 0
        assert report["outcome"]["failed_transient"] == 0

    def test_soak_is_deterministic_per_seed(self):
        first = run_soak(SoakConfig(**QUICK))
        second = run_soak(SoakConfig(**QUICK))
        assert first["outcome"] == second["outcome"]
        assert first["faults"] == second["faults"]
