"""Integration tests for :class:`repro.serving.server.BoundedServer`.

Each test drives the asyncio server inside ``asyncio.run`` from a sync test
function; the engine runs against the Example 1 facebook database, so every
assertion about served rows can be cross-checked against the reference
evaluator.
"""

import asyncio

import pytest

from repro.core.engine import BoundedEngine
from repro.core.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    TransientFault,
)
from repro.discovery.maintenance import Update
from repro.evaluator.algebra import evaluate
from repro.serving.faults import FaultInjector, FaultSpec
from repro.serving.server import (
    BoundedServer,
    ReadRequest,
    ServerConfig,
    WriteRequest,
)


@pytest.fixture
def engine(fb_database, fb_access) -> BoundedEngine:
    return BoundedEngine(fb_database, fb_access, check_constraints=False)


def uncovered_query(fb_database):
    """A full scan of ``friend``: no access constraint covers it, and there
    is no covered rewriting — it must take the conventional fallback."""
    from repro.core.query import Relation

    friend = Relation.from_schema(fb_database.schema, "friend")
    return friend.project([friend["pid"]])


def serve(engine, requests, config=None, **server_kwargs):
    """Run requests through a fresh server; returns results/exceptions in order."""

    async def _run():
        async with BoundedServer(engine, config, **server_kwargs) as server:
            tasks = [asyncio.ensure_future(server.submit(r)) for r in requests]
            return await asyncio.gather(*tasks, return_exceptions=True), server

    return asyncio.run(_run())


class TestLifecycle:
    def test_submit_before_start_is_a_typed_error(self, engine, fb_q0_prime):
        server = BoundedServer(engine)
        with pytest.raises(ReproError, match="not started"):
            asyncio.run(server.submit(ReadRequest(query=fb_q0_prime)))

    def test_breaker_is_mounted_on_the_engine(self, engine):
        server = BoundedServer(engine)
        assert engine.fallback_breaker is server.breaker


class TestReads:
    def test_covered_read_serves_reference_rows(self, engine, fb_q0_prime, fb_database):
        results, server = serve(engine, [ReadRequest(query=fb_q0_prime)])
        (response,) = results
        assert response.ok
        assert response.strategy == "bounded"
        assert response.ladder == ("bounded",)
        assert response.snapshot_valid
        assert response.rows == evaluate(fb_q0_prime, fb_database).rows

    def test_repeat_read_lands_on_the_result_cache_rung(self, engine, fb_q0_prime):
        results, server = serve(
            engine, [ReadRequest(query=fb_q0_prime), ReadRequest(query=fb_q0_prime)]
        )
        strategies = sorted(r.strategy for r in results)
        assert strategies == ["bounded", "result_cache"]
        assert server.metrics.ladder["result_cache"] == 1

    def test_uncovered_read_degrades_to_conventional(self, engine, fb_database):
        query = uncovered_query(fb_database)
        results, server = serve(engine, [ReadRequest(query=query)])
        (response,) = results
        if isinstance(response, BaseException):
            raise response
        assert response.ok
        assert response.strategy == "conventional"
        assert response.ladder == ("uncovered", "conventional")
        assert response.rows == evaluate(query, fb_database).rows
        assert server.metrics.ladder["conventional"] == 1

    def test_post_check_runs_for_every_successful_read(self, engine, fb_q0_prime):
        audited = []
        results, _ = serve(
            engine,
            [ReadRequest(query=fb_q0_prime), ReadRequest(query=fb_q0_prime)],
            post_check=lambda query, result: audited.append(query),
        )
        assert all(r.ok for r in results)
        assert len(audited) == 2


class TestAdmission:
    def test_queue_full_sheds_with_overloaded_error(self, engine, fb_q0_prime):
        config = ServerConfig(max_queue_depth=2, workers=1)
        requests = [ReadRequest(query=fb_q0_prime) for _ in range(30)]
        results, server = serve(engine, requests, config)
        sheds = [r for r in results if isinstance(r, OverloadedError)]
        served = [r for r in results if not isinstance(r, BaseException)]
        assert sheds, "burst beyond the queue depth must shed"
        assert served, "admitted requests must still be served"
        assert server.metrics.sheds["queue_full"] == len(sheds)
        assert server.metrics.queue_depth_peak <= config.max_queue_depth

    def test_cost_budget_sheds_expensive_covered_queries(self, engine, fb_q0_prime):
        prepared, _ = engine.prepare(fb_q0_prime)
        bound = prepared.plan.access_bound()
        config = ServerConfig(max_access_bound=bound - 1)
        results, server = serve(engine, [ReadRequest(query=fb_q0_prime)], config)
        (result,) = results
        assert isinstance(result, OverloadedError)
        assert "access bound" in str(result)
        assert server.metrics.sheds["cost"] == 1

    def test_cost_budget_admits_within_budget(self, engine, fb_q0_prime):
        prepared, _ = engine.prepare(fb_q0_prime)
        config = ServerConfig(max_access_bound=prepared.plan.access_bound())
        results, _ = serve(engine, [ReadRequest(query=fb_q0_prime)], config)
        assert results[0].ok

    def test_expired_deadline_is_refused(self, engine, fb_q0_prime):
        results, server = serve(
            engine, [ReadRequest(query=fb_q0_prime, timeout=0.0)]
        )
        (result,) = results
        assert isinstance(result, DeadlineExceededError)
        assert server.metrics.sheds["deadline"] == 1


class TestRetries:
    def test_transient_fault_is_retried_to_success(self, engine, fb_q0_prime):
        # Fail exactly the first executor call, then heal.
        calls = {"n": 0}
        original = engine._executor.execute

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientFault("first call fails")
            return original(*args, **kwargs)

        engine._executor.execute = flaky
        try:
            results, server = serve(engine, [ReadRequest(query=fb_q0_prime)])
        finally:
            del engine._executor.execute
        (response,) = results
        assert response.ok
        assert response.attempts == 2
        assert response.ladder == ("bounded:fault", "bounded")
        assert server.metrics.retries == 1

    def test_exhausted_retries_surface_the_fault(self, engine, fb_q0_prime):
        with FaultInjector(seed=0) as injector:
            injector.configure("executor", FaultSpec(error_rate=1.0))
            injector.install_engine(engine)
            results, server = serve(engine, [ReadRequest(query=fb_q0_prime)])
        (result,) = results
        assert isinstance(result, TransientFault)
        assert server.metrics.ladder["bounded_failed"] == 1


class TestBreaker:
    def test_broken_fallback_opens_breaker_and_rejects(self, engine, fb_database):
        query = uncovered_query(fb_database)
        with FaultInjector(seed=0) as injector:
            injector.configure("fallback", FaultSpec(error_rate=1.0))
            injector.install_engine(engine)
            config = ServerConfig(
                workers=1, breaker_failure_threshold=2, breaker_cooldown=60.0
            )
            requests = [ReadRequest(query=query) for _ in range(4)]
            results, server = serve(engine, requests, config)
        assert server.breaker.times_opened >= 1
        assert any(isinstance(r, CircuitOpenError) for r in results)
        assert server.metrics.sheds["breaker"] >= 1

    def test_covered_reads_survive_while_fallback_is_broken(
        self, engine, fb_database, fb_q0_prime
    ):
        query = uncovered_query(fb_database)
        with FaultInjector(seed=0) as injector:
            injector.configure("fallback", FaultSpec(error_rate=1.0))
            injector.install_engine(engine)
            config = ServerConfig(
                workers=1, breaker_failure_threshold=1, breaker_cooldown=60.0
            )
            requests = [
                ReadRequest(query=query),
                ReadRequest(query=fb_q0_prime),
                ReadRequest(query=query),
                ReadRequest(query=fb_q0_prime),
            ]
            results, server = serve(engine, requests, config)
        covered = [r for r in results if not isinstance(r, BaseException)]
        assert len(covered) == 2, "covered reads must be unaffected by the outage"
        assert all(r.rows == evaluate(fb_q0_prime, fb_database).rows for r in covered)


class TestWrites:
    def test_write_batch_applies_and_invalidates(self, engine, fb_database, fb_q0_prime):
        row = next(iter(fb_database.relation("cafe").rows))
        requests = [
            ReadRequest(query=fb_q0_prime),
            WriteRequest(updates=(Update.delete("cafe", row),)),
        ]

        async def _run():
            async with BoundedServer(engine) as server:
                first = await server.submit(requests[0])
                write = await server.submit(requests[1])
                second = await server.submit(requests[0])
                return first, write, second

        first, write, second = asyncio.run(_run())
        assert write.ok and write.strategy == "write"
        assert write.report.applied == 1
        # The re-read reflects the write and matches the reference evaluator.
        assert second.rows == evaluate(fb_q0_prime, fb_database).rows

    def test_partial_write_failure_returns_report_not_exception(
        self, engine, fb_database
    ):
        cafe_rows = list(fb_database.relation("cafe").rows)[:3]
        updates = tuple(Update.delete("cafe", row) for row in cafe_rows)
        with FaultInjector(seed=0) as injector:
            injector.configure("storage.write", FaultSpec(fail_every=2))
            injector.install_writes(fb_database, ["cafe"])
            results, server = serve(engine, [WriteRequest(updates=updates)])
        (response,) = results
        assert not response.ok
        assert response.strategy == "write_failed"
        assert response.ladder == ("write:partial_failure",)
        assert response.report is not None and response.report.failed
        assert response.report.applied == 1  # the clean prefix before the fault
        assert server.metrics.write_failures == 1
        # Reads after the partial batch still match the reference exactly.
        from repro.workloads import facebook

        q = facebook.query_q0_prime()
        read_results, _ = serve(engine, [ReadRequest(query=q)])
        assert read_results[0].rows == evaluate(q, fb_database).rows


class TestStats:
    def test_stats_shape(self, engine, fb_q0_prime):
        _, server = serve(engine, [ReadRequest(query=fb_q0_prime)])
        stats = server.stats()
        assert set(stats) == {"serving", "breaker", "caches"}
        assert stats["serving"]["completed"] == 1
        assert "latency" in stats["serving"]
