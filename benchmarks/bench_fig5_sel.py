"""Figure 5(b,f,j): impact of the number of selection atoms (#-sel ∈ [4, 9]).

For each #-sel value, covered queries are generated with that many equality
atoms and answered with bounded plans; evalQP time and P(D_Q) are reported.
The paper observes that more selections make bounded plans cheaper (more
constants seed the chase); the conventional baseline is largely insensitive.
"""

from repro.bench.experiments import selection_experiment


def test_fig5_selection_sweep(benchmark, workload, bench_scale):
    table = benchmark.pedantic(
        selection_experiment,
        kwargs={
            "workload": workload,
            "values": (4, 5, 6, 7, 8, 9),
            "seed": 13,
            "scale": bench_scale // 2,
            "queries_per_value": 3,
            "include_baseline": True,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())

    populated = [row for row in table.rows if row["queries"]]
    assert populated, "no covered queries generated in the #-sel sweep"
    for row in populated:
        assert row["P_DQ"] < 0.6
