"""Execution of bounded query plans (``evalQP``).

The executor runs a :class:`~repro.core.plan.BoundedPlan` against a database
whose constraint indexes have been materialized as an
:class:`~repro.storage.index.IndexSet`.  Data is accessed **only** through
``fetch`` steps (index lookups); every access is recorded on an
:class:`~repro.storage.counters.AccessCounter`, so the measured ``|D_Q|`` of
the experiments is exact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.access import AccessConstraint
from ..core.errors import PlanError
from ..core.plan import (
    BoundedPlan,
    ColumnPredicate,
    ColumnRef,
    ConstOp,
    DifferenceOp,
    FetchOp,
    IntersectOp,
    PlanStep,
    ProductOp,
    ProjectOp,
    RenameOp,
    SelectOp,
    UnionOp,
    UnitOp,
)
from ..storage.counters import AccessCounter
from ..storage.database import Database
from ..storage.index import ConstraintIndex, IndexSet
from .algebra import ResultSet, _compare

Row = tuple


@dataclass
class ExecutionResult:
    """The outcome of executing a bounded plan."""

    result: ResultSet
    counter: AccessCounter
    elapsed: float
    step_cardinalities: Mapping[int, int] = field(default_factory=dict)

    @property
    def rows(self) -> frozenset[Row]:
        return self.result.rows

    @property
    def columns(self) -> tuple[str, ...]:
        return self.result.columns

    def access_ratio(self, database_size: int) -> float:
        """``P(D_Q)`` — fraction of the database accessed by this execution."""
        return self.counter.ratio(database_size)


class PlanExecutor:
    """Executes bounded plans against a database through its constraint indexes."""

    def __init__(self, database: Database, indexes: IndexSet):
        self.database = database
        self.indexes = indexes

    def execute(
        self, plan: BoundedPlan, counter: AccessCounter | None = None
    ) -> ExecutionResult:
        """Run ``plan`` and return its result with exact access accounting."""
        counter = counter if counter is not None else AccessCounter()
        started = time.perf_counter()
        results: dict[int, ResultSet] = {}
        cardinalities: dict[int, int] = {}
        for step in plan.steps:
            results[step.id] = self._execute_step(plan, step, results, counter)
            cardinalities[step.id] = len(results[step.id])
        elapsed = time.perf_counter() - started
        return ExecutionResult(
            result=results[plan.output],
            counter=counter,
            elapsed=elapsed,
            step_cardinalities=cardinalities,
        )

    # ------------------------------------------------------------------
    def _execute_step(
        self,
        plan: BoundedPlan,
        step: PlanStep,
        results: Mapping[int, ResultSet],
        counter: AccessCounter,
    ) -> ResultSet:
        op = step.op
        if isinstance(op, ConstOp):
            return ResultSet(columns=(op.column,), rows=frozenset({(op.value,)}))
        if isinstance(op, UnitOp):
            return ResultSet(columns=(), rows=frozenset({()}))
        if isinstance(op, FetchOp):
            return self._execute_fetch(plan, step, results[op.inputs[0]], counter)
        if isinstance(op, ProjectOp):
            source = results[op.inputs[0]]
            positions = [source.column_position(c) for c in op.columns]
            names = op.output_names if op.output_names is not None else op.columns
            rows = frozenset(tuple(row[p] for p in positions) for row in source.rows)
            return ResultSet(columns=tuple(names), rows=rows)
        if isinstance(op, SelectOp):
            source = results[op.inputs[0]]
            matcher = _compile_predicates(op.predicates, source.columns)
            return ResultSet(source.columns, frozenset(r for r in source.rows if matcher(r)))
        if isinstance(op, RenameOp):
            source = results[op.inputs[0]]
            columns = tuple(op.mapping.get(c, c) for c in source.columns)
            return ResultSet(columns, source.rows)
        if isinstance(op, ProductOp):
            left, right = results[op.inputs[0]], results[op.inputs[1]]
            columns = left.columns + right.columns
            rows = frozenset(l + r for l in left.rows for r in right.rows)
            return ResultSet(columns, rows)
        if isinstance(op, UnionOp):
            left, right = results[op.inputs[0]], results[op.inputs[1]]
            self._check_arity(left, right, step)
            return ResultSet(left.columns, left.rows | right.rows)
        if isinstance(op, DifferenceOp):
            left, right = results[op.inputs[0]], results[op.inputs[1]]
            self._check_arity(left, right, step)
            return ResultSet(left.columns, left.rows - right.rows)
        if isinstance(op, IntersectOp):
            left, right = results[op.inputs[0]], results[op.inputs[1]]
            self._check_arity(left, right, step)
            return ResultSet(left.columns, left.rows & right.rows)
        raise PlanError(f"unknown plan operator {type(op).__name__} in step T{step.id}")

    @staticmethod
    def _check_arity(left: ResultSet, right: ResultSet, step: PlanStep) -> None:
        if len(left.columns) != len(right.columns):
            raise PlanError(
                f"step T{step.id}: operands have arities {len(left.columns)} and "
                f"{len(right.columns)}"
            )

    def _execute_fetch(
        self,
        plan: BoundedPlan,
        step: PlanStep,
        source: ResultSet,
        counter: AccessCounter,
    ) -> ResultSet:
        op: FetchOp = step.op  # type: ignore[assignment]
        index = self._resolve_index(plan, op.constraint)
        key_positions = [source.column_position(c) for c in op.key_columns]
        fetched: set[Row] = set()
        seen_keys: set[Row] = set()
        for row in source.rows:
            key = tuple(row[p] for p in key_positions)
            if key in seen_keys:
                continue
            seen_keys.add(key)
            fetched.update(index.lookup(key, counter))
        # Index tuples are aligned with sorted(lhs | rhs); so are the step's columns.
        return ResultSet(columns=step.columns, rows=frozenset(fetched))

    def _resolve_index(self, plan: BoundedPlan, constraint: AccessConstraint) -> ConstraintIndex:
        """Map an actualized constraint back to the physical index of its base relation."""
        base = plan.occurrences.get(constraint.relation, constraint.relation)
        index = self.indexes.get(constraint)
        if index is not None:
            return index
        index = self.indexes.find(base, constraint.lhs, constraint.rhs)
        if index is None:
            raise PlanError(
                f"no index available for constraint {constraint} (base relation {base!r}); "
                "build an IndexSet for the access schema first"
            )
        return index


def _compile_predicates(
    predicates: Sequence[ColumnPredicate], columns: Sequence[str]
):
    compiled: list[tuple[int, str, object, int | None]] = []
    columns_list = list(columns)
    for predicate in predicates:
        left = columns_list.index(predicate.left)
        if isinstance(predicate.right, ColumnRef):
            compiled.append((left, predicate.op, None, columns_list.index(predicate.right.column)))
        else:
            compiled.append((left, predicate.op, predicate.right, None))

    def matches(row: Row) -> bool:
        for left_pos, op, constant, right_pos in compiled:
            right_value = row[right_pos] if right_pos is not None else constant
            if not _compare(row[left_pos], op, right_value):
                return False
        return True

    return matches


def execute_plan(
    plan: BoundedPlan,
    database: Database,
    indexes: IndexSet,
    counter: AccessCounter | None = None,
) -> ExecutionResult:
    """Convenience wrapper around :class:`PlanExecutor`."""
    return PlanExecutor(database, indexes).execute(plan, counter)
