"""Command-line interface for the bounded-evaluation library.

Usage (after ``pip install -e .``)::

    python -m repro.cli check    --workload AIRCA --sql "SELECT ..."
    python -m repro.cli plan     --workload TFACC --sql "SELECT ..." [--no-minimize]
    python -m repro.cli run      --workload MCBM  --sql "SELECT ..." [--scale 300]
    python -m repro.cli discover --workload AIRCA --output constraints.json
    python -m repro.cli report   --workload TFACC --quick
    python -m repro.cli soak     --workload AIRCA --requests 200 --seed 0

Instead of a built-in workload, ``--schema schema.json --data DIR
[--constraints constraints.json]`` loads a database from CSV files (one per
relation, as written by :meth:`repro.storage.database.Database.to_directory`)
with a JSON schema and constraint list (see :mod:`repro.core.serialize`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core.coverage import check_coverage
from .core.engine import BoundedEngine
from .core.errors import ReproError
from .core.minimize import minimize_auto
from .core.plan2sql import plan_to_sql
from .core.planner import generate_plan
from .core.serialize import (
    access_schema_to_list,
    dump_access_schema,
    load_access_schema,
    load_schema,
)
from .discovery import DiscoveryConfig, discover_access_schema
from .sqlparser import parse_sql
from .storage.database import Database
from .workloads import WORKLOADS


def _add_source_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=sorted(WORKLOADS) + ["facebook"],
                        help="use a built-in workload (schema, constraints, generator)")
    parser.add_argument("--scale", type=int, default=200,
                        help="generator scale for built-in workloads (default 200)")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument("--schema", type=Path, help="JSON database schema (with --data)")
    parser.add_argument("--data", type=Path, help="directory of CSV files, one per relation")
    parser.add_argument("--constraints", type=Path,
                        help="JSON access-constraint list (defaults to discovery on --data)")


def _load_source(args) -> tuple[Database, "AccessSchema"]:
    """Resolve --workload / --schema+--data into a database and access schema."""
    from .core.access import AccessSchema
    from .workloads import facebook

    if args.workload:
        if args.workload == "facebook":
            spec_schema = facebook.schema()
            access = facebook.access_schema(spec_schema)
            database = facebook.generate(scale=args.scale, seed=args.seed)
        else:
            spec = WORKLOADS[args.workload]
            access = spec.access_schema
            database = spec.database(scale=args.scale, seed=args.seed)
        return database, access

    if not args.schema or not args.data:
        raise SystemExit("either --workload or both --schema and --data are required")
    schema = load_schema(args.schema)
    database = Database.from_directory(schema, args.data)
    if args.constraints:
        access = load_access_schema(args.constraints, schema=schema)
    else:
        access = discover_access_schema(database)
    return database, access


def _parse_query(args, database):
    sql = args.sql
    if sql == "-":
        sql = sys.stdin.read()
    return parse_sql(sql, database.schema)


# ---------------------------------------------------------------------------
# Sub-commands
# ---------------------------------------------------------------------------

def command_check(args) -> int:
    database, access = _load_source(args)
    query = _parse_query(args, database)
    result = check_coverage(query, access)
    print(result.explain())
    if result.is_covered:
        plan = generate_plan(result)
        print(f"bounded plan: {plan.length} steps, access bound {plan.access_bound()} tuples")
    return 0 if result.is_covered else 1


def command_plan(args) -> int:
    database, access = _load_source(args)
    query = _parse_query(args, database)
    coverage = check_coverage(query, access)
    if not coverage.is_covered:
        print(coverage.explain(), file=sys.stderr)
        return 1
    if not args.no_minimize:
        minimized = minimize_auto(query, access)
        coverage = check_coverage(query, minimized.selected)
        print(f"-- minimized access schema ({minimized.method}): "
              f"{len(minimized.selected)} constraints, Σ N = {minimized.cost}")
    plan = generate_plan(coverage)
    if args.sql_output:
        print(plan_to_sql(plan).sql)
    else:
        print(plan)
        print(f"-- access bound: {plan.access_bound()} tuples")
    return 0


def command_run(args) -> int:
    database, access = _load_source(args)
    query = _parse_query(args, database)
    engine = BoundedEngine(
        database, access, check_constraints=False, executor_mode=args.executor
    )
    repeat = max(1, args.repeat)
    for _ in range(repeat):
        result = engine.execute(query, minimize=not args.no_minimize)
    for row in sorted(result.rows, key=repr):
        print("\t".join(str(value) for value in row))
    served = (
        " | served from result cache" if result.result_cached else ""
    )
    executor = (
        f" | executor: {result.executor_mode}" if result.executor_mode else ""
    )
    print(
        f"-- {len(result.rows)} rows | strategy: {result.strategy} | rewrite: {result.rewrite} | "
        f"accessed {result.counter.total} of {database.size} tuples "
        f"(P(D_Q) = {result.access_ratio(database.size):.6f}) in {result.elapsed * 1000:.1f}ms"
        f"{executor}{served}",
        file=sys.stderr,
    )
    if args.cache_stats:
        stats = engine.cache_stats()
        for cache_name in ("plan_store", "result_cache", "executor"):
            line = " ".join(
                f"{key}={value:.2f}" if isinstance(value, float) else f"{key}={value}"
                for key, value in stats[cache_name].items()
            )
            print(f"-- {cache_name}: {line}", file=sys.stderr)
    return 0


def command_discover(args) -> int:
    database, _ = _load_source(args)
    config = DiscoveryConfig(
        max_lhs_size=args.max_lhs, max_bound=args.max_bound, domain_threshold=args.domain
    )
    access = discover_access_schema(database, config)
    payload = access_schema_to_list(access)
    if args.output:
        dump_access_schema(access, args.output)
        print(f"wrote {len(payload)} constraints to {args.output}")
    else:
        print(json.dumps(payload, indent=2))
    return 0


def command_report(args) -> int:
    from .bench import (
        coverage_experiment,
        efficiency_experiment,
        index_size_experiment,
        scale_experiment,
    )

    if not args.workload or args.workload == "facebook":
        raise SystemExit("report requires --workload AIRCA|TFACC|MCBM")
    workload = WORKLOADS[args.workload]
    n_queries = 30 if args.quick else 100
    factors = (0.25, 1.0) if args.quick else (2**-5, 2**-3, 2**-1, 1.0)
    print(coverage_experiment(workload, n_queries=n_queries).render())
    print()
    print(scale_experiment(workload, base_scale=args.scale, scale_factors=factors,
                           n_queries=3).render())
    print()
    print(index_size_experiment(workload, scale=args.scale).render())
    print()
    print(efficiency_experiment(workload, n_queries=15).render())
    return 0


def command_soak(args) -> int:
    from .serving.soak import SoakConfig, run_soak

    if not args.workload or args.workload == "facebook":
        raise SystemExit("soak requires --workload AIRCA|TFACC|MCBM")
    config = SoakConfig(
        workload=args.workload,
        scale=args.scale,
        seed=args.seed,
        shards=args.shards,
        replicas=args.replicas,
        requests=args.requests,
        write_ratio=args.write_ratio,
        faults=not args.no_faults,
        verify=not args.no_verify,
        queue_depth=args.queue_depth,
        kill_shard=args.kill_shard,
        flaky_shard=args.flaky_shard,
        rebalance=args.rebalance,
    )
    report = run_soak(config)
    if args.output:
        args.output.write_text(json.dumps(report, indent=2, default=repr) + "\n")
        print(f"wrote soak report to {args.output}", file=sys.stderr)
    outcome = report["outcome"]
    serving = report["server"]["serving"]
    print(
        f"-- soak {args.workload} scale={args.scale} seed={args.seed}"
        f"{f' shards={args.shards}' if args.shards > 1 else ''}: "
        f"{outcome['reads_served']} reads served "
        f"({outcome['reads_verified']} verified vs reference), "
        f"{outcome['writes_ok']} write batches ok, "
        f"{outcome['writes_partial']} partial"
    )
    print(
        f"-- sheds: overload={outcome['shed_overload']} "
        f"deadline={outcome['shed_deadline']} breaker={outcome['rejected_breaker']} | "
        f"queue peak {serving['queue_depth_peak']} | "
        f"covered p99 {report['covered_p99_ms']:.2f}ms | "
        f"breaker opened {report['server']['breaker']['times_opened']}x"
    )
    if "router" in report:
        scatter = report["router"]["scatter_gather"]
        shards_line = ", ".join(
            f"{s['name']}({s['tuples']})" for s in report["router"]["shards"]
        )
        print(
            f"-- federation: {shards_line} | scatters={scatter['scatters']} "
            f"(routed={scatter['routed']} broadcast={scatter['broadcasts']}) | "
            f"merge rows mean {scatter['merge_rows_mean']:.1f} "
            f"max {scatter['merge_rows_max']} | "
            f"snapshot retries {scatter['snapshot_retries']} | "
            f"shard cache {scatter['shard_cache_hits']}h/"
            f"{scatter['shard_cache_misses']}m"
        )
        replication = report["router"]["replication"]
        if replication["replica_sets"]:
            print(
                f"-- replication: {replication['replicas']} replicas in "
                f"{replication['replica_sets']} sets | "
                f"failovers={replication['failovers']} "
                f"hedged={replication['hedged_reads']} "
                f"quarantines={replication['quarantines']} "
                f"catch-ups={replication['catch_ups']} "
                f"({replication['rows_resynced']} rows resynced) | "
                f"quarantined now: {replication['quarantined']}"
            )
        if scatter["rebalances"] or scatter["rebalance_aborts"]:
            print(
                f"-- rebalance: {scatter['rebalances']} completed "
                f"({scatter['rebalance_rows_moved']} rows moved), "
                f"{scatter['rebalance_aborts']} aborted"
            )
    rungs = report.get("latency_rungs", {})
    if rungs:
        rung_line = "  ".join(
            f"{name} p50={sample.get('p50_ms', 0.0):.2f} "
            f"p95={sample.get('p95_ms', 0.0):.2f} "
            f"p99={sample.get('p99_ms', 0.0):.2f}"
            for name, sample in sorted(rungs.items())
            if sample.get("count")
        )
        if rung_line:
            print(f"-- latency (ms/rung): {rung_line}")
    for check, ok in sorted(report["checks"].items()):
        print(f"-- {'PASS' if ok else 'FAIL'} {check}")
    print(f"-- soak {'PASSED' if report['passed'] else 'FAILED'}")
    return 0 if report["passed"] else 1


# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    check = subparsers.add_parser("check", help="run CovChk on a SQL query")
    _add_source_arguments(check)
    check.add_argument("--sql", required=True, help="SQL text (or '-' for stdin)")
    check.set_defaults(handler=command_check)

    plan = subparsers.add_parser("plan", help="generate a bounded plan for a SQL query")
    _add_source_arguments(plan)
    plan.add_argument("--sql", required=True)
    plan.add_argument("--no-minimize", action="store_true", help="skip access minimization")
    plan.add_argument("--sql-output", action="store_true",
                      help="print the Plan2SQL translation instead of the plan steps")
    plan.set_defaults(handler=command_plan)

    run = subparsers.add_parser("run", help="answer a SQL query (bounded when possible)")
    _add_source_arguments(run)
    run.add_argument("--sql", required=True)
    run.add_argument("--no-minimize", action="store_true")
    run.add_argument("--repeat", type=int, default=1,
                     help="execute the query N times (exercises the hot path; "
                          "repeats are served from the plan store / result cache)")
    run.add_argument("--executor", choices=("auto", "row", "columnar"), default="auto",
                     help="plan-execution kernels: cost-based choice (auto), "
                          "row-at-a-time, or vectorized columnar")
    run.add_argument("--cache-stats", action="store_true",
                     help="print plan-store, result-cache and executor statistics to stderr")
    run.set_defaults(handler=command_run)

    discover = subparsers.add_parser("discover", help="mine access constraints from data")
    _add_source_arguments(discover)
    discover.add_argument("--output", type=Path, help="write constraints JSON here")
    discover.add_argument("--max-lhs", type=int, default=2)
    discover.add_argument("--max-bound", type=int, default=1000)
    discover.add_argument("--domain", type=int, default=64)
    discover.set_defaults(handler=command_discover)

    report = subparsers.add_parser("report", help="run a condensed experiment report")
    _add_source_arguments(report)
    report.add_argument("--quick", action="store_true")
    report.set_defaults(handler=command_report)

    soak = subparsers.add_parser(
        "soak",
        help="run the seeded fault-injection serving soak (chaos test)",
        description="Drive the hardened serving tier with randomized mixed "
                    "read/write traffic under injected faults, cross-checking "
                    "every served read against the uncached reference "
                    "evaluator. Exits 0 only if every robustness check holds.",
    )
    _add_source_arguments(soak)
    soak.add_argument("--shards", type=int, default=1,
                      help="serve through a federated router over N heterogeneous "
                           "shards (memory/SQLite alternating); disables engine-seam "
                           "fault injection (default 1: single engine)")
    soak.add_argument("--replicas", type=int, default=1,
                      help="replicas per logical shard (sharded mode only; "
                           "--kill-shard/--flaky-shard force at least 2)")
    soak.add_argument("--kill-shard", action="store_true",
                      help="chaos scenario: one replica of shard 0 dies mid-run; "
                           "reads must fail over and stay row-identical")
    soak.add_argument("--flaky-shard", action="store_true",
                      help="chaos scenario: one replica turns intermittently faulty "
                           "(fetch errors, torn writes, stale epoch tokens) mid-run")
    soak.add_argument("--rebalance", action="store_true",
                      help="chaos scenario: migrate a key range between shards "
                           "under traffic (epoch-guarded)")
    soak.add_argument("--requests", type=int, default=200,
                      help="mixed-traffic requests before the overload/deadline phases")
    soak.add_argument("--write-ratio", type=float, default=0.2,
                      help="fraction of requests that are write batches (default 0.2)")
    soak.add_argument("--no-faults", action="store_true",
                      help="run the same traffic without injected faults")
    soak.add_argument("--no-verify", action="store_true",
                      help="skip the per-read reference cross-check (faster)")
    soak.add_argument("--queue-depth", type=int, default=32,
                      help="admission queue depth (the overload burst is 3x this)")
    soak.add_argument("--output", type=Path, help="write the full JSON report here")
    soak.set_defaults(handler=command_soak)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())
