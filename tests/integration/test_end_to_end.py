"""End-to-end integration: random queries over every workload, all pipelines agree.

For each workload, random queries are generated and answered four ways:

1. the reference RA evaluator (ground truth),
2. the conventional baseline (evalDBMS),
3. the bounded plan executor (evalQP) when the query is covered,
4. the SQLite backend running the Plan2SQL translation.

All four must return the same rows; the bounded paths must only touch data
through indexes.
"""

import pytest

from repro.backends.sqlite import SQLiteBackend
from repro.core.coverage import check_coverage
from repro.core.engine import BoundedEngine
from repro.core.minimize import minimize_auto
from repro.core.planner import generate_plan
from repro.core.plan2sql import plan_to_sql
from repro.evaluator.algebra import evaluate
from repro.evaluator.baseline import evaluate_conventional
from repro.evaluator.executor import execute_plan
from repro.storage.index import IndexSet
from repro.workloads import WORKLOADS, RandomQueryGenerator


@pytest.fixture(scope="module", params=sorted(WORKLOADS), ids=sorted(WORKLOADS))
def setup(request):
    workload = WORKLOADS[request.param]
    database = workload.database(scale=50, seed=21)
    indexes = IndexSet.build(database, workload.access_schema, check=True)
    generator = RandomQueryGenerator(workload, database=database, seed=33)
    queries = [query for _, query in generator.generate_batch(12, unidiff_range=(0, 2))]
    return workload, database, indexes, queries


class TestPipelinesAgree:
    def test_bounded_plans_match_reference(self, setup):
        workload, database, indexes, queries = setup
        covered_seen = 0
        for query in queries:
            coverage = check_coverage(query, workload.access_schema)
            truth = evaluate(query, database).rows
            if coverage.is_covered:
                covered_seen += 1
                plan = generate_plan(coverage)
                execution = execute_plan(plan, database, indexes)
                assert execution.rows == truth
                assert execution.counter.scanned == 0
        assert covered_seen >= 1

    def test_baseline_matches_reference(self, setup):
        workload, database, indexes, queries = setup
        for query in queries[:6]:
            truth = evaluate(query, database).rows
            baseline = evaluate_conventional(query, database, workload.access_schema, indexes)
            assert baseline.rows == truth

    def test_engine_always_answers_correctly(self, setup):
        workload, database, indexes, queries = setup
        engine = BoundedEngine(database, workload.access_schema, check_constraints=False)
        for query in queries[:8]:
            truth = evaluate(query, database).rows
            result = engine.execute(query)
            assert result.rows == truth

    def test_sqlite_backend_agrees_on_covered_queries(self, setup):
        workload, database, indexes, queries = setup
        backend = SQLiteBackend(database)
        backend.create_index_tables(workload.access_schema)
        checked = 0
        for query in queries:
            coverage = check_coverage(query, workload.access_schema)
            if not coverage.is_covered or checked >= 3:
                continue
            checked += 1
            plan = generate_plan(coverage)
            sql_rows = backend.run_bounded_plan(plan).rows
            assert sql_rows == evaluate(query, database).rows
        backend.close()
        assert checked >= 1

    def test_minimized_plans_match_reference(self, setup):
        workload, database, indexes, queries = setup
        checked = 0
        for query in queries:
            coverage = check_coverage(query, workload.access_schema)
            if not coverage.is_covered or checked >= 3:
                continue
            checked += 1
            minimized = minimize_auto(query, workload.access_schema)
            minimized_coverage = check_coverage(query, minimized.selected)
            assert minimized_coverage.is_covered
            plan = generate_plan(minimized_coverage)
            execution = execute_plan(plan, database, indexes)
            assert execution.rows == evaluate(query, database).rows
        assert checked >= 1


class TestBoundedAccessScaling:
    def test_access_does_not_grow_with_data(self, setup):
        """The defining property: |D_Q| stays put as |D| grows."""
        workload, database, indexes, queries = setup
        covered = [
            q for q in queries if check_coverage(q, workload.access_schema).is_covered
        ]
        if not covered:
            pytest.skip("no covered query generated for this workload seed")
        query = covered[0]
        coverage = check_coverage(query, workload.access_schema)
        plan = generate_plan(coverage)

        small = database.scaled(0.25, seed=1)
        small_indexes = IndexSet.build(small, workload.access_schema, check=False)
        small_access = execute_plan(plan, small, small_indexes).counter.total
        large_access = execute_plan(plan, database, indexes).counter.total
        bound = plan.access_bound()
        assert small_access <= bound
        assert large_access <= bound
