"""Unit tests for the end-to-end BoundedEngine (Section 7 framework)."""

import pytest

from repro.core.engine import BoundedEngine
from repro.core.errors import NotCoveredError
from repro.evaluator.algebra import evaluate
from repro.workloads import facebook


@pytest.fixture
def engine(fb_database, fb_access):
    return BoundedEngine(fb_database, fb_access)


class TestEngineBasics:
    def test_check_and_is_covered(self, engine, fb_q1, fb_q2):
        assert engine.is_covered(fb_q1)
        assert not engine.is_covered(fb_q2)
        assert engine.check(fb_q1).is_covered

    def test_plan_for_covered_query(self, engine, fb_q1):
        plan, coverage, minimization = engine.plan(fb_q1)
        assert plan.is_bounded
        assert coverage.is_covered
        assert minimization is not None
        assert len(minimization.selected) <= 4

    def test_plan_without_minimization(self, engine, fb_q1):
        plan, coverage, minimization = engine.plan(fb_q1, minimize=False)
        assert minimization is None
        assert plan.is_bounded

    def test_plan_for_uncovered_raises(self, engine, fb_q2):
        with pytest.raises(NotCoveredError):
            engine.plan(fb_q2)

    def test_to_sql(self, engine, fb_q1):
        translation = engine.to_sql(fb_q1)
        assert translation.sql.startswith("WITH")

    def test_index_footprint_report(self, engine, fb_database, fb_access):
        report = engine.index_footprint()
        assert report["database_tuples"] == fb_database.size
        assert report["constraints"] == len(fb_access)
        assert report["index_tuples"] > 0
        assert report["build_seconds"] >= 0


class TestEngineExecution:
    def test_covered_query_executes_bounded(self, engine, fb_q1, fb_database):
        result = engine.execute(fb_q1)
        assert result.strategy == "bounded"
        assert result.rows == evaluate(fb_q1, fb_database).rows
        assert result.counter.fetched > 0
        assert result.counter.scanned == 0

    def test_q0_rewritten_then_bounded(self, engine, fb_q0, fb_database):
        """The engine answers Example 1's Q0 with a bounded plan via rewriting."""
        result = engine.execute(fb_q0)
        assert result.strategy == "bounded"
        assert result.rewrite == "guard-difference"
        assert result.rows == evaluate(fb_q0, fb_database).rows

    def test_rewrite_disabled_falls_back(self, engine, fb_q0, fb_database):
        result = engine.execute(fb_q0, allow_rewrite=False)
        assert result.strategy == "conventional"
        assert result.rows == evaluate(fb_q0, fb_database).rows

    def test_uncovered_fallback(self, engine, fb_q2, fb_database):
        result = engine.execute(fb_q2)
        assert result.strategy == "conventional"
        assert result.rows == evaluate(fb_q2, fb_database).rows
        assert result.counter.total > 0

    def test_uncovered_without_fallback_raises(self, engine, fb_q2):
        with pytest.raises(NotCoveredError):
            engine.execute(fb_q2, fallback=False, allow_rewrite=False)

    def test_minimize_false_uses_full_schema(self, engine, fb_q1, fb_database):
        result = engine.execute(fb_q1, minimize=False)
        assert result.minimization is None
        assert result.rows == evaluate(fb_q1, fb_database).rows

    def test_access_ratio_small(self, engine, fb_q1, fb_database):
        result = engine.execute(fb_q1)
        assert 0 < result.access_ratio(fb_database.size) < 1.0


class TestEngineMaintenance:
    def test_insert_visible_to_queries(self, engine, fb_database, fb_access):
        q1 = facebook.query_q1(person="p0", month="may", year=2015, city="nyc")
        before = engine.execute(q1).rows
        # add a new friend of p0 who dined at a new nyc cafe in May 2015
        engine.apply_insert("cafe", ("c_new", "nyc"))
        engine.apply_insert("friend", ("p0", "p_new"))
        engine.apply_insert("dine", ("p_new", "c_new", "may", 2015))
        after = engine.execute(q1).rows
        assert ("c_new",) in after
        assert before <= after

    def test_insert_matches_reference_semantics(self, engine, fb_database):
        q1 = facebook.query_q1()
        engine.apply_insert("cafe", ("c_extra", "nyc"))
        engine.apply_insert("friend", ("p0", "p77"))
        engine.apply_insert("dine", ("p77", "c_extra", "may", 2015))
        assert engine.execute(q1).rows == evaluate(q1, fb_database).rows

    def test_delete_removes_answers(self, engine, fb_database):
        q1 = facebook.query_q1()
        engine.apply_insert("cafe", ("c_gone", "nyc"))
        engine.apply_insert("friend", ("p0", "p88"))
        engine.apply_insert("dine", ("p88", "c_gone", "may", 2015))
        assert ("c_gone",) in engine.execute(q1).rows
        engine.apply_delete("dine", ("p88", "c_gone", "may", 2015))
        result = engine.execute(q1)
        assert ("c_gone",) not in result.rows
        assert result.rows == evaluate(q1, fb_database).rows

    def test_engine_without_prebuilt_indexes(self, fb_database, fb_access, fb_q1):
        engine = BoundedEngine(fb_database, fb_access, build_indexes=False)
        # planning still works (purely syntactic)...
        plan, _, _ = engine.plan(fb_q1)
        assert plan.is_bounded
        # ...but bounded execution cannot find indexes and raises
        from repro.core.errors import PlanError

        with pytest.raises(PlanError):
            engine.execute(fb_q1, minimize=False)
