"""Canonical query fingerprints for the plan store and result cache.

Coverage checking, access minimization and plan generation depend only on the
*syntax* of a query (plus the access schema), never on the data.  Two
executions of syntactically identical queries can therefore share one bounded
plan — even across engine instances serving the same access schema.  This
module computes a canonical, hashable fingerprint of a
:class:`~repro.core.query.Query` so that
:class:`~repro.core.planstore.PlanStore` can key prepared plans by it, and
:func:`prepared_cache_key` folds in the preparation flags to form the full
cache key shared by the plan store and the result cache.

The fingerprint is the SHA-256 digest of an unambiguous serialization of the
query tree.  Serialization uses ``repr`` of nested tuples whose leaves are
tagged with their Python types, so that

* structurally identical queries built independently collide (cache hits),
* queries differing in *any* syntactic detail — an occurrence name, a rename
  target, the type of a constant (``1`` vs ``"1"`` vs ``True``), the order of
  conjuncts — get distinct fingerprints.

Fingerprints are deliberately syntactic: semantically equivalent but
syntactically different queries miss the cache, which costs a re-plan but can
never serve a wrong plan.
"""

from __future__ import annotations

import hashlib

from .errors import QueryError
from .query import (
    Comparison,
    Constant,
    Difference,
    Join,
    Predicate,
    Product,
    Projection,
    Query,
    Relation,
    Rename,
    Selection,
    Union,
)
from .schema import Attribute


def _term_form(term: object) -> tuple:
    if isinstance(term, Attribute):
        return ("attr", term.relation, term.name)
    if isinstance(term, Constant):
        return ("const", type(term.value).__name__, repr(term.value))
    # Bare values should not appear in well-formed predicates, but serialize
    # them the same way constants are rather than failing.
    return ("const", type(term).__name__, repr(term))


def _predicate_form(condition: Predicate) -> tuple:
    parts = []
    for atom in condition.atoms():
        if not isinstance(atom, Comparison):  # pragma: no cover - defensive
            raise QueryError(f"cannot fingerprint predicate {atom}")
        parts.append((_term_form(atom.left), atom.op, _term_form(atom.right)))
    return ("pred", tuple(parts))


def canonical_form(query: Query) -> tuple:
    """A nested-tuple serialization of the query tree, unique per syntax."""
    if isinstance(query, Relation):
        return ("rel", query.name, query.base, query.attribute_names)
    if isinstance(query, Selection):
        return ("sel", _predicate_form(query.condition), canonical_form(query.child))
    if isinstance(query, Projection):
        attrs = tuple((a.relation, a.name) for a in query.attributes)
        return ("proj", attrs, canonical_form(query.child))
    if isinstance(query, Product):
        return ("prod", canonical_form(query.left), canonical_form(query.right))
    if isinstance(query, Join):
        return (
            "join",
            _predicate_form(query.condition),
            canonical_form(query.left),
            canonical_form(query.right),
        )
    if isinstance(query, Union):
        return ("union", canonical_form(query.left), canonical_form(query.right))
    if isinstance(query, Difference):
        return ("diff", canonical_form(query.left), canonical_form(query.right))
    if isinstance(query, Rename):
        return ("ren", query.name, canonical_form(query.child))
    raise QueryError(f"cannot fingerprint query node {type(query).__name__}")


def query_fingerprint(query: Query) -> str:
    """The canonical fingerprint of ``query`` as a hex SHA-256 digest."""
    serialized = repr(canonical_form(query)).encode("utf-8")
    return hashlib.sha256(serialized).hexdigest()


def prepared_cache_key(
    query: Query,
    *,
    minimize: bool = True,
    allow_rewrite: bool = True,
    optimize: bool = True,
) -> tuple[str, bool, bool, bool]:
    """The cache key of one query under one preparation configuration.

    The flags are part of the key because they change what C2–C4 produce
    (minimized vs full schema, rewritten vs original target, peephole-
    optimized vs canonical executable).  The key is engine-independent: any
    two engines with the same access schema and flags prepare identical
    entries for it, which is what makes the plan store shareable — and
    engines with *different* flags sharing one store address disjoint
    entries instead of silently serving each other's.
    """
    return (
        query_fingerprint(query),
        bool(minimize),
        bool(allow_rewrite),
        bool(optimize),
    )
