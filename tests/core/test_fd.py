"""Unit tests for functional dependencies and implication."""

import pytest

from repro.core.fd import FDSet, FunctionalDependency, closure, implies


def fd(lhs, rhs):
    return FunctionalDependency.of(lhs, rhs)


class TestFunctionalDependency:
    def test_of_builds_frozensets(self):
        dependency = fd(["a", "b"], ["c"])
        assert dependency.lhs == frozenset({"a", "b"})
        assert dependency.rhs == frozenset({"c"})

    def test_size(self):
        assert fd(["a", "b"], ["c"]).size == 3
        assert fd([], ["c"]).size == 1

    def test_str_rendering(self):
        assert "->" in str(fd(["a"], ["b"]))
        assert str(fd([], ["b"])).startswith("∅")


class TestClosure:
    def test_textbook_closure(self):
        fds = FDSet([fd("a", "b"), fd("b", "c"), fd(["c", "d"], "e")])
        assert fds.closure(["a"]) == frozenset({"a", "b", "c"})
        assert fds.closure(["a", "d"]) == frozenset({"a", "b", "c", "d", "e"})

    def test_closure_requires_full_lhs(self):
        fds = FDSet([fd(["a", "b"], "c")])
        assert "c" not in fds.closure(["a"])
        assert "c" in fds.closure(["a", "b"])

    def test_empty_lhs_fires_unconditionally(self):
        fds = FDSet([fd([], "month"), fd("month", "quarter")])
        assert fds.closure([]) == frozenset({"month", "quarter"})

    def test_closure_of_empty_fdset(self):
        assert FDSet().closure(["a"]) == frozenset({"a"})

    def test_cyclic_dependencies_terminate(self):
        fds = FDSet([fd("a", "b"), fd("b", "a")])
        assert fds.closure(["a"]) == frozenset({"a", "b"})

    def test_self_dependency_adds_nothing_new(self):
        # The regression behind Example 1's Q2: (pid,cid) -> (pid,cid) must not
        # make cid derivable from pid alone.
        fds = FDSet([fd(["pid", "cid"], ["pid", "cid"]), fd(["pid", "year"], ["cid"])])
        assert fds.closure(["pid"]) == frozenset({"pid"})

    def test_module_level_helpers(self):
        deps = [fd("a", "b")]
        assert closure(["a"], deps) == frozenset({"a", "b"})
        assert implies(deps, ["a"], ["b"])
        assert not implies(deps, ["b"], ["a"])


class TestImplication:
    def test_implies_fd(self):
        fds = FDSet([fd("a", "b"), fd("b", "c")])
        assert fds.implies_fd(fd("a", "c"))
        assert not fds.implies_fd(fd("c", "a"))

    def test_reflexivity(self):
        assert FDSet().implies(["a", "b"], ["a"])

    def test_augmentation_style(self):
        fds = FDSet([fd("a", "b")])
        assert fds.implies(["a", "c"], ["b", "c"])


class TestFDSetContainer:
    def test_iteration_len_contains(self):
        one = fd("a", "b")
        fds = FDSet([one])
        assert len(fds) == 1
        assert one in fds
        assert list(fds) == [one]

    def test_attributes(self):
        fds = FDSet([fd(["a", "b"], "c"), fd("d", "e")])
        assert fds.attributes() == {"a", "b", "c", "d", "e"}

    def test_size(self):
        fds = FDSet([fd(["a", "b"], "c"), fd("d", "e")])
        assert fds.size == 5

    def test_minimal_cover_step_removes_redundant(self):
        fds = FDSet([fd("a", "b"), fd("b", "c"), fd("a", "c")])
        reduced = fds.minimal_cover_step()
        assert len(reduced) == 2
        assert reduced.implies(["a"], ["c"])

    def test_minimal_cover_step_keeps_necessary(self):
        fds = FDSet([fd("a", "b"), fd("b", "c")])
        reduced = fds.minimal_cover_step()
        assert len(reduced) == 2
