"""The end-to-end bounded evaluation framework of Section 7 (Fig. 4).

:class:`BoundedEngine` wires together every component of the paper on top of
the in-memory substrate:

* **C1** — discover an access schema (optional) and build / maintain its
  constraint indexes ``I_A``;
* **C2** — check coverage of incoming queries (``CovChk``);
* **C3** — pick a minimal covering subset ``A_m`` (``minA`` and friends);
* **C4** — generate a canonical bounded plan (``QPlan``);
* **C5** — optionally translate the plan to SQL (``Plan2SQL``);
* **C6** — execute the plan, accessing only the bounded fraction ``D_Q``;
  queries that are not covered (and cannot be rewritten into a covered
  equivalent) fall back to conventional evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..evaluator.baseline import evaluate_conventional
from ..evaluator.executor import ExecutionResult, PlanExecutor
from ..storage.counters import AccessCounter
from ..storage.database import Database
from ..storage.index import IndexSet
from .access import AccessSchema
from .coverage import CoverageResult, check_coverage
from .errors import NotCoveredError
from .minimize import MinimizationResult, minimize_auto
from .plan import BoundedPlan
from .plan2sql import SQLTranslation, plan_to_sql
from .planner import generate_plan
from .query import Query
from .rewrite import find_covered_rewrite


@dataclass
class EngineResult:
    """The outcome of :meth:`BoundedEngine.execute`.

    ``strategy`` is ``"bounded"`` when a bounded plan was executed (possibly
    for a rewritten equivalent of the input query), and ``"conventional"``
    when the engine fell back to full evaluation.
    """

    rows: frozenset[tuple]
    columns: tuple[str, ...]
    strategy: str
    elapsed: float
    counter: AccessCounter
    plan: BoundedPlan | None = None
    coverage: CoverageResult | None = None
    minimization: MinimizationResult | None = None
    rewrite: str = "identity"

    def access_ratio(self, database_size: int) -> float:
        """``P(D_Q)`` for this execution."""
        return self.counter.ratio(database_size)


class BoundedEngine:
    """Bounded evaluation of RA queries over an in-memory database."""

    def __init__(
        self,
        database: Database,
        access_schema: AccessSchema,
        *,
        build_indexes: bool = True,
        check_constraints: bool = True,
    ):
        self.database = database
        self.access_schema = access_schema
        self.index_build_seconds = 0.0
        if build_indexes:
            started = time.perf_counter()
            self.indexes = IndexSet.build(
                database, access_schema, check=check_constraints
            )
            self.index_build_seconds = time.perf_counter() - started
        else:
            self.indexes = IndexSet()
        self._executor = PlanExecutor(database, self.indexes)

    # -- C2: coverage -----------------------------------------------------------
    def check(self, query: Query) -> CoverageResult:
        """Run ``CovChk`` on ``query`` against the engine's access schema."""
        return check_coverage(query, self.access_schema)

    def is_covered(self, query: Query) -> bool:
        return self.check(query).is_covered

    # -- C3 + C4: minimization and planning -----------------------------------------
    def plan(
        self, query: Query, *, minimize: bool = True
    ) -> tuple[BoundedPlan, CoverageResult, MinimizationResult | None]:
        """Generate a bounded plan for a covered query.

        When ``minimize`` is true, the plan is generated against the minimized
        subset ``A_m`` returned by the access-minimization heuristics.
        Raises :class:`NotCoveredError` if the query is not covered.
        """
        coverage = self.check(query)
        if not coverage.is_covered:
            raise NotCoveredError(coverage.explain())
        minimization: MinimizationResult | None = None
        if minimize:
            minimization = minimize_auto(query, self.access_schema)
            coverage = check_coverage(query, minimization.selected)
        plan = generate_plan(coverage)
        return plan, coverage, minimization

    # -- C5: SQL translation ----------------------------------------------------------
    def to_sql(self, query: Query, *, minimize: bool = True) -> SQLTranslation:
        """The ``Plan2SQL`` translation of the bounded plan for ``query``."""
        plan, _, _ = self.plan(query, minimize=minimize)
        return plan_to_sql(plan)

    # -- C6: execution -------------------------------------------------------------------
    def execute(
        self,
        query: Query,
        *,
        minimize: bool = True,
        allow_rewrite: bool = True,
        fallback: bool = True,
    ) -> EngineResult:
        """Answer ``query``: bounded plan when possible, otherwise fall back.

        With ``allow_rewrite`` the engine also tries the A-equivalent rewrites
        of :mod:`repro.core.rewrite` (difference guarding, branch pruning)
        before giving up on bounded evaluation.
        """
        target = query
        rewrite_name = "identity"
        coverage = self.check(query)
        if not coverage.is_covered and allow_rewrite:
            verdict = find_covered_rewrite(query, self.access_schema)
            if verdict.bounded and verdict.witness is not None:
                target = verdict.witness
                rewrite_name = verdict.rewrite
                coverage = self.check(target)

        if coverage.is_covered:
            minimization: MinimizationResult | None = None
            effective_coverage = coverage
            if minimize:
                minimization = minimize_auto(target, self.access_schema)
                effective_coverage = check_coverage(target, minimization.selected)
            plan = generate_plan(effective_coverage)
            execution: ExecutionResult = self._executor.execute(plan)
            return EngineResult(
                rows=execution.rows,
                columns=execution.columns,
                strategy="bounded",
                elapsed=execution.elapsed,
                counter=execution.counter,
                plan=plan,
                coverage=effective_coverage,
                minimization=minimization,
                rewrite=rewrite_name,
            )

        if not fallback:
            raise NotCoveredError(coverage.explain())

        baseline = evaluate_conventional(query, self.database, self.access_schema, self.indexes)
        return EngineResult(
            rows=baseline.rows,
            columns=baseline.result.columns,
            strategy="conventional",
            elapsed=baseline.elapsed,
            counter=baseline.counter,
            coverage=coverage,
        )

    # -- C1: maintenance -------------------------------------------------------------------
    def apply_insert(self, relation: str, row: Sequence | Mapping[str, object]) -> None:
        """Insert a tuple and incrementally maintain the indexes (Proposition 12)."""
        instance = self.database.relation(relation)
        prepared = instance._prepare(row)
        if instance.insert(prepared):
            self.indexes.apply_insert(relation, prepared)

    def apply_delete(self, relation: str, row: Sequence | Mapping[str, object]) -> None:
        """Delete a tuple and incrementally maintain the indexes (Proposition 12)."""
        instance = self.database.relation(relation)
        prepared = instance._prepare(row)
        if instance.delete(prepared):
            self.indexes.apply_delete(relation, prepared, instance)

    # -- reporting ----------------------------------------------------------------------------
    def index_footprint(self) -> dict[str, object]:
        """Size statistics of the materialized indexes (Exp-1(IV))."""
        database_size = self.database.size
        total = self.indexes.total_size
        return {
            "database_tuples": database_size,
            "index_tuples": total,
            "index_fraction": (total / database_size) if database_size else 0.0,
            "build_seconds": self.index_build_seconds,
            "constraints": len(self.access_schema),
        }
