"""Access-constraint discovery (Section 7, component C1).

The paper mines access constraints by extending FD-discovery tools: candidate
attribute sets ``X`` and ``Y`` are searched TANE-style, and for each candidate
the constraint bound ``N`` is the maximum number of distinct ``Y``-values per
``X``-value observed on (a sample of) the data, optionally with head-room for
growth.  Constraints over attributes with a small finite domain (months,
cities, carrier codes, …) are discovered as ``R(∅ → A, N)``.

The discovery here is deliberately level-wise and prunes non-minimal
left-hand sides, like TANE, but stops at small LHS sizes: real access
constraints (and all constraints the paper lists) use one to three attributes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.access import AccessConstraint, AccessSchema
from ..core.errors import DiscoveryError
from ..storage.database import Database
from ..storage.relation import RelationInstance


@dataclass
class DiscoveryConfig:
    """Tuning knobs for access-constraint discovery.

    ``max_bound`` rejects candidates whose observed bound is too large to be
    useful (fetching ``N`` tuples per probe must stay cheap); ``max_lhs_size``
    bounds the level-wise search; ``domain_threshold`` accepts ``∅ → A``
    constraints for attributes with at most that many distinct values;
    ``slack`` multiplies observed bounds to leave room for data growth
    (policy-style constraints such as "at most 5000 friends" are usually
    supplied by hand instead).
    """

    max_lhs_size: int = 2
    max_bound: int = 1000
    domain_threshold: int = 64
    slack: float = 1.0
    max_rhs_size: int = 1
    include_keys: bool = True

    def __post_init__(self) -> None:
        if self.max_lhs_size < 1:
            raise DiscoveryError("max_lhs_size must be at least 1")
        if self.slack < 1.0:
            raise DiscoveryError("slack must be >= 1.0")


def _bounded(observed: int, config: DiscoveryConfig) -> int:
    return max(1, int(round(observed * config.slack)))


def discover_constraints(
    relation: RelationInstance, config: DiscoveryConfig | None = None
) -> list[AccessConstraint]:
    """Discover access constraints holding on one relation instance."""
    config = config or DiscoveryConfig()
    schema = relation.schema
    attributes = list(schema.attributes)
    constraints: list[AccessConstraint] = []

    # (1) Small-domain constraints R(∅ -> A, N).
    for attribute in attributes:
        distinct = relation.distinct_count([attribute])
        if 0 < distinct <= config.domain_threshold:
            constraints.append(
                AccessConstraint.of(
                    schema.name, (), attribute, _bounded(distinct, config),
                    name=f"domain:{schema.name}.{attribute}",
                )
            )

    # (2) Level-wise search for R(X -> Y, N), pruning dominated candidates.
    # A candidate with LHS X is kept only if no accepted constraint for the
    # same RHS has a smaller LHS *and* an equal-or-smaller bound — a larger
    # LHS is still worth keeping when it tightens the bound (e.g. the paper's
    # ψ2 with (pid, year, month) → cid, 31 alongside pid → cid, 366).
    accepted_lhs: dict[str, list[tuple[frozenset[str], int]]] = {}
    for size in range(1, config.max_lhs_size + 1):
        for lhs in itertools.combinations(attributes, size):
            lhs_set = frozenset(lhs)
            for rhs_size in range(1, config.max_rhs_size + 1):
                for rhs in itertools.combinations(attributes, rhs_size):
                    rhs_set = frozenset(rhs)
                    if rhs_set <= lhs_set:
                        continue
                    observed = relation.group_max_multiplicity(sorted(lhs_set), sorted(rhs_set))
                    if observed == 0 or observed > config.max_bound:
                        continue
                    key = ",".join(sorted(rhs_set))
                    dominated = any(
                        prev_lhs < lhs_set and prev_bound <= observed
                        for prev_lhs, prev_bound in accepted_lhs.get(key, ())
                    )
                    if dominated:
                        continue
                    constraints.append(
                        AccessConstraint.of(
                            schema.name,
                            sorted(lhs_set),
                            sorted(rhs_set),
                            _bounded(observed, config),
                            name=f"mined:{schema.name}",
                        )
                    )
                    accepted_lhs.setdefault(key, []).append((lhs_set, observed))

    # (3) Key constraints R(K -> all attributes, 1) for observed candidate keys.
    if config.include_keys and len(relation):
        found_key = False
        for size in range(1, config.max_lhs_size + 1):
            if found_key:
                break
            for lhs in itertools.combinations(attributes, size):
                if relation.distinct_count(list(lhs)) == len(relation):
                    constraints.append(
                        AccessConstraint.of(
                            schema.name, sorted(lhs), attributes, 1,
                            name=f"key:{schema.name}",
                        )
                    )
                    found_key = True
                    break

    return constraints


def discover_access_schema(
    database: Database,
    config: DiscoveryConfig | None = None,
    *,
    relations: Sequence[str] | None = None,
) -> AccessSchema:
    """Discover an access schema over (a subset of) the relations of a database."""
    config = config or DiscoveryConfig()
    names = relations if relations is not None else database.relation_names()
    access_schema = AccessSchema(schema=database.schema)
    for name in names:
        for constraint in discover_constraints(database.relation(name), config):
            access_schema.add(constraint)
    return access_schema
