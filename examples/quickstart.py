"""Quickstart: bounded evaluation in ~60 lines.

Builds a small database, declares access constraints, checks whether a query
is *covered* (the effective syntax for boundedly evaluable queries), generates
a canonical bounded plan, and executes it — comparing the amount of data
accessed against conventional evaluation.

Run with:  python examples/quickstart.py
"""

from repro import (
    AccessConstraint,
    AccessSchema,
    Database,
    DatabaseSchema,
    IndexSet,
    Relation,
    check_coverage,
    eq,
    generate_plan,
)
from repro.evaluator.baseline import evaluate_conventional
from repro.evaluator.executor import execute_plan


def main() -> None:
    # 1. A schema: orders placed by customers in cities.
    schema = DatabaseSchema.from_dict(
        {
            "customers": ["cust_id", "city", "segment"],
            "orders": ["order_id", "cust_id", "order_date", "amount"],
        }
    )

    # 2. Access constraints: each customer id is unique, and a customer places
    #    at most 50 orders on any single day (with an index for each).
    access = AccessSchema(
        [
            AccessConstraint.of("customers", "cust_id", ["city", "segment"], 1),
            AccessConstraint.of("orders", ["cust_id", "order_date"], "order_id", 50),
            AccessConstraint.of("orders", "order_id", ["cust_id", "order_date", "amount"], 1),
        ],
        schema=schema,
    )

    # 3. Some data (in reality this is the part that grows without bound).
    database = Database(schema)
    for i in range(2000):
        database.insert("customers", (f"cust{i}", ["nyc", "sf", "austin"][i % 3], i % 5))
    for i in range(8000):
        database.insert(
            "orders", (f"ord{i}", f"cust{i % 2000}", f"2015-06-{(i % 28) + 1:02d}", i % 500)
        )

    # 4. A query: order ids and amounts of customer cust42 on 2015-06-15.
    customers = Relation.from_schema(schema, "customers")
    orders = Relation.from_schema(schema, "orders")
    query = (
        customers.join(orders, eq(customers["cust_id"], orders["cust_id"]))
        .select(eq(customers["cust_id"], "cust42"))
        .select(eq(orders["order_date"], "2015-06-15"))
        .project([orders["order_id"], orders["amount"], customers["city"]])
    )

    # 5. CovChk: is the query covered (hence boundedly evaluable)?
    coverage = check_coverage(query, access)
    print("covered:", coverage.is_covered)
    print(coverage.explain())

    # 6. QPlan: generate the canonical bounded plan and look at its guarantees.
    plan = generate_plan(coverage)
    print(f"\nbounded plan: {plan.length} steps, "
          f"accesses at most {plan.access_bound()} tuples on ANY database")

    # 7. Execute it through the constraint indexes and compare with a full run.
    indexes = IndexSet.build(database, access)
    bounded = execute_plan(plan, database, indexes)
    baseline = evaluate_conventional(query, database, access)

    assert bounded.rows == baseline.rows
    print("\nanswer:", sorted(bounded.rows))
    print(f"database size:                   {database.size:>6} tuples")
    print(f"tuples accessed (bounded plan):  {bounded.counter.total:>6}  "
          f"(P(D_Q) = {bounded.access_ratio(database.size):.5f})")
    print(f"tuples accessed (conventional):  {baseline.counter.total:>6}  "
          f"(P(D_Q) = {baseline.access_ratio(database.size):.5f})")
    print(
        "\nThe bounded plan's access is capped by the constraints alone — "
        f"at most {plan.access_bound()} tuples on any database satisfying A.  "
        "For this very selective query the conventional strategy also does well; "
        "the orders-of-magnitude gap appears on join-heavy queries over non-key "
        "attributes (see examples/graph_search.py and the benchmarks)."
    )


if __name__ == "__main__":
    main()
