"""Shared infrastructure for the experiment workloads.

Each workload (AIRCA, TFACC, MCBM) provides the same three ingredients the
paper's experiments need: a relational schema, an access schema of published
or plausible constraints, and a synthetic data generator whose output
*satisfies* those constraints at any scale.  A :class:`WorkloadSpec` bundles
them together with the join graph the random query generator uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.access import AccessSchema
from ..core.schema import DatabaseSchema
from ..storage.database import Database

#: A join edge: ((relation, attribute), (relation, attribute)) that makes
#: semantic sense to equate in a query (a foreign-key-style relationship).
JoinEdge = tuple[tuple[str, str], tuple[str, str]]


@dataclass
class WorkloadSpec:
    """A named workload: schema, constraints, generator, and join graph."""

    name: str
    schema: DatabaseSchema
    access_schema: AccessSchema
    generate: Callable[[int, int], Database]
    join_edges: tuple[JoinEdge, ...] = ()
    description: str = ""
    default_scale: int = 200

    def database(self, scale: int | None = None, seed: int = 0) -> Database:
        """Generate a database at the given scale (entities), deterministic per seed."""
        return self.generate(scale if scale is not None else self.default_scale, seed)

    def constraints_fraction(self, fraction: float) -> AccessSchema:
        """The first ``fraction`` of the access constraints (for the ‖A‖ sweeps)."""
        return self.access_schema.subset_fraction(fraction)


def bounded_choices(rng: random.Random, population: Sequence, count: int) -> list:
    """``count`` random picks (with replacement) from ``population``."""
    return [rng.choice(population) for _ in range(count)]


def distinct_sample(rng: random.Random, population: Sequence, count: int) -> list:
    """At most ``count`` distinct random picks from ``population``."""
    count = min(count, len(population))
    return rng.sample(list(population), count)
