"""Edge-case coverage for the serving-core caches (PR 6, satellite 4).

Zero-capacity stores, oversized admission refusals, replacement-return
semantics of :meth:`PlanStore.put`, and snapshot-mismatch stale drops under
interleaved writes — the corners a cache bug hides in.
"""

import pytest

from repro.core.engine import BoundedEngine
from repro.core.planstore import PlanStore, ResultCache
from repro.storage.counters import VersionClock


class TestZeroCapacityPlanStore:
    def test_put_is_a_noop_and_get_always_misses(self):
        store = PlanStore(capacity=0)
        assert store.put("k", "entry", ["r"]) == []
        assert len(store) == 0
        assert store.get("k") is None
        assert store.stats()["misses"] == 1
        assert store.stats()["evictions"] == 0

    def test_negative_capacity_behaves_like_zero(self):
        store = PlanStore(capacity=-5)
        store.put("k", "entry")
        assert len(store) == 0

    def test_invalidate_on_empty_store_is_safe(self):
        store = PlanStore(capacity=0)
        assert store.invalidate() == []
        assert store.invalidate(["r"]) == []


class TestZeroCapacityResultCache:
    def test_put_is_a_noop_and_get_always_misses(self):
        cache = ResultCache(capacity=0)
        cache.put("k", frozenset({(1,)}), ("a",), ["r"], (0,))
        assert len(cache) == 0
        assert cache.get("k", (0,)) is None
        assert cache.stats()["misses"] == 1

    def test_engine_with_zero_caches_still_serves(self, fb_database, fb_access, fb_q0_prime):
        engine = BoundedEngine(
            fb_database,
            fb_access,
            check_constraints=False,
            plan_cache_size=0,
            result_cache_size=0,
        )
        first = engine.execute(fb_q0_prime)
        second = engine.execute(fb_q0_prime)
        assert first.rows == second.rows
        assert not second.result_cached
        assert engine.cache_stats()["result_cache"]["entries"] == 0


class TestOversizedAdmission:
    def test_oversized_result_is_refused_and_prior_entries_survive(self):
        cache = ResultCache(capacity=8, max_rows=2)
        small = frozenset({(1,), (2,)})
        cache.put("small", small, ("a",), ["r"], (0,))
        big = frozenset({(i,) for i in range(3)})
        cache.put("big", big, ("a",), ["r"], (0,))
        assert cache.stats()["oversized"] == 1
        assert cache.get("big", (0,)) is None
        # The refusal must not have disturbed what was already cached.
        hit = cache.get("small", (0,))
        assert hit is not None and hit.rows == small

    def test_oversized_refusal_does_not_evict_lru(self):
        cache = ResultCache(capacity=2, max_rows=1)
        cache.put("a", frozenset({(1,)}), ("c",), ["r"], (0,))
        cache.put("b", frozenset({(2,)}), ("c",), ["r"], (0,))
        cache.put("big", frozenset({(1,), (2,)}), ("c",), ["r"], (0,))
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 0
        assert cache.get("a", (0,)) is not None
        assert cache.get("b", (0,)) is not None


class TestPlanStoreReplacement:
    def test_put_same_key_returns_replaced_entry(self):
        store = PlanStore(capacity=4)
        store.put("k", "old", ["r"])
        displaced = store.put("k", "new", ["r"])
        assert displaced == ["old"]
        assert store.get("k") == "new"
        assert store.stats()["replaced"] == 1
        assert store.stats()["evictions"] == 0

    def test_re_put_of_same_object_is_not_displaced(self):
        store = PlanStore(capacity=4)
        entry = object()
        store.put("k", entry, ["r"])
        assert store.put("k", entry, ["r"]) == []
        assert store.stats()["replaced"] == 0

    def test_replacement_and_eviction_both_reported(self):
        store = PlanStore(capacity=2)
        store.put("a", "A", ["r"])
        store.put("b", "B", ["r"])
        # Replacing "a" while at capacity: the old "a" comes back, no eviction
        # (size is unchanged); then a third key evicts the LRU ("b").
        assert store.put("a", "A2", ["r"]) == ["A"]
        displaced = store.put("c", "C", ["r"])
        assert displaced == ["B"]
        assert store.stats()["evictions"] == 1

    def test_replacement_updates_dependencies(self):
        store = PlanStore(capacity=4)
        store.put("k", "old", ["r"])
        store.put("k", "new", ["s"])
        assert store.invalidate(["r"]) == []
        assert store.invalidate(["s"]) == ["new"]


class TestSnapshotMismatchUnderWrites:
    def test_stale_entry_dropped_on_probe_after_interleaved_write(self):
        clock = VersionClock()
        cache = ResultCache(capacity=8)
        snapshot = clock.snapshot(("r",))
        cache.put("k", frozenset({(1,)}), ("a",), ("r",), snapshot)
        clock.bump(["r"])  # a write lands between fill and probe
        assert cache.get("k", clock.snapshot(("r",))) is None
        assert cache.stats()["stale"] == 1
        assert len(cache) == 0

    def test_write_to_unrelated_relation_does_not_stale(self):
        clock = VersionClock()
        cache = ResultCache(capacity=8)
        snapshot = clock.snapshot(("r",))
        cache.put("k", frozenset({(1,)}), ("a",), ("r",), snapshot)
        clock.bump(["s"])
        assert cache.get("k", clock.snapshot(("r",))) is not None

    @pytest.mark.parametrize("delta_repair", [False, True])
    def test_engine_never_serves_stale_rows_across_writes(
        self, hot_cold_setup, delta_repair
    ):
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(
            database, access, check_constraints=False, delta_repair=delta_repair
        )
        before = engine.execute(hot_query).rows
        assert engine.execute(hot_query).result_cached
        engine.apply_delete("hot", ("a", 1))
        after = engine.execute(hot_query)
        # With repair on, the entry is patched in place and served; with it
        # off, the entry is dropped and the read recomputes.  Either way the
        # rows reflect the write.
        assert after.result_cached is delta_repair
        assert after.rows == before - {(1,)}

    def test_validate_and_changed_since(self):
        clock = VersionClock()
        snapshot = clock.snapshot(("r", "s"))
        assert clock.validate(("r", "s"), snapshot)
        clock.bump(["s"])
        assert not clock.validate(("r", "s"), snapshot)
        assert clock.changed_since(("r", "s"), snapshot) == ("s",)
        assert clock.validate((), ())
