"""Bounded query plans (Section 2 and Section 5.1).

A query plan under an access schema is a sequence of steps ``T1 = δ1, ...,
Tn = δn`` where each ``δi`` is a constant singleton, a ``fetch`` via an
access constraint, or a relational operation over earlier steps.  A plan is
*boundedly evaluable* when every fetch is backed by a constraint of the
access schema and the plan length depends only on ``|Q|`` and ``|A|``.

The module defines the plan operators, the :class:`BoundedPlan` container
(with static access-bound estimation in the spirit of Example 1's
"at most 470 000 tuples" arithmetic), and plan validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from .access import AccessConstraint, AccessSchema
from .errors import PlanError


# ---------------------------------------------------------------------------
# Column-level predicates (used by Select steps)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnRef:
    """A reference to a column of the step being filtered."""

    column: str

    def __str__(self) -> str:
        return self.column


@dataclass(frozen=True)
class ColumnPredicate:
    """An atomic comparison between a column and a column or constant."""

    left: str
    op: str
    right: object

    _OPS = ("=", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise PlanError(f"unsupported comparison operator {self.op!r}")

    @property
    def right_is_column(self) -> bool:
        """True when the RHS references a column rather than a constant."""
        return isinstance(self.right, ColumnRef)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


# ---------------------------------------------------------------------------
# Plan operators
# ---------------------------------------------------------------------------

class PlanOp:
    """Base class of plan-step operators."""

    #: ids of the steps this operator reads from, in order
    inputs: tuple[int, ...] = ()

    def describe(self) -> str:
        """A one-line human-readable rendering of this operator."""
        raise NotImplementedError


@dataclass
class ConstOp(PlanOp):
    """``T = {c}``: a single-row, single-column constant relation."""

    value: object
    column: str
    inputs: tuple[int, ...] = ()

    def describe(self) -> str:
        """Render as ``{value} as (column)``."""
        return f"{{{self.value!r}}} as ({self.column})"


@dataclass
class UnitOp(PlanOp):
    """A single empty tuple, used as the driver of fetches with an empty LHS."""

    inputs: tuple[int, ...] = ()

    def describe(self) -> str:
        """Render the unit relation."""
        return "{()}"


@dataclass
class FetchOp(PlanOp):
    """``fetch(X ∈ T, R, Y)`` backed by an access constraint ``R(X → Y, N)``.

    ``key_columns`` names, for each attribute of the constraint's LHS (in
    sorted order), the column of the input step holding its value.  The
    output columns are the qualified ``X ∪ Y`` attributes of the relation.
    """

    constraint: AccessConstraint
    key_columns: tuple[str, ...]
    inputs: tuple[int, ...]

    def describe(self) -> str:
        """Render the fetch with its driving constraint and key columns."""
        keys = ", ".join(self.key_columns) or "()"
        return f"fetch(X∈T{self.inputs[0]} via {self.constraint}; keys=({keys}))"


@dataclass
class ProjectOp(PlanOp):
    """``π_columns(T)`` with optional output renaming."""

    columns: tuple[str, ...]
    inputs: tuple[int, ...]
    output_names: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.output_names is not None and len(self.output_names) != len(self.columns):
            raise PlanError("output_names must align with columns")

    def describe(self) -> str:
        """Render the projection, showing renames only when they differ."""
        cols = ", ".join(self.columns)
        if self.output_names and tuple(self.output_names) != tuple(self.columns):
            cols += " as " + ", ".join(self.output_names)
        return f"π[{cols}](T{self.inputs[0]})"


@dataclass
class SelectOp(PlanOp):
    """``σ_condition(T)`` where the condition is a conjunction of column predicates."""

    predicates: tuple[ColumnPredicate, ...]
    inputs: tuple[int, ...]

    def describe(self) -> str:
        """Render the selection with its conjunctive condition."""
        condition = " AND ".join(str(p) for p in self.predicates)
        return f"σ[{condition}](T{self.inputs[0]})"


@dataclass
class RenameOp(PlanOp):
    """Rename the columns of a step (positional mapping preserved)."""

    mapping: Mapping[str, str]
    inputs: tuple[int, ...]

    def describe(self) -> str:
        """Render the rename as ``old→new`` pairs."""
        pairs = ", ".join(f"{old}→{new}" for old, new in self.mapping.items())
        return f"ρ[{pairs}](T{self.inputs[0]})"


@dataclass
class ProductOp(PlanOp):
    """Cartesian product of two steps (columns must be disjoint)."""

    inputs: tuple[int, ...]

    def describe(self) -> str:
        """Render the product of the two input steps."""
        return f"T{self.inputs[0]} × T{self.inputs[1]}"


@dataclass
class HashJoinOp(PlanOp):
    """A fused ``σ(T × T')`` evaluated as a hash join (columns must be disjoint).

    ``pairs`` lists ``(left_column, right_column)`` equality conditions that
    drive the hash lookup; ``residual`` holds the remaining predicates,
    evaluated over the concatenated columns of both inputs.  The operator is
    never produced by the planner — only by the peephole optimizer
    (:mod:`repro.core.optimizer`) — and is semantically identical to the
    select-over-product it replaces.
    """

    pairs: tuple[tuple[str, str], ...]
    residual: tuple[ColumnPredicate, ...]
    inputs: tuple[int, ...]

    def describe(self) -> str:
        """Render the join with equality pairs and residual predicates."""
        condition = " AND ".join(
            [f"{l} = {r}" for l, r in self.pairs] + [str(p) for p in self.residual]
        )
        return f"T{self.inputs[0]} ⋈[{condition}] T{self.inputs[1]}"


@dataclass
class UnionOp(PlanOp):
    """Set union (positional) of two steps with equal arity."""

    inputs: tuple[int, ...]

    def describe(self) -> str:
        """Render the union of the two input steps."""
        return f"T{self.inputs[0]} ∪ T{self.inputs[1]}"


@dataclass
class DifferenceOp(PlanOp):
    """Set difference (positional) of two steps with equal arity."""

    inputs: tuple[int, ...]

    def describe(self) -> str:
        """Render the difference of the two input steps."""
        return f"T{self.inputs[0]} − T{self.inputs[1]}"


@dataclass
class IntersectOp(PlanOp):
    """Set intersection (positional) of two steps with equal arity."""

    inputs: tuple[int, ...]

    def describe(self) -> str:
        """Render the intersection of the two input steps."""
        return f"T{self.inputs[0]} ∩ T{self.inputs[1]}"


# ---------------------------------------------------------------------------
# Plan steps and the plan container
# ---------------------------------------------------------------------------

@dataclass
class PlanStep:
    """One ``Ti = δi`` entry of a bounded query plan."""

    id: int
    op: PlanOp
    columns: tuple[str, ...]
    comment: str = ""

    def __str__(self) -> str:
        note = f"    -- {self.comment}" if self.comment else ""
        return f"T{self.id} = {self.op.describe()}{note}"


@dataclass
class BoundedPlan:
    """A bounded query plan: an ordered list of steps plus bookkeeping.

    ``fetch_plans`` maps unified attribute tokens to the step computing their
    unit fetching plan; ``surrogates`` maps relation occurrence names to the
    step holding the indexed partial relation used by the evaluation plan.
    """

    steps: list[PlanStep]
    output: int
    access_schema: AccessSchema
    fetch_plans: Mapping[str, int] = field(default_factory=dict)
    surrogates: Mapping[str, int] = field(default_factory=dict)
    #: occurrence name -> base relation name (needed to map actualized
    #: constraints back to the physical indexes built on base relations)
    occurrences: Mapping[str, str] = field(default_factory=dict)

    # -- structure ---------------------------------------------------------------
    @property
    def length(self) -> int:
        """The length of the plan (number of steps) — ``O(|Q||A|)`` per Lemma 8."""
        return len(self.steps)

    def __iter__(self) -> Iterator[PlanStep]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def step(self, step_id: int) -> PlanStep:
        """The step with id ``step_id``; raises :class:`PlanError` when absent."""
        try:
            return self.steps[step_id]
        except IndexError:
            raise PlanError(f"plan has no step T{step_id}") from None

    def fetch_steps(self) -> tuple[PlanStep, ...]:
        """All fetch steps in plan order — the only steps that touch data."""
        return tuple(s for s in self.steps if isinstance(s.op, FetchOp))

    def constraints_used(self) -> tuple[AccessConstraint, ...]:
        """The distinct access constraints used by fetch steps, in first-use order."""
        seen: list[AccessConstraint] = []
        for step in self.fetch_steps():
            constraint = step.op.constraint  # type: ignore[union-attr]
            if constraint not in seen:
                seen.append(constraint)
        return tuple(seen)

    def dependency_relations(self) -> tuple[str, ...]:
        """The base relations whose data this plan reads, sorted and deduplicated.

        A bounded plan touches data only through its fetch steps, and each
        fetch reads the index of one constraint; actualized constraints are
        mapped back to their base relation via :attr:`occurrences`.  This is
        the dependency set used for constraint-granular cache invalidation:
        a write to any other relation cannot change this plan's result.
        """
        bases = {
            self.occurrences.get(constraint.relation, constraint.relation)
            for constraint in self.constraints_used()
        }
        return tuple(sorted(bases))

    # -- validation ----------------------------------------------------------------
    def validate(self) -> None:
        """Check referential integrity and that every fetch uses a schema constraint."""
        for step in self.steps:
            for input_id in step.op.inputs:
                if input_id >= step.id:
                    raise PlanError(
                        f"step T{step.id} references later or same step T{input_id}"
                    )
                if input_id < 0 or input_id >= len(self.steps):
                    raise PlanError(f"step T{step.id} references missing step T{input_id}")
            if isinstance(step.op, FetchOp) and step.op.constraint not in self.access_schema:
                raise PlanError(
                    f"fetch in step T{step.id} uses constraint {step.op.constraint} "
                    "that is not in the access schema"
                )
        if self.output < 0 or self.output >= len(self.steps):
            raise PlanError(f"output step T{self.output} does not exist")

    @property
    def is_bounded(self) -> bool:
        """Every fetch is backed by the access schema (condition (1) of Section 2)."""
        try:
            self.validate()
        except PlanError:
            return False
        return True

    # -- static access estimation ------------------------------------------------------
    def column_bounds(self) -> dict[int, dict[str, int]]:
        """Per-step, per-column upper bounds on the number of distinct values.

        Derived purely from the access constraints: a constant column holds one
        value, a fetch keyed on columns with bounds ``b1..bk`` under a
        constraint with bound ``N`` yields at most ``b1·…·bk`` distinct keys
        and ``b1·…·bk·N`` distinct values in its RHS columns, and so on.  This
        is the arithmetic of Example 1 ("at most 5000 + 5000·31·2 tuples").
        """
        per_step: dict[int, dict[str, int]] = {}
        rows: dict[int, int] = {}
        for step in self.steps:
            op = step.op
            if isinstance(op, ConstOp):
                per_step[step.id] = {op.column: 1}
                rows[step.id] = 1
            elif isinstance(op, UnitOp):
                per_step[step.id] = {}
                rows[step.id] = 1
            elif isinstance(op, FetchOp):
                source = per_step[op.inputs[0]]
                keys = 1
                for column in op.key_columns:
                    keys *= max(1, source.get(column, rows[op.inputs[0]]))
                keys = min(keys, rows[op.inputs[0]])
                produced = keys * op.constraint.bound
                bounds: dict[str, int] = {}
                lhs_sorted = sorted(op.constraint.lhs)
                for attr, key_column in zip(lhs_sorted, op.key_columns):
                    bounds[f"{op.constraint.relation}.{attr}"] = max(
                        1, source.get(key_column, keys)
                    )
                for column in step.columns:
                    bounds.setdefault(column, produced)
                per_step[step.id] = bounds
                rows[step.id] = produced
            elif isinstance(op, ProjectOp):
                source = per_step[op.inputs[0]]
                names = op.output_names if op.output_names is not None else op.columns
                bounds = {}
                product = 1
                for column, name in zip(op.columns, names):
                    bound = source.get(column, rows[op.inputs[0]])
                    bounds[name] = bound
                    product *= max(1, bound)
                per_step[step.id] = bounds
                rows[step.id] = min(rows[op.inputs[0]], product)
            elif isinstance(op, SelectOp):
                per_step[step.id] = dict(per_step[op.inputs[0]])
                rows[step.id] = rows[op.inputs[0]]
            elif isinstance(op, RenameOp):
                source = per_step[op.inputs[0]]
                per_step[step.id] = {
                    op.mapping.get(column, column): bound for column, bound in source.items()
                }
                rows[step.id] = rows[op.inputs[0]]
            elif isinstance(op, (ProductOp, HashJoinOp)):
                left, right = per_step[op.inputs[0]], per_step[op.inputs[1]]
                per_step[step.id] = {**left, **right}
                rows[step.id] = rows[op.inputs[0]] * rows[op.inputs[1]]
            elif isinstance(op, UnionOp):
                left, right = per_step[op.inputs[0]], per_step[op.inputs[1]]
                bounds = {}
                for (lcol, lbound), rbound in zip(left.items(), right.values()):
                    bounds[lcol] = lbound + rbound
                per_step[step.id] = bounds
                rows[step.id] = rows[op.inputs[0]] + rows[op.inputs[1]]
            elif isinstance(op, (DifferenceOp, IntersectOp)):
                per_step[step.id] = dict(per_step[op.inputs[0]])
                rows[step.id] = rows[op.inputs[0]]
            else:  # pragma: no cover - future operators
                raise PlanError(f"unknown operator {type(op).__name__}")
        self._row_bounds = rows
        return per_step

    def cardinality_bounds(self) -> dict[int, int]:
        """A per-step upper bound on output cardinality implied by the constraints."""
        self.column_bounds()
        return dict(self._row_bounds)

    def access_bound(self) -> int:
        """An upper bound on the number of tuples the plan can access.

        Each ``fetch(X ∈ T, R, Y)`` issues at most one index probe per distinct
        key of its input and retrieves at most ``N`` tuples per probe.  The
        bound is the sum over all fetch steps, computed from the constraints
        alone — independent of any dataset, as required by bounded
        evaluability.
        """
        column_bounds = self.column_bounds()
        rows = self._row_bounds
        total = 0
        for step in self.fetch_steps():
            op = step.op
            source = column_bounds[op.inputs[0]]  # type: ignore[index]
            keys = 1
            for column in op.key_columns:  # type: ignore[union-attr]
                keys *= max(1, source.get(column, rows[op.inputs[0]]))
            keys = min(keys, rows[op.inputs[0]])
            total += keys * op.constraint.bound  # type: ignore[union-attr]
        return total

    # -- rendering ------------------------------------------------------------------
    def __str__(self) -> str:
        lines = [str(step) for step in self.steps]
        lines.append(f"-- result: T{self.output}")
        return "\n".join(lines)


class PlanBuilder:
    """Incremental construction of a :class:`BoundedPlan`."""

    def __init__(self, access_schema: AccessSchema, occurrences: Mapping[str, str] | None = None):
        self.access_schema = access_schema
        self.occurrences: Mapping[str, str] = dict(occurrences or {})
        self.steps: list[PlanStep] = []
        self.fetch_plans: dict[str, int] = {}
        self.surrogates: dict[str, int] = {}

    def add(self, op: PlanOp, columns: Sequence[str], comment: str = "") -> int:
        """Append a step computing ``op`` with ``columns``; returns its id."""
        step = PlanStep(id=len(self.steps), op=op, columns=tuple(columns), comment=comment)
        self.steps.append(step)
        return step.id

    def columns(self, step_id: int) -> tuple[str, ...]:
        """The output columns of an already-added step."""
        return self.steps[step_id].columns

    def build(self, output: int) -> BoundedPlan:
        """Finalize into a validated :class:`BoundedPlan` with ``output`` as result."""
        plan = BoundedPlan(
            steps=self.steps,
            output=output,
            access_schema=self.access_schema,
            fetch_plans=dict(self.fetch_plans),
            surrogates=dict(self.surrogates),
            occurrences=dict(self.occurrences),
        )
        plan.validate()
        return plan
