"""Proposition 12: bounded incremental maintenance of ⟨A, I_A⟩.

Benchmarks applying a fixed-size batch of updates ΔD to instances of growing
size: the wall-clock and the work (index entries touched) must not grow with
|D|.  This experiment has no direct figure in the paper but backs the claim
used by component C1 of the framework.
"""

from repro.bench.experiments import maintenance_experiment
from repro.discovery.maintenance import Update, apply_updates
from repro.storage.index import IndexSet


def test_apply_update_batch(benchmark, prepared):
    """Time to apply a 50-tuple ΔD against the prepared (largest) instance."""
    workload = prepared["workload"]
    database = prepared["database"]
    relation_name = max(database.relation_names(), key=lambda n: len(database.relation(n)))
    donor = workload.database(scale=60, seed=123)
    rows = list(donor.relation(relation_name))[:50]

    def run():
        # fresh copies per round so inserts are not no-ops
        target = database.scaled(1.0, seed=0)
        indexes = IndexSet.build(target, workload.access_schema, check=False)
        updates = [Update.insert(relation_name, row) for row in rows]
        return apply_updates(target, indexes, workload.access_schema, updates)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.applied + report.skipped == len(rows)


def test_maintenance_flat_in_database_size(benchmark, workload):
    table = benchmark.pedantic(
        maintenance_experiment,
        kwargs={"workload": workload, "scales": (50, 100, 200, 400), "delta_size": 50, "seed": 41},
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    work = table.column("work_units")
    tuples = table.column("db_tuples")
    assert tuples[-1] > tuples[0]
    # identical ΔD and A => identical maintenance work, whatever |D| is
    assert len(set(work)) == 1
