"""Serving-tier observability: queue depth, shed counts, latency quantiles.

The admission-control guarantees of :class:`~repro.serving.server.
BoundedServer` are only auditable if the tier measures itself: sheds must be
visible per reason (queue full / cost budget / deadline / breaker), and
latency must be reported as quantiles per strategy — the whole point of the
degradation ladder is that the *covered* p99 stays bounded while the
fallback path burns.  These metrics join ``warm_qps`` in the tracked
``BENCH_trajectory.json`` (see ``benchmarks/track_trajectory.py``).
"""

from __future__ import annotations

import math
from collections import Counter


class LatencyRecorder:
    """Bounded per-key latency samples with exact small-sample quantiles.

    Keeps up to ``cap`` most-recent samples per key (a soak run fits easily;
    a long-lived server degrades to a sliding window, which is the right
    bias for alerting anyway).  Quantiles use the nearest-rank method on the
    sorted window — exact for the sample sizes involved, no estimation
    sketch to misread.
    """

    def __init__(self, cap: int = 8192):
        self.cap = cap
        self._samples: dict[str, list[float]] = {}

    def observe(self, key: str, seconds: float) -> None:
        window = self._samples.setdefault(key, [])
        window.append(seconds)
        if len(window) > self.cap:
            del window[: len(window) - self.cap]

    def count(self, key: str) -> int:
        return len(self._samples.get(key, ()))

    def percentile(self, key: str, p: float) -> float | None:
        """Nearest-rank percentile (``p`` in [0, 100]); ``None`` if no samples."""
        window = self._samples.get(key)
        if not window:
            return None
        ordered = sorted(window)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self) -> dict[str, dict[str, float | int]]:
        return {
            key: {
                "count": len(window),
                "p50_ms": round((self.percentile(key, 50) or 0.0) * 1000, 3),
                "p95_ms": round((self.percentile(key, 95) or 0.0) * 1000, 3),
                "p99_ms": round((self.percentile(key, 99) or 0.0) * 1000, 3),
                "max_ms": round(max(window) * 1000, 3),
            }
            for key, window in self._samples.items()
            if window
        }


class ServingMetrics:
    """All counters and gauges of one :class:`~repro.serving.server.BoundedServer`."""

    def __init__(self):
        self.submitted = 0
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.retries = 0
        self.writes_applied = 0
        self.write_failures = 0
        #: result-cache maintenance attributed to served writes (delta
        #: repair): entries repaired in place, rows patched into them,
        #: derivations that fell back to invalidation, and entries
        #: invalidated (sweeps and fallbacks together)
        self.cache_repairs = 0
        self.cache_rows_patched = 0
        self.cache_repair_fallbacks = 0
        self.cache_invalidated = 0
        #: requests shed before doing work, by reason
        self.sheds: Counter[str] = Counter()
        #: terminal degradation-ladder outcomes, by ladder step name
        self.ladder: Counter[str] = Counter()
        self.queue_depth = 0
        self.queue_depth_peak = 0
        self.latency = LatencyRecorder()

    # -- queue gauge -----------------------------------------------------------
    def enqueued(self) -> None:
        self.queue_depth += 1
        self.queue_depth_peak = max(self.queue_depth_peak, self.queue_depth)

    def dequeued(self) -> None:
        self.queue_depth = max(0, self.queue_depth - 1)

    # -- outcomes --------------------------------------------------------------
    def shed(self, reason: str) -> None:
        self.sheds[reason] += 1

    def finished(self, outcome: str, seconds: float) -> None:
        """A request reached a terminal ladder step ``outcome`` in ``seconds``."""
        self.ladder[outcome] += 1
        self.latency.observe(outcome, seconds)

    def record_cache_maintenance(self, before: dict, after: dict) -> None:
        """Attribute one write's result-cache settlement to the serving tier.

        ``before`` / ``after`` are the engine's ``result_cache`` stats
        snapshots around :meth:`~repro.core.engine.BoundedEngine.
        apply_updates`; the deltas of the monotone counters say what the
        write did to cached entries (repaired vs invalidated, rows patched,
        derivation fallbacks).
        """
        for attribute, counter in (
            ("cache_repairs", "repaired"),
            ("cache_rows_patched", "rows_patched"),
            ("cache_repair_fallbacks", "repair_fallbacks"),
            ("cache_invalidated", "invalidated"),
        ):
            delta = after.get(counter, 0) - before.get(counter, 0)
            if delta > 0:
                setattr(self, attribute, getattr(self, attribute) + delta)

    @property
    def total_sheds(self) -> int:
        return sum(self.sheds.values())

    def snapshot(self) -> dict:
        """Everything, JSON-ready (for soak reports and the bench trajectory)."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "retries": self.retries,
            "writes_applied": self.writes_applied,
            "write_failures": self.write_failures,
            "cache_repairs": self.cache_repairs,
            "cache_rows_patched": self.cache_rows_patched,
            "cache_repair_fallbacks": self.cache_repair_fallbacks,
            "cache_invalidated": self.cache_invalidated,
            "sheds": dict(self.sheds),
            "total_sheds": self.total_sheds,
            "ladder": dict(self.ladder),
            "queue_depth_peak": self.queue_depth_peak,
            "latency": self.latency.snapshot(),
        }
