"""Unit tests for canonical query fingerprints (the plan-cache key)."""

import pytest

from repro.core.fingerprint import canonical_form, query_fingerprint
from repro.core.query import Rename, Relation, eq
from repro.workloads import facebook


@pytest.fixture
def r(tiny_schema):
    return Relation.from_schema(tiny_schema, "r")


class TestDeterminism:
    def test_same_object_is_stable(self, fb_q1):
        assert query_fingerprint(fb_q1) == query_fingerprint(fb_q1)

    def test_structurally_equal_queries_collide(self):
        """Two independently built, identical queries share one fingerprint."""
        assert query_fingerprint(facebook.query_q1()) == query_fingerprint(
            facebook.query_q1()
        )

    def test_digest_shape(self, fb_q1):
        digest = query_fingerprint(fb_q1)
        assert isinstance(digest, str)
        assert len(digest) == 64
        int(digest, 16)  # hex


class TestSensitivity:
    def test_distinct_running_example_queries(self, fb_q0, fb_q0_prime, fb_q1, fb_q2):
        digests = {query_fingerprint(q) for q in (fb_q0, fb_q0_prime, fb_q1, fb_q2)}
        assert len(digests) == 4

    def test_constant_parameters_distinguish(self):
        assert query_fingerprint(facebook.query_q1(person="p0")) != query_fingerprint(
            facebook.query_q1(person="p1")
        )

    def test_constant_type_distinguishes(self, r):
        """1, "1" and True are equal under dataclass ==, but not as syntax."""
        by_int = r.select(eq(r["a"], 1))
        by_str = r.select(eq(r["a"], "1"))
        by_bool = r.select(eq(r["a"], True))
        digests = {query_fingerprint(q) for q in (by_int, by_str, by_bool)}
        assert len(digests) == 3

    def test_rename_target_distinguishes(self, r):
        assert query_fingerprint(Rename(r, "r1")) != query_fingerprint(Rename(r, "r2"))

    def test_occurrence_name_distinguishes(self, tiny_schema):
        first = Relation.from_schema(tiny_schema, "r")
        aliased = Relation("r_alias", tiny_schema["r"].attributes, base="r")
        assert query_fingerprint(first) != query_fingerprint(aliased)

    def test_projection_order_distinguishes(self, r):
        assert query_fingerprint(r.project(["a", "b"])) != query_fingerprint(
            r.project(["b", "a"])
        )

    def test_operand_order_distinguishes(self, tiny_schema):
        r = Relation.from_schema(tiny_schema, "r")
        s = Relation.from_schema(tiny_schema, "s")
        assert query_fingerprint(r.product(s)) != query_fingerprint(s.product(r))


class TestCanonicalForm:
    def test_is_nested_tuple(self, fb_q1):
        form = canonical_form(fb_q1)
        assert isinstance(form, tuple)
        assert form[0] == "proj"

    def test_round_trips_through_repr(self, fb_q1):
        """repr of the form is what gets hashed; it must be deterministic."""
        assert repr(canonical_form(fb_q1)) == repr(canonical_form(facebook.query_q1()))
