"""Replica groups: one logical shard served by N interchangeable backends.

A :class:`ReplicaSet` implements the :class:`~repro.sharding.shards.Shard`
protocol over N member shards that each hold a *full copy* of the logical
shard's fragment (memory and SQLite members mix freely).  The set is what
the router sees; the members are where faults happen.  Three mechanisms
make the group self-healing without ever weakening the federation's
epoch-guarantee:

**Lockstep writes + an authoritative clock.**  A routed write batch is
applied to every healthy member; the set keeps its own *authoritative*
:class:`~repro.storage.counters.VersionClock`, bumped once per batch over
the canonical report's touched relations — exactly the bump each member's
own clock performs, so a member that applied every batch satisfies
``member.validate(relations, authoritative.snapshot(relations))`` by
construction.  That equality IS the lockstep invariant; the router's
merge-time epoch guard runs against the authoritative clock, so whichever
member serves a fetch, the epoch token the router validates is the set's.

**Divergence detection, quarantine, catch-up, re-admission.**  A member
that *observably* fails a write (raises mid-batch — the torn case) is
quarantined immediately: its clock settles over the applied prefix, so
clock comparison alone cannot be trusted to catch it.  A member that
*silently* misses a batch (the lost-write case — no error, no mutation)
is caught by the lockstep check on the next fetch touching the written
relation: its per-relation version lags the authoritative one.  Either
way the member stops serving reads and receiving writes; catch-up
row-diffs it against a healthy in-lockstep sibling, applies the diff
through the member's own write path (indexes maintained), then overwrites
its clock with the authoritative one (:meth:`VersionClock.sync_to`).  Only
a member that completes catch-up is re-admitted — a diverged member is
never merged.

**Failover + hedged reads.**  A fetch tries members in routing order and
absorbs :class:`~repro.core.errors.TransientFault` by moving to the next
candidate — sound because injected/real shard faults fire *before* any
tuple is touched, so a failed attempt contributes nothing to access
accounting, and because every healthy candidate is in lockstep, so any of
them yields the same rows at the same authoritative epoch.  A per-member
:class:`ReplicaHealth` breaker (consecutive-failure threshold, half-open
probes) takes repeatedly-failing members out of the rotation.  Hedging is
deterministic rather than duplicated: when the primary's observed p95
latency crosses ``hedge_threshold``, the set routes to the fastest sibling
instead of racing a second request — the same tail-latency effect with no
wasted duplicate work, and the latency source is the same
:class:`~repro.serving.metrics.LatencyRecorder` the router reports, so
routing decisions and the soak report read one set of numbers.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence

from ..core.errors import MaintenanceError, ReproError, StorageError, TransientFault
from ..discovery.maintenance import MaintenanceReport, Update
from ..serving.metrics import LatencyRecorder
from ..storage.counters import AccessCounter, VersionClock
from .shards import Shard

Row = tuple

HEALTHY = "healthy"
QUARANTINED = "quarantined"


class ReplicaHealth:
    """Per-replica breaker state: consecutive failures, quarantine, probes.

    Two ways into quarantine: the breaker trips after
    ``failure_threshold`` consecutive fetch failures (reason
    ``"unhealthy"``), or the set quarantines the replica directly on
    observed divergence (reasons ``"divergence"`` / ``"write_failed"``).
    Either way the road back is the same: :meth:`allow_probe` admits a
    half-open attempt immediately and then every ``probe_after``-th
    selection, and the set re-admits only after a successful catch-up —
    a replica that was out of rotation missed routed writes by
    definition, so "probe succeeded" alone is never enough.
    """

    def __init__(self, name: str, failure_threshold: int = 3, probe_after: int = 8):
        self.name = name
        self.failure_threshold = failure_threshold
        self.probe_after = max(1, probe_after)
        self.state = HEALTHY
        self.reason: str | None = None
        self.consecutive_failures = 0
        self.failures_total = 0
        self.probes = 0
        self._skipped = 0

    @property
    def quarantined(self) -> bool:
        return self.state == QUARANTINED

    def record_failure(self) -> bool:
        """Count a fetch failure; returns True when the breaker just tripped."""
        self.failures_total += 1
        self.consecutive_failures += 1
        if self.state == HEALTHY and self.consecutive_failures >= self.failure_threshold:
            self.quarantine("unhealthy")
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def quarantine(self, reason: str) -> None:
        self.state = QUARANTINED
        self.reason = reason
        self._skipped = 0

    def readmit(self) -> None:
        self.state = HEALTHY
        self.reason = None
        self.consecutive_failures = 0

    def allow_probe(self) -> bool:
        """Half-open gate: first call after quarantine, then every Nth."""
        if self.state != QUARANTINED:
            return False
        self._skipped += 1
        allowed = (self._skipped - 1) % self.probe_after == 0
        if allowed:
            self.probes += 1
        return allowed

    def snapshot(self) -> dict[str, object]:
        return {
            "state": self.state,
            "reason": self.reason,
            "consecutive_failures": self.consecutive_failures,
            "failures_total": self.failures_total,
            "probes": self.probes,
        }


class ReplicaSet(Shard):
    """N interchangeable shard backends behind one Shard protocol.

    ``replicas`` must hold identical fragment copies with identical clocks
    (the :func:`~repro.sharding.router.build_topology` contract); the
    constructor verifies the clocks agree and adopts them as the
    authoritative clock's starting state.
    """

    kind = "replica-set"

    def __init__(
        self,
        name: str,
        replicas: Sequence[Shard],
        *,
        failure_threshold: int = 3,
        probe_after: int = 8,
        hedge_threshold: float | None = None,
        latency: LatencyRecorder | None = None,
    ):
        if not replicas:
            raise StorageError(f"replica set {name!r} needs at least one replica")
        self.name = name
        self.replicas = list(replicas)
        self.database = None  # every Shard surface is overridden below
        self.hedge_threshold = hedge_threshold
        #: shared with the router's RouterMetrics recorder once mounted, so
        #: hedging decisions and the reported per-replica histograms are one
        #: source of truth (see ShardRouter.__init__)
        self.latency = latency if latency is not None else LatencyRecorder()
        self.clock = VersionClock()
        self._health = {
            replica.name: ReplicaHealth(replica.name, failure_threshold, probe_after)
            for replica in self.replicas
        }
        if len(self._health) != len(self.replicas):
            raise StorageError(f"replica set {name!r} has duplicate replica names")
        # Adopt the members' (identical) initial clock state: fragment
        # construction bumps per-relation counters, and lockstep validation
        # compares members against the authoritative clock from fetch #1.
        reference = self.replicas[0].database.clock
        keys = tuple(reference._per_key)
        for replica in self.replicas[1:]:
            if replica.database.clock.snapshot(keys) != reference.snapshot(keys):
                raise StorageError(
                    f"replica set {name!r}: member {replica.name!r} starts out of "
                    "lockstep; replicas must be built from identical fragment copies"
                )
        self.clock.sync_to(reference)
        # -- counters ----------------------------------------------------------
        self.failovers = 0
        self.hedged_reads = 0
        self.quarantines = 0
        self.catch_ups = 0
        self.rows_resynced = 0

    # -- health plumbing ---------------------------------------------------------
    def health(self, replica_name: str) -> ReplicaHealth:
        return self._health[replica_name]

    def _quarantine(self, replica: Shard, reason: str) -> None:
        health = self._health[replica.name]
        if not health.quarantined:
            self.quarantines += 1
        health.quarantine(reason)

    def _in_lockstep(self, replica: Shard, relations: Iterable[str]) -> bool:
        keys = tuple(relations)
        return replica.database.clock.snapshot(keys) == self.clock.snapshot(keys)

    def _catch_up(self, replica: Shard) -> bool:
        """Resync ``replica`` from a healthy in-lockstep sibling; True on success.

        The diff is computed per relation as row sets (set semantics make
        this exact regardless of *how* the member diverged — lost batch,
        torn prefix, or writes missed while quarantined) and applied through
        the member's own write path, so its indexes are maintained.  The
        final clock sync makes future lockstep checks meaningful again.
        """
        all_relations = tuple(self.clock._per_key)
        source = next(
            (
                sibling
                for sibling in self.replicas
                if sibling is not replica
                and not self._health[sibling.name].quarantined
                and self._in_lockstep(sibling, all_relations)
            ),
            None,
        )
        if source is None:
            return False
        updates: list[Update] = []
        for relation in source.database.relation_names():
            want = set(source.relation_rows(relation))
            have = set(replica.relation_rows(relation))
            updates.extend(Update.insert(relation, row) for row in want - have)
            updates.extend(Update.delete(relation, row) for row in have - want)
        try:
            if updates:
                replica.apply_updates(updates)
        except ReproError:
            return False  # still broken (e.g. a dead node); stay quarantined
        # Verify the resync actually took before re-admitting: a write seam
        # that is still silently swallowing batches (the lost-write fault)
        # would otherwise fake its way back into rotation.
        for relation in source.database.relation_names():
            if set(replica.relation_rows(relation)) != set(
                source.relation_rows(relation)
            ):
                return False
        replica.database.clock.sync_to(self.clock)
        self.catch_ups += 1
        self.rows_resynced += len(updates)
        return True

    def _detect_divergence(self, relations: tuple[str, ...]) -> None:
        """Quarantine (and try to heal) members lagging on ``relations``.

        Runs over *every* in-rotation member, not just the one about to
        serve: a silently-diverged sibling must leave the write rotation at
        the first fetch touching the relation it missed, or it would keep
        compounding its lag batch after batch.
        """
        for replica in self.replicas:
            health = self._health[replica.name]
            if health.quarantined:
                continue
            if self._in_lockstep(replica, relations):
                continue
            self._quarantine(replica, "divergence")
            if self._catch_up(replica):
                health.readmit()

    def _routing_order(self) -> list[Shard]:
        """Healthy members in serving order, then probe-eligible quarantined ones.

        With hedging armed and the primary's observed p95 above the knob,
        healthy members are re-ordered fastest-first (missing samples rank
        neutral) and the diversion is counted as a hedged read.
        """
        healthy = [r for r in self.replicas if not self._health[r.name].quarantined]
        if self.hedge_threshold is not None and len(healthy) > 1:
            primary_p95 = self.latency.percentile(f"replica:{healthy[0].name}", 95)
            if primary_p95 is not None and primary_p95 > self.hedge_threshold:
                ordered = sorted(
                    healthy,
                    key=lambda r: (
                        self.latency.percentile(f"replica:{r.name}", 95)
                        or self.hedge_threshold
                    ),
                )
                if ordered[0] is not healthy[0]:
                    self.hedged_reads += 1
                healthy = ordered
        probes = [
            r
            for r in self.replicas
            if self._health[r.name].quarantined and self._health[r.name].allow_probe()
        ]
        return healthy + probes

    # -- reads ---------------------------------------------------------------------
    def fetch(
        self,
        constraint,
        base_relation: str,
        keys: Iterable[Sequence],
        counter: AccessCounter | None = None,
        predicate: Callable[[Row], bool] | None = None,
    ) -> frozenset[Row]:
        keys = list(keys)
        # The silently-diverged case: a member whose per-relation version
        # lags the authoritative clock (a lost write) is detected exactly
        # here — the first fetch touching the relation it missed —
        # quarantined, caught up synchronously, and re-admitted only if the
        # catch-up verifiably took.
        self._detect_divergence((base_relation,))
        # Half-open probes run as a healing pre-pass, decoupled from the
        # serving order: a probe-eligible quarantined member is caught up
        # and re-admitted *here*, not only when every healthy member has
        # already failed (which a healthy sibling would normally prevent
        # from ever happening).
        for replica in self.replicas:
            health = self._health[replica.name]
            if health.quarantined and health.allow_probe():
                if self._catch_up(replica):
                    health.readmit()
        candidates = self._routing_order()
        if not candidates:
            raise TransientFault(
                f"replica set {self.name!r}: no replica is healthy or probe-eligible"
            )
        last_error: TransientFault | None = None
        for position, replica in enumerate(candidates):
            health = self._health[replica.name]
            if health.quarantined:
                # A half-open probe: the member missed writes while out of
                # rotation, so it must catch up before it may serve.
                if not self._catch_up(replica):
                    continue
                health.readmit()
            started = time.perf_counter()
            try:
                rows = replica.fetch(constraint, base_relation, keys, counter, predicate)
            except TransientFault as error:
                last_error = error
                if health.record_failure():
                    self.quarantines += 1
                if position + 1 < len(candidates):
                    self.failovers += 1
                continue
            health.record_success()
            self.latency.observe(
                f"replica:{replica.name}", time.perf_counter() - started
            )
            return rows
        raise TransientFault(
            f"replica set {self.name!r}: every candidate replica failed the fetch"
            + (f" (last: {last_error})" if last_error is not None else "")
        )

    def relation_rows(self, relation: str) -> tuple[Row, ...]:
        for replica in self.replicas:
            if not self._health[replica.name].quarantined and self._in_lockstep(
                replica, (relation,)
            ):
                return replica.relation_rows(relation)
        raise TransientFault(
            f"replica set {self.name!r}: no in-lockstep replica to gather "
            f"{relation!r} from"
        )

    # -- writes --------------------------------------------------------------------
    def apply_updates(self, updates: Iterable[Update]) -> MaintenanceReport:
        """Apply the batch to every healthy member; one authoritative bump.

        The canonical report is the one with the most applied updates —
        healthy members hold identical data, so their reports are identical,
        and the max rule discards only the fake empty report a lost-write
        fault fabricates.  A member that raises is quarantined (its state is
        divergent whether the batch tore or cleanly missed) and the batch
        proceeds on its siblings; only if *every* member fails does the
        routed portion itself fail, with a :class:`MaintenanceError` so the
        router settles conservatively.
        """
        updates = list(updates)
        reports: list[MaintenanceReport] = []
        first_error: ReproError | None = None
        for replica in self.replicas:
            if self._health[replica.name].quarantined:
                continue  # catches up on re-admission instead
            try:
                report = replica.apply_updates(list(updates))
            except ReproError as error:
                if first_error is None:
                    first_error = error
                self._quarantine(replica, "write_failed")
                continue
            reports.append(report)
        if not reports:
            partial = getattr(first_error, "report", None)
            merged = partial if partial is not None else MaintenanceReport()
            merged.failed = True
            merged.error = (
                f"replica set {self.name!r}: every replica failed the batch "
                f"({first_error})"
            )
            raise MaintenanceError(merged.error, report=merged)
        canonical = max(reports, key=lambda r: r.applied)
        if canonical.touched_relations:
            canonical.version = self.clock.bump(sorted(canonical.touched_relations))
        return canonical

    # -- versioning ------------------------------------------------------------------
    def snapshot(self, relations: Iterable[str]) -> tuple[int, ...]:
        return self.clock.snapshot(relations)

    def validate(self, relations: Iterable[str], snapshot: tuple[int, ...]) -> bool:
        return self.clock.validate(relations, snapshot)

    # -- reporting -------------------------------------------------------------------
    def cache_counters(self) -> tuple[int, int]:
        hits = misses = 0
        for replica in self.replicas:
            h, m = replica.cache_counters()
            hits, misses = hits + h, misses + m
        return hits, misses

    def stats(self) -> dict[str, object]:
        serving = next(
            (
                r
                for r in self.replicas
                if not self._health[r.name].quarantined
            ),
            self.replicas[0],
        )
        return {
            "name": self.name,
            "kind": self.kind,
            "tuples": serving.database.size,
            "version": self.clock.global_version,
            "failovers": self.failovers,
            "hedged_reads": self.hedged_reads,
            "quarantines": self.quarantines,
            "catch_ups": self.catch_ups,
            "rows_resynced": self.rows_resynced,
            "replicas": [
                {**replica.stats(), **self._health[replica.name].snapshot()}
                for replica in self.replicas
            ],
        }
