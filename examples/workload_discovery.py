"""Discovering access constraints from data and keeping them maintained.

The framework of Section 7 starts from component C1: *discover* an access
schema from (samples of) the data, build its indexes, and maintain both under
updates with cost independent of |D| (Proposition 12).  This example runs
that loop on the TFACC (UK traffic accidents) workload:

1. mine constraints from a sample,
2. check which analyst queries they cover,
3. apply a batch of updates and watch the indexes stay consistent,
4. show a policy-style constraint being renegotiated when data outgrows it.

Run with:  python examples/workload_discovery.py
"""

from repro.core.coverage import check_coverage
from repro.core.engine import BoundedEngine
from repro.discovery import (
    DiscoveryConfig,
    Update,
    apply_updates,
    discover_access_schema,
    maintain_constraints,
)
from repro.evaluator.algebra import evaluate
from repro.sqlparser import parse_sql
from repro.storage.index import IndexSet
from repro.workloads import tfacc


def analyst_queries(sample) -> dict[str, str]:
    """Analyst SQL parameterized with values that actually occur in the sample."""
    accident = sample.relation("accidents").rows[0]
    accident_id, acc_date, _, police_force = accident[0], accident[1], accident[2], accident[3]
    return {
        "accidents handled by one force on a day": f"""
            SELECT a.accident_id, a.severity
            FROM accidents a
            WHERE a.police_force = '{police_force}' AND a.acc_date = '{acc_date}'
        """,
        "vehicles involved in one accident": f"""
            SELECT v.vehicle_id, v.vehicle_type
            FROM accidents a JOIN vehicles v ON a.accident_id = v.accident_id
            WHERE a.accident_id = '{accident_id}'
        """,
        "stops in the district of one accident": f"""
            SELECT s.stop_id, s.stop_type
            FROM accidents a JOIN stops s ON a.district = s.district
            WHERE a.accident_id = '{accident_id}'
        """,
    }


def main() -> None:
    schema = tfacc.schema()
    print("generating a TFACC sample and mining access constraints ...")
    sample = tfacc.generate(scale=150, seed=3)
    mined = discover_access_schema(
        sample, DiscoveryConfig(max_lhs_size=2, max_bound=500, domain_threshold=40)
    )
    print(f"mined {len(mined)} constraints from a sample of {sample.size} tuples; e.g.:")
    for constraint in list(mined)[:6]:
        print("   ", constraint)

    # How do the mined constraints compare to the hand-curated schema?
    curated = tfacc.access_schema()
    print(f"\ncurated schema has {len(curated)} constraints "
          f"(incl. the paper's (date, police_force) -> accident_id, 304)")

    # Which analyst queries are covered under each schema?
    queries = analyst_queries(sample)
    print("\ncoverage of analyst queries:")
    for title, sql in queries.items():
        query = parse_sql(sql, schema)
        mined_cov = check_coverage(query, mined).is_covered
        curated_cov = check_coverage(query, curated).is_covered
        print(f"   {title:45s} mined: {mined_cov!s:5}  curated: {curated_cov!s:5}")

    # Run one covered query boundedly under the mined constraints.
    engine = BoundedEngine(sample, mined, check_constraints=False)
    query = parse_sql(queries["accidents handled by one force on a day"], schema)
    result = engine.execute(query)
    assert result.rows == evaluate(query, sample).rows
    print(f"\nbounded run under mined constraints: {result.counter.total} tuples accessed "
          f"of {sample.size} (strategy: {result.strategy})")

    # Incremental maintenance (Proposition 12): apply a day's worth of updates.
    indexes = IndexSet.build(sample, curated, check=False)
    donor = tfacc.generate(scale=150, seed=99)
    updates = [
        Update.insert("accidents", row) for row in list(donor.relation("accidents"))[:40]
    ]
    report = apply_updates(sample, indexes, curated, updates)
    print(f"\napplied {report.applied} updates; maintenance work units: {report.work_units} "
          "(depends only on A and |ΔD|, not on |D|)")

    # A policy-style constraint outgrown by new data gets its bound raised.
    tight = discover_access_schema(
        sample, DiscoveryConfig(max_lhs_size=1, max_bound=500, domain_threshold=5)
    )
    burst = [
        Update.insert("vehicles", (f"Vburst{i}", "A0000010", "car", 3)) for i in range(25)
    ]
    adjusted, burst_report = maintain_constraints(
        sample, IndexSet.build(sample, tight, check=False), tight, burst
    )
    if burst_report.adjusted:
        before, after = next(iter(burst_report.adjusted.items()))
        print(f"\nconstraint renegotiated after burst: {before}  →  {after}")
    else:
        print("\nno constraint needed renegotiation after the burst")


if __name__ == "__main__":
    main()
