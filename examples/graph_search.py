"""The paper's running example (Example 1): Facebook-style Graph Search.

Walks through the whole story:

* ``Q0`` — "restaurants in NYC that I have *not* been to but my friends dined
  at in May 2015" — is **not** covered as written (its right-hand side would
  need to scan all of my dining history);
* the engine finds an A-equivalent rewriting (``Q0'`` in the paper) whose set
  difference is guarded by the left-hand side, which *is* covered;
* a canonical bounded plan is generated, executed through the ψ1–ψ4 indexes,
  minimized with ``minA``, and translated to SQL over the index relations.

Run with:  python examples/graph_search.py
"""

from repro.core.coverage import check_coverage
from repro.core.engine import BoundedEngine
from repro.core.minimize import minimize_access
from repro.core.plan2sql import plan_to_sql
from repro.evaluator.algebra import evaluate
from repro.workloads import facebook


def main() -> None:
    # The schema, constraints ψ1–ψ4 and a synthetic social graph satisfying them.
    access = facebook.access_schema()
    database = facebook.generate(scale=400, seed=2024)
    print(f"database: {database.size} tuples, satisfies A0: "
          f"{database.satisfies_schema(access)}")

    q0 = facebook.query_q0()       # Q1 − Q2, as a user would write it
    q1 = facebook.query_q1()       # the covered part
    q2 = facebook.query_q2()       # the unbounded part

    print("\n--- CovChk on the paper's queries ---")
    for name, query in [("Q1", q1), ("Q2", q2), ("Q0 = Q1 − Q2", q0)]:
        result = check_coverage(query, access)
        print(f"{name:14s} covered: {result.is_covered}")

    # The engine rewrites Q0 into a covered equivalent and evaluates it boundedly.
    engine = BoundedEngine(database, access)
    result = engine.execute(q0)
    print("\n--- Engine execution of Q0 ---")
    print("strategy:", result.strategy, "| rewrite used:", result.rewrite)
    print("answer:", sorted(r[0] for r in result.rows))
    print(f"tuples accessed: {result.counter.total} of {database.size} "
          f"(P(D_Q) = {result.access_ratio(database.size):.6f})")

    # Sanity: identical to the reference semantics of the original Q0.
    assert result.rows == evaluate(q0, database).rows

    # Access minimization (Section 6): which constraints does Q1 really need?
    minimized = minimize_access(q1, access)
    print("\n--- minA on Q1 ---")
    print("selected constraints:", ", ".join(sorted(c.name or str(c) for c in minimized.selected)))
    print("estimated access cost Σ N:", minimized.cost)

    # Plan2SQL (Section 7): the bounded plan as SQL over the index relations.
    plan, _, _ = engine.plan(q1, minimize=True)
    translation = plan_to_sql(plan)
    print("\n--- Plan2SQL for Q1 (first lines) ---")
    print("\n".join(translation.sql.splitlines()[:12]))
    print(f"... ({len(translation.sql.splitlines())} lines total, "
          f"reads only: {', '.join(sorted(translation.index_tables))})")

    # The plan's access bound is a promise about *every* database satisfying A0.
    print(f"\nstatic access bound of the Q1 plan: {plan.access_bound()} tuples "
          "(independent of |D|)")


if __name__ == "__main__":
    main()
