"""Unit tests for SPC analysis: max SPC sub-queries, Σ_Q, ρ_U, induced FDs."""

import pytest

from repro.core.access import AccessConstraint, AccessSchema
from repro.core.errors import QueryError
from repro.core.normalize import normalize
from repro.core.query import Difference, Relation, Union, conjunction, eq
from repro.core.schema import Attribute
from repro.core.spc import SPCAnalysis, is_normal_form, max_spc_subqueries
from repro.workloads import facebook


class TestMaxSPCSubqueries:
    def test_whole_spc_query_is_single_subquery(self, fb_q1):
        subs = max_spc_subqueries(fb_q1)
        assert len(subs) == 1
        assert subs[0] is fb_q1

    def test_difference_splits_into_two(self, fb_q0):
        subs = max_spc_subqueries(fb_q0)
        assert len(subs) == 2

    def test_nested_set_operators(self, fb_schema):
        cafe = Relation.from_schema(fb_schema, "cafe")
        cafe2 = Relation("cafe2", fb_schema["cafe"].attributes, base="cafe")
        cafe3 = Relation("cafe3", fb_schema["cafe"].attributes, base="cafe")
        query = Difference(
            Union(cafe.project(["cid"]), cafe2.project([cafe2["cid"]])),
            cafe3.project([cafe3["cid"]]),
        )
        subs = max_spc_subqueries(query)
        assert len(subs) == 3

    def test_projection_over_union_is_not_spc_root(self, fb_schema):
        cafe = Relation.from_schema(fb_schema, "cafe")
        cafe2 = Relation("cafe2", fb_schema["cafe"].attributes, base="cafe")
        union = Union(cafe, cafe2)
        query = union.project([cafe["cid"]])
        subs = max_spc_subqueries(query)
        assert {id(s) for s in subs} == {id(cafe), id(cafe2)}
        assert not is_normal_form(query)

    def test_normal_form_of_top_level_difference(self, fb_q0_prime):
        assert is_normal_form(fb_q0_prime)


class TestSPCAnalysis:
    def test_rejects_non_spc(self, fb_q0):
        with pytest.raises(QueryError):
            SPCAnalysis(fb_q0)

    def test_equality_atoms_and_transitivity(self, fb_schema):
        friend = Relation.from_schema(fb_schema, "friend")
        dine = Relation.from_schema(fb_schema, "dine")
        query = friend.join(dine, eq(friend["fid"], dine["pid"])).select(
            eq(friend["fid"], "p9")
        )
        analysis = SPCAnalysis(query)
        assert analysis.entails_equal(Attribute("friend", "fid"), Attribute("dine", "pid"))
        # transitivity: dine.pid = friend.fid = 'p9'
        assert analysis.constant_for(Attribute("dine", "pid")) == "p9"

    def test_unification_shares_token(self, fb_q1):
        analysis = SPCAnalysis(fb_q1)
        assert analysis.unify(Attribute("friend", "fid")) == analysis.unify(
            Attribute("dine", "pid")
        )
        assert analysis.unify(Attribute("dine", "cid")) == analysis.unify(
            Attribute("cafe", "cid")
        )

    def test_needed_and_constant_attributes_q1(self, fb_q1):
        analysis = SPCAnalysis(fb_q1)
        needed_names = {str(a) for a in analysis.needed_attributes}
        assert "dine.cid" in needed_names
        assert "friend.pid" in needed_names
        assert "cafe.city" in needed_names
        constant_names = {str(a) for a in analysis.constant_attributes}
        assert "friend.pid" in constant_names
        assert "cafe.city" in constant_names
        assert "dine.cid" not in constant_names

    def test_unified_sets(self, fb_q2):
        analysis = SPCAnalysis(fb_q2)
        assert analysis.unified_constant < analysis.unified_needed

    def test_relation_needed_attributes(self, fb_q1):
        analysis = SPCAnalysis(fb_q1)
        dine_needed = {a.name for a in analysis.relation_needed_attributes("dine")}
        assert dine_needed == {"pid", "cid", "month", "year"}
        cafe_needed = {a.name for a in analysis.relation_needed_attributes("cafe")}
        assert cafe_needed == {"cid", "city"}

    def test_unsatisfiable_detection(self, fb_schema):
        cafe = Relation.from_schema(fb_schema, "cafe")
        query = cafe.select(conjunction([eq(cafe["city"], "nyc"), eq(cafe["city"], "boston")]))
        analysis = SPCAnalysis(query)
        assert analysis.unsatisfiable is not None

    def test_satisfiable_has_no_flag(self, fb_q1):
        assert SPCAnalysis(fb_q1).unsatisfiable is None


class TestInducedFDs:
    def test_example5_induced_fds(self, fb_q1, fb_access):
        """Example 5: the induced FDs of Q1 and A0 over unified attribute names."""
        normalized = normalize(fb_q1)
        actualized = normalized.actualize(fb_access)
        analysis = SPCAnalysis(normalized.query)
        fds = analysis.induced_fds(actualized)
        assert len(fds) == 4
        rendered = {str(fd) for fd in fds}
        # pid -> fid (ψ1): friend.pid determines the unified fid/dine.pid class
        fid_token = analysis.unify(Attribute("friend", "fid"))
        pid_token = analysis.unify(Attribute("friend", "pid"))
        assert any(pid_token in fd and fid_token in fd for fd in rendered)

    def test_relevant_constraints_restricted_to_subquery(self, fb_q2, fb_access):
        normalized = normalize(fb_q2)
        actualized = normalized.actualize(fb_access)
        analysis = SPCAnalysis(normalized.query)
        relevant = analysis.relevant_constraints(actualized)
        assert all(c.relation.startswith("dine") for c in relevant)
        assert len(relevant) == 2

    def test_induced_fd_for_single_constraint(self, fb_q1, fb_access):
        normalized = normalize(fb_q1)
        actualized = normalized.actualize(fb_access)
        analysis = SPCAnalysis(normalized.query)
        psi4 = next(c for c in actualized if c.relation.startswith("cafe"))
        induced = analysis.induced_fd_for(psi4)
        assert len(induced.lhs) == 1
        assert len(induced.rhs) == 1
