"""Shared plan store and versioned result cache (the serving-core substrate).

Two caches back the hot path of :class:`~repro.core.engine.BoundedEngine`:

* :class:`PlanStore` — an LRU map from canonical query keys
  (:func:`~repro.core.fingerprint.prepared_cache_key`) to prepared-query
  entries.  Everything a prepared entry holds (coverage verdict, minimized
  schema, bounded plan, optimized plan) depends only on the query syntax and
  the access schema, so one store can be **shared across engine instances**
  (or shards) that serve the same access schema, even over divergent data.
  Each entry is tagged with the base relations its plan fetches from
  (:meth:`~repro.core.plan.BoundedPlan.dependency_relations`), so writes
  invalidate only the dependent entries instead of clearing the store.

* :class:`ResultCache` — a per-engine LRU map from ``(query key, dependency
  version snapshot)`` to materialized result rows.  Covered results are
  bounded by the access schema (≤ ``access_bound()`` tuples), which makes
  them cheap to keep; the snapshot of per-relation data versions
  (:class:`~repro.storage.counters.VersionClock`) makes them precise to
  invalidate: an entry is served only while none of its dependent relations
  has been written since it was filled.

  Entries optionally carry the per-step execution environment captured at
  fill time (``ExecutionResult.env``) plus the executable plan; those are
  what the delta-maintenance path (:mod:`repro.core.deltas`) needs to
  **repair** an entry after a dependent write — patch its rows and re-stamp
  its snapshot — instead of dropping it.  :meth:`ResultCache.repair` applies
  a derived patch; :meth:`ResultCache.drop` is the per-entry fallback
  invalidation used when a delta is not derivable.

Both caches keep hit/miss/eviction/invalidation counts for
:meth:`~repro.core.engine.BoundedEngine.cache_stats`, including per-relation
invalidation attribution (``invalidated_by``) so soak reports can tell
*which* relations keep knocking entries out.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable


@dataclass
class _StoreSlot:
    """One plan-store entry plus the relations whose data its plan reads."""

    entry: object
    dependencies: frozenset[str]


class PlanStore:
    """An LRU store of prepared queries, shareable across engine instances.

    A ``capacity`` of zero (or less) disables caching: every lookup misses
    and nothing is stored.  ``invalidate()`` with no argument drops every
    entry (the conservative legacy behaviour); ``invalidate(relations)``
    drops only entries whose dependency set intersects ``relations`` and
    returns the dropped entries so callers can release derived artifacts
    (e.g. compiled kernels).

    Entries must be data-independent: a store may only be shared by engines
    configured with an **identical access schema**, since plans embed the
    schema's constraints.
    """

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._slots: OrderedDict[Hashable, _StoreSlot] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: entries displaced by a put() overwriting their key
        self.replaced = 0
        #: entries dropped by invalidation (targeted or clear-all)
        self.invalidated = 0
        #: invalidation sweeps performed (one per write or batch)
        self.sweeps = 0
        #: triggering relation -> entries it invalidated ("*" for clear-alls)
        self.invalidated_by: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._slots)

    def get(self, key: Hashable) -> object | None:
        """The cached plan for ``key`` (LRU-refreshed), or ``None`` on a miss."""
        slot = self._slots.get(key)
        if slot is None:
            self.misses += 1
            return None
        self._slots.move_to_end(key)
        self.hits += 1
        return slot.entry

    def put(
        self, key: Hashable, entry: object, dependencies: Iterable[str] = ()
    ) -> list[object]:
        """Store ``entry``; returns the entries displaced to make room.

        Displaced entries are both LRU evictions *and* the previous entry of
        ``key`` when one existed (unless it is the very object being re-put):
        a replaced entry is just as dead as an evicted one, and silently
        dropping it would leak the artifacts derived from it.  Callers
        holding such artifacts (compiled kernels in the executor) should
        release them for every returned entry, exactly as they do for
        :meth:`invalidate`'s drops.
        """
        if self.capacity <= 0:
            return []
        displaced: list[object] = []
        previous = self._slots.pop(key, None)
        if previous is not None and previous.entry is not entry:
            displaced.append(previous.entry)
            self.replaced += 1
        self._slots[key] = _StoreSlot(entry=entry, dependencies=frozenset(dependencies))
        while len(self._slots) > self.capacity:
            _, slot = self._slots.popitem(last=False)
            displaced.append(slot.entry)
            self.evictions += 1
        return displaced

    def invalidate(self, relations: Iterable[str] | None = None) -> list[object]:
        """Drop dependent entries after a write; returns the dropped entries.

        With ``relations=None`` every entry is dropped (clear-all).  Otherwise
        only entries whose dependency set intersects ``relations`` are
        dropped — entries prepared for queries that never fetch from the
        written relations stay valid, which is sound because prepared plans
        depend on data *only* through the constraint indexes of the relations
        they fetch from.

        Each drop is attributed to the triggering relations in
        ``invalidated_by`` (clear-alls are attributed to ``"*"``), so soak
        and bench reports can name the write traffic that churns the store.
        """
        self.sweeps += 1
        if relations is None:
            dropped = [slot.entry for slot in self._slots.values()]
            self._slots.clear()
            if dropped:
                self.invalidated_by["*"] = self.invalidated_by.get("*", 0) + len(dropped)
        else:
            touched = frozenset(relations)
            stale = [
                key for key, slot in self._slots.items() if slot.dependencies & touched
            ]
            dropped = []
            for key in stale:
                slot = self._slots.pop(key)
                dropped.append(slot.entry)
                for relation in sorted(slot.dependencies & touched):
                    self.invalidated_by[relation] = (
                        self.invalidated_by.get(relation, 0) + 1
                    )
        self.invalidated += len(dropped)
        return dropped

    def stats(self) -> dict[str, int | float]:
        """Monotone hit/miss/eviction counters plus capacity and occupancy."""
        requests = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": len(self._slots),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / requests) if requests else 0.0,
            "evictions": self.evictions,
            "replaced": self.replaced,
            "invalidated": self.invalidated,
            "sweeps": self.sweeps,
            "invalidated_by": dict(self.invalidated_by),
        }


@dataclass
class CachedResult:
    """A materialized covered result plus the version snapshot it is valid for.

    ``env`` and ``plan`` are the repair handles: the per-step row
    environment captured when the entry was filled and the executable plan
    that produced it.  Both may be ``None`` (columnar execution, or an
    environment refused admission by the cache's ``max_env_rows`` budget) —
    such entries can only be invalidated, never repaired.
    """

    rows: frozenset[tuple]
    columns: tuple[str, ...]
    dependencies: tuple[str, ...]
    snapshot: tuple[int, ...]
    env: tuple[frozenset[tuple], ...] | None = None
    plan: object | None = None


class ResultCache:
    """An LRU cache of bounded results, validated by data-version snapshots.

    Keys are the same canonical query keys as the plan store; each entry
    remembers the ``(relation, version)`` snapshot of its plan's dependent
    relations at fill time.  A lookup hits only when the caller's current
    snapshot matches — entries outlived by a write to a dependent relation
    are dropped on probe (counted as ``stale``) or by an explicit targeted
    ``invalidate`` sweep.

    The cache is **per engine** (per database): results are data-dependent,
    unlike the shareable :class:`PlanStore`.

    ``max_rows`` is the admission threshold: results with more rows are not
    cached.  Fetched inputs are bounded by ``access_bound()``, but a plan's
    *output* can exceed that (e.g. a product of two fetched sets), so the
    LRU alone would bound entry count, not memory.  ``max_env_rows`` is the
    analogous budget for captured repair environments: an entry whose
    per-step environment sums to more rows is still cached, but without its
    environment — it stays servable and invalidatable, just not repairable.

    **Snapshot contract.** :meth:`get` serves an entry only when the
    caller's current dependency-version snapshot equals the entry's;
    :meth:`repair` may only be called by a write path that has verified the
    entry's snapshot matches the *pre-write* versions of every dependency
    (otherwise the patch would be derived against a state the entry was
    never valid for) and must pass the post-write snapshot to re-stamp.
    """

    def __init__(
        self,
        capacity: int = 256,
        max_rows: int = 100_000,
        max_env_rows: int = 200_000,
    ):
        self.capacity = capacity
        self.max_rows = max_rows
        self.max_env_rows = max_env_rows
        #: results refused admission for exceeding ``max_rows``
        self.oversized = 0
        #: repair environments refused admission for exceeding ``max_env_rows``
        self.env_rejected = 0
        self._entries: OrderedDict[Hashable, CachedResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.evictions = 0
        self.invalidated = 0
        self.sweeps = 0
        #: triggering relation -> entries it invalidated ("*" for clear-alls)
        self.invalidated_by: dict[str, int] = {}
        #: entries repaired in place after a dependent write (delta path)
        self.repaired = 0
        #: repairs that were pure snapshot re-stamps (no probed key written)
        self.repaired_clean = 0
        #: rows added + removed across all patches
        self.rows_patched = 0
        #: entries invalidated because their delta was not derivable
        self.repair_fallbacks = 0
        #: fallback reason -> count ("difference", "no_env", "stale", ...)
        self.repair_fallback_reasons: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, snapshot: tuple[int, ...]) -> CachedResult | None:
        """The entry for ``key`` iff its stamp equals ``snapshot``, else ``None``.

        A snapshot mismatch counts as a miss (``stale_hits``) — the entry
        stays resident so a later :meth:`repair` can still patch it.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.snapshot != snapshot:
            # The data moved on under this entry; drop it eagerly.
            del self._entries[key]
            self.stale += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(
        self,
        key: Hashable,
        rows: frozenset[tuple],
        columns: tuple[str, ...],
        dependencies: Iterable[str],
        snapshot: tuple[int, ...],
        env: tuple[frozenset[tuple], ...] | None = None,
        plan: object | None = None,
    ) -> None:
        """Admit a result; ``env``/``plan`` make the entry repairable.

        ``snapshot`` must be the dependency versions read *before* the
        execution that produced ``rows`` (the caller validated them after,
        or executed under a single-writer regime) — it is what :meth:`get`
        and the repair path compare against.
        """
        if self.capacity <= 0:
            return
        if len(rows) > self.max_rows:
            self.oversized += 1
            return
        if env is not None and sum(len(step) for step in env) > self.max_env_rows:
            self.env_rejected += 1
            env = None
        self._entries[key] = CachedResult(
            rows=rows,
            columns=columns,
            dependencies=tuple(dependencies),
            snapshot=snapshot,
            env=env,
            plan=plan if env is not None else None,
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def entries_for(self, relations: Iterable[str]) -> list[tuple[Hashable, CachedResult]]:
        """The live entries depending on any of ``relations`` (LRU order).

        Returns a materialized list so the write path can iterate while
        repairing/dropping entries without mutating-during-iteration issues.
        """
        touched = frozenset(relations)
        return [
            (key, entry)
            for key, entry in self._entries.items()
            if touched.intersection(entry.dependencies)
        ]

    def repair(
        self,
        key: Hashable,
        *,
        rows: frozenset[tuple],
        env: tuple[frozenset[tuple], ...] | None,
        snapshot: tuple[int, ...],
        rows_added: int = 0,
        rows_removed: int = 0,
    ) -> bool:
        """Patch an entry in place and re-stamp its dependency snapshot.

        The caller (the delta-maintenance write path) is responsible for the
        snapshot contract: it verified the entry was valid for the pre-write
        versions, derived ``rows``/``env`` from the applied delta, and
        passes the **post-write** snapshot here.  A patch with
        ``rows_added == rows_removed == 0`` is counted as a *clean* repair —
        the write provably missed every index group the entry read, so only
        the stamp moves.  Returns ``False`` when the entry vanished (LRU
        eviction between derivation and patch).
        """
        entry = self._entries.get(key)
        if entry is None:
            return False
        entry.rows = rows
        entry.snapshot = snapshot
        if env is not None:
            entry.env = env
        self.repaired += 1
        if rows_added or rows_removed:
            self.rows_patched += rows_added + rows_removed
        else:
            self.repaired_clean += 1
        return True

    def drop(
        self,
        key: Hashable,
        *,
        reason: str,
        relations: Iterable[str] = (),
    ) -> bool:
        """Invalidate one entry whose delta was not derivable (the fallback).

        ``reason`` lands in ``repair_fallback_reasons`` and the drop is
        attributed to ``relations`` like a targeted sweep, so observability
        can distinguish "repaired", "fell back" and "never tried".
        """
        self.repair_fallbacks += 1
        self.repair_fallback_reasons[reason] = (
            self.repair_fallback_reasons.get(reason, 0) + 1
        )
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.invalidated += 1
        for relation in relations:
            self.invalidated_by[relation] = self.invalidated_by.get(relation, 0) + 1
        return True

    def invalidate(self, relations: Iterable[str] | None = None) -> int:
        """Purge entries depending on ``relations`` (all entries when ``None``).

        Version snapshots already guarantee stale entries are never *served*;
        the sweep exists to bound memory and to surface invalidation counts
        in the stats.  Returns the number of entries dropped.
        """
        self.sweeps += 1
        if relations is None:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                self.invalidated_by["*"] = self.invalidated_by.get("*", 0) + dropped
        else:
            touched = frozenset(relations)
            stale = [
                key
                for key, entry in self._entries.items()
                if touched.intersection(entry.dependencies)
            ]
            for key in stale:
                entry = self._entries.pop(key)
                for relation in sorted(touched.intersection(entry.dependencies)):
                    self.invalidated_by[relation] = (
                        self.invalidated_by.get(relation, 0) + 1
                    )
            dropped = len(stale)
        self.invalidated += dropped
        return dropped

    def stats(self) -> dict[str, int | float | dict]:
        """Monotone counters: traffic, invalidation, and repair activity.

        Includes the delta-maintenance counters (``repaired``,
        ``repaired_clean``, ``rows_patched``, ``repair_fallbacks``,
        ``repair_fallback_reasons``) and ``invalidated_by`` — drops keyed
        by the relation whose write triggered them.
        """
        requests = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / requests) if requests else 0.0,
            "stale": self.stale,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
            "sweeps": self.sweeps,
            "oversized": self.oversized,
            "env_rejected": self.env_rejected,
            "repaired": self.repaired,
            "repaired_clean": self.repaired_clean,
            "rows_patched": self.rows_patched,
            "repair_fallbacks": self.repair_fallbacks,
            "repair_fallback_reasons": dict(self.repair_fallback_reasons),
            "invalidated_by": dict(self.invalidated_by),
        }
