"""Figure 6: percentage of covered / boundedly evaluable queries vs ‖A‖.

The measured operation is the full Figure 6 sweep: for 100 randomly generated
RA queries per workload, check coverage (CovChk) and bounded evaluability (the
rewrite oracle) under growing fractions of the access schema.  The resulting
series — covered% and bounded% per fraction — is printed for comparison with
the paper's Figure 6 (run pytest with ``-s`` to see it).
"""

from repro.bench.experiments import coverage_experiment


def test_fig6_coverage_sweep(benchmark, workload):
    table = benchmark.pedantic(
        coverage_experiment,
        kwargs={
            "workload": workload,
            "n_queries": 100,
            "fractions": (0.25, 0.5, 0.75, 1.0),
            "seed": 11,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())
    covered = table.column("covered_pct")
    bounded = table.column("bounded_pct")
    # Shape checks mirroring the paper's findings: coverage grows with ‖A‖,
    # bounded ≥ covered everywhere, and a substantial fraction is covered
    # under the full access schema.
    assert covered[-1] >= covered[0]
    assert all(b >= c for b, c in zip(bounded, covered))
    assert covered[-1] >= 25.0
