"""The conventional-DBMS baseline (``evalDBMS``).

The paper compares bounded plans against MySQL / PostgreSQL executing the
original query with tuple-based indexes.  This module provides the analogous
baseline on our in-memory substrate:

* base relations are read with a *tuple-granularity* strategy — if the query
  binds attributes of the relation to constants and an index exists whose
  key is covered by those constants, only the matching tuples are read
  (an "index scan"); otherwise the whole relation is scanned;
* joins and the remaining operators run in memory over the fetched tuples,
  exactly as the reference evaluator does;
* every tuple read is charged to an :class:`AccessCounter`, so the baseline's
  data access grows with ``|D|`` whenever a join involves non-selective or
  non-key attributes — the behaviour Section 8 observes for MySQL.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.access import AccessSchema
from ..core.errors import QueryError
from ..core.query import Query, Relation
from ..core.spc import SPCAnalysis, max_spc_subqueries
from ..storage.counters import AccessCounter
from ..storage.database import Database
from ..storage.index import IndexSet
from .algebra import AlgebraEvaluator, ResultSet


@dataclass
class BaselineResult:
    """The outcome of a conventional evaluation."""

    result: ResultSet
    counter: AccessCounter
    elapsed: float

    @property
    def rows(self):
        return self.result.rows

    def access_ratio(self, database_size: int) -> float:
        return self.counter.ratio(database_size)


class ConventionalEvaluator(AlgebraEvaluator):
    """``evalDBMS``: full-query evaluation with tuple-based index scans."""

    def __init__(
        self,
        database: Database,
        access_schema: AccessSchema | None = None,
        indexes: IndexSet | None = None,
        counter: AccessCounter | None = None,
    ):
        super().__init__(database, counter)
        self.access_schema = access_schema
        self.indexes = indexes
        #: per-evaluate() SPC analyses, keyed by relation occurrence name.
        #: Scoped to the active evaluate() call rather than cached by
        #: ``id(context)``: id() values can be reused once a query tree is
        #: garbage-collected, which would silently serve a stale analysis.
        self._current_analyses: dict[str, SPCAnalysis] | None = None

    # -- relation access -----------------------------------------------------------
    def scan_relation(self, node: Relation, context: Query) -> ResultSet:
        columns = tuple(str(a) for a in node.output_attributes())
        relation = self.database.relation(node.base)
        analysis = self._analysis_for(node, context)

        bound: dict[str, object] = {}
        if analysis is not None:
            for attribute in node.output_attributes():
                constant = analysis.constant_for(attribute)
                if constant is not None:
                    bound[attribute.name] = constant

        if bound and self._has_index_for(node.base, set(bound)):
            # Index scan: only tuples matching the constant bindings are read.
            positions = {
                name: relation.schema.position(name) for name in bound
            }
            rows = [
                row
                for row in relation
                if all(row[positions[name]] == value for name, value in bound.items())
            ]
            self.counter.record_scan(node.base, len(rows))
            return ResultSet(columns=columns, rows=frozenset(rows))

        # Full table scan: every tuple of the relation is read.
        self.counter.record_scan(node.base, len(relation))
        return ResultSet(columns=columns, rows=frozenset(relation.rows))

    def _has_index_for(self, base: str, bound_attributes: set[str]) -> bool:
        """Whether some constraint index on ``base`` has its key covered by constants."""
        if self.access_schema is None:
            return False
        for constraint in self.access_schema.for_relation(base):
            if constraint.lhs and constraint.lhs <= bound_attributes:
                return True
        return False

    def evaluate(self, query: Query) -> ResultSet:
        previous = self._current_analyses
        self._current_analyses = self._build_analyses(query)
        try:
            return super().evaluate(query)
        finally:
            self._current_analyses = previous

    def _analysis_for(self, node: Relation, context: Query) -> SPCAnalysis | None:
        """The SPC analysis of the max SPC sub-query containing this occurrence."""
        analyses = self._current_analyses
        if analyses is None:  # _evaluate called directly, outside evaluate()
            analyses = self._build_analyses(context)
        return analyses.get(node.name)

    @staticmethod
    def _build_analyses(context: Query) -> dict[str, SPCAnalysis]:
        by_relation: dict[str, SPCAnalysis] = {}
        for subquery in max_spc_subqueries(context):
            try:
                analysis = SPCAnalysis(subquery)
            except QueryError:  # pragma: no cover - defensive
                continue
            for rel in analysis.relations:
                by_relation[rel.name] = analysis
        return by_relation


def evaluate_conventional(
    query: Query,
    database: Database,
    access_schema: AccessSchema | None = None,
    indexes: IndexSet | None = None,
) -> BaselineResult:
    """Evaluate ``query`` with the conventional strategy and report access counts."""
    counter = AccessCounter()
    evaluator = ConventionalEvaluator(database, access_schema, indexes, counter)
    started = time.perf_counter()
    result = evaluator.evaluate(query)
    elapsed = time.perf_counter() - started
    return BaselineResult(result=result, counter=counter, elapsed=elapsed)
