"""Core algorithms of the bounded-evaluation library.

The sub-modules mirror the sections of the paper:

* :mod:`repro.core.access` — access constraints and access schemas (Section 2)
* :mod:`repro.core.query` — the RA query AST
* :mod:`repro.core.coverage` — covered queries and algorithm ``CovChk`` (Sections 3–4)
* :mod:`repro.core.planner` — canonical bounded plans, algorithm ``QPlan`` (Section 5)
* :mod:`repro.core.minimize` — access minimization ``minA`` / ``minADAG`` / ``minAE`` (Section 6)
* :mod:`repro.core.plan2sql` — translation of bounded plans to SQL (Section 7)
* :mod:`repro.core.engine` — the end-to-end framework of Section 7

Three modules go beyond the paper, toward a serving engine: :mod:`repro.core.
fingerprint` computes canonical query fingerprints for the engine's caches,
:mod:`repro.core.planstore` holds the shareable plan store and the versioned
result cache, and :mod:`repro.core.optimizer` peephole-optimizes canonical
plans (hash-join fusion, projection pushdown, common-subplan elimination).
"""

from .access import AccessConstraint, AccessSchema
from .approximate import ApproximateResult, approximate_answer
from .coverage import CoverageResult, check_coverage, is_covered
from .engine import BoundedEngine, EngineResult, PlanCache, PreparedQuery
from .fingerprint import canonical_form, prepared_cache_key, query_fingerprint
from .planstore import CachedResult, PlanStore, ResultCache
from .optimizer import optimize_plan
from .minimize import (
    MinimizationResult,
    minimize_access,
    minimize_access_acyclic,
    minimize_access_elementary,
    minimize_auto,
)
from .plan2sql import plan_to_sql, query_to_sql
from .rewrite import find_covered_rewrite, is_boundedly_evaluable
from .errors import (
    AccessConstraintError,
    ConstraintViolation,
    NotCoveredError,
    ParseError,
    PlanError,
    QueryError,
    ReproError,
    SchemaError,
    StorageError,
)
from .plan import BoundedPlan
from .planner import generate_plan, plan_query
from .query import (
    Comparison,
    Constant,
    Difference,
    Join,
    Product,
    Projection,
    Query,
    Relation,
    Rename,
    Selection,
    Union,
    eq,
)
from .schema import Attribute, DatabaseSchema, RelationSchema

__all__ = [
    "AccessConstraint",
    "AccessSchema",
    "AccessConstraintError",
    "ApproximateResult",
    "approximate_answer",
    "Attribute",
    "BoundedEngine",
    "BoundedPlan",
    "EngineResult",
    "MinimizationResult",
    "Comparison",
    "Constant",
    "ConstraintViolation",
    "CoverageResult",
    "DatabaseSchema",
    "Difference",
    "Join",
    "NotCoveredError",
    "ParseError",
    "PlanError",
    "PlanCache",
    "PlanStore",
    "CachedResult",
    "ResultCache",
    "PreparedQuery",
    "Product",
    "Projection",
    "Query",
    "QueryError",
    "Relation",
    "RelationSchema",
    "Rename",
    "ReproError",
    "SchemaError",
    "Selection",
    "StorageError",
    "Union",
    "canonical_form",
    "check_coverage",
    "eq",
    "find_covered_rewrite",
    "generate_plan",
    "is_boundedly_evaluable",
    "is_covered",
    "minimize_access",
    "minimize_access_acyclic",
    "minimize_access_elementary",
    "minimize_auto",
    "optimize_plan",
    "plan_query",
    "plan_to_sql",
    "prepared_cache_key",
    "query_fingerprint",
    "query_to_sql",
]
