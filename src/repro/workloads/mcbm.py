"""MCBM — mobile-communication benchmark workload (synthetic stand-in).

The paper's MCBM is a commercial benchmark from Huawei (12 relations, 285
attributes, up to 360 M tuples) simulating mobile-communication scenarios.
This module provides a schema of the same flavour — subscribers, plans,
cells, calls, messages, data usage, payments, devices — with access
constraints typical of telco data (bounded calls per subscriber per day,
key constraints, small enumerated domains) and a generator that satisfies
them at any scale.
"""

from __future__ import annotations

import random

from ..core.access import AccessConstraint, AccessSchema
from ..core.schema import DatabaseSchema
from ..storage.database import Database
from .base import WorkloadSpec

REGIONS = tuple(f"region_{i}" for i in range(16))
PRICE_TIERS = ("basic", "standard", "plus", "premium", "enterprise")
DURATION_BANDS = ("lt1m", "1to5m", "5to15m", "15to30m", "30to60m", "gt60m")
PAYMENT_METHODS = ("card", "bank", "wallet", "voucher")
DEVICE_OS = ("android", "ios", "harmony", "other")
DEVICE_MODELS = tuple(f"model_{i}" for i in range(24))
MONTHS = tuple(range(1, 13))
YEARS = (2013, 2014, 2015)


def schema() -> DatabaseSchema:
    """Eight relations mirroring the MCBM benchmark tables."""
    return DatabaseSchema.from_dict(
        {
            "subscribers": ["sid", "plan_id", "region", "join_year"],
            "plans": ["plan_id", "plan_name", "price_tier"],
            "cells": ["cell_id", "region", "capacity_class"],
            "calls": ["call_id", "caller", "callee", "call_date", "cell_id", "duration_band"],
            "messages": ["msg_id", "sender", "receiver", "msg_date"],
            "data_usage": ["usage_id", "sid", "month", "year", "tier"],
            "payments": ["payment_id", "sid", "month", "year", "method"],
            "devices": ["device_id", "sid", "model", "os"],
        }
    )


def access_schema(database_schema: DatabaseSchema | None = None) -> AccessSchema:
    """The access constraints of the MCBM workload."""
    database_schema = database_schema or schema()
    subscribers_all = list(database_schema["subscribers"].attributes)
    plans_all = list(database_schema["plans"].attributes)
    cells_all = list(database_schema["cells"].attributes)
    calls_all = list(database_schema["calls"].attributes)
    messages_all = list(database_schema["messages"].attributes)
    usage_all = list(database_schema["data_usage"].attributes)
    payments_all = list(database_schema["payments"].attributes)
    devices_all = list(database_schema["devices"].attributes)
    return AccessSchema(
        [
            AccessConstraint.of("subscribers", "sid", subscribers_all, 1, name="subscriber-key"),
            AccessConstraint.of("subscribers", (), "region", len(REGIONS), name="regions"),
            AccessConstraint.of("subscribers", (), "join_year", 20, name="join-years"),
            AccessConstraint.of("plans", "plan_id", plans_all, 1, name="plan-key"),
            AccessConstraint.of("plans", (), "price_tier", len(PRICE_TIERS), name="price-tiers"),
            AccessConstraint.of("cells", "cell_id", cells_all, 1, name="cell-key"),
            AccessConstraint.of("cells", "region", "cell_id", 80, name="region-cells"),
            AccessConstraint.of("calls", "call_id", calls_all, 1, name="call-key"),
            AccessConstraint.of(
                "calls", ["caller", "call_date"], "call_id", 100, name="caller-daily"
            ),
            AccessConstraint.of("calls", (), "duration_band", len(DURATION_BANDS),
                                name="duration-bands"),
            AccessConstraint.of("messages", "msg_id", messages_all, 1, name="message-key"),
            AccessConstraint.of(
                "messages", ["sender", "msg_date"], "msg_id", 200, name="sender-daily"
            ),
            AccessConstraint.of("data_usage", "usage_id", usage_all, 1, name="usage-key"),
            AccessConstraint.of(
                "data_usage", ["sid", "year", "month"], "usage_id", 1, name="usage-monthly"
            ),
            AccessConstraint.of("data_usage", (), "month", 12, name="usage-months"),
            AccessConstraint.of("data_usage", (), "tier", 6, name="usage-tiers"),
            AccessConstraint.of("payments", "payment_id", payments_all, 1, name="payment-key"),
            AccessConstraint.of(
                "payments", ["sid", "year", "month"], "payment_id", 3, name="payments-monthly"
            ),
            AccessConstraint.of("payments", (), "method", len(PAYMENT_METHODS), name="methods"),
            AccessConstraint.of("devices", "device_id", devices_all, 1, name="device-key"),
            AccessConstraint.of("devices", "sid", "device_id", 5, name="subscriber-devices"),
            AccessConstraint.of("devices", (), "os", len(DEVICE_OS), name="device-os"),
            AccessConstraint.of("devices", (), "model", len(DEVICE_MODELS), name="device-models"),
        ],
        schema=database_schema,
    )


def generate(scale: int = 200, seed: int = 0) -> Database:
    """Generate an MCBM instance; ``scale`` is roughly the number of subscribers."""
    rng = random.Random(seed)
    database = Database(schema())

    n_subscribers = max(20, scale)
    n_plans = 8
    n_cells = max(8, min(200, scale // 4))
    n_days = max(5, scale // 20)

    plans = [f"PL{i:02d}" for i in range(n_plans)]
    for plan in plans:
        database.insert("plans", (plan, f"plan_{plan}", rng.choice(PRICE_TIERS)))

    cells = [f"CL{i:04d}" for i in range(n_cells)]
    for cell in cells:
        database.insert("cells", (cell, rng.choice(REGIONS), rng.randint(1, 4)))

    subscribers = [f"SB{i:05d}" for i in range(n_subscribers)]
    for sid in subscribers:
        database.insert(
            "subscribers", (sid, rng.choice(plans), rng.choice(REGIONS), rng.choice(YEARS))
        )
        for device_index in range(rng.randint(1, 3)):
            database.insert(
                "devices",
                (f"DV{sid}{device_index}", sid, rng.choice(DEVICE_MODELS), rng.choice(DEVICE_OS)),
            )
        for year in YEARS[-2:]:
            for month in rng.sample(MONTHS, rng.randint(2, 6)):
                database.insert(
                    "data_usage",
                    (f"DU{sid}{year}{month:02d}", sid, month, year, rng.randint(1, 6)),
                )
                if rng.random() < 0.8:
                    database.insert(
                        "payments",
                        (f"PM{sid}{year}{month:02d}", sid, month, year,
                         rng.choice(PAYMENT_METHODS)),
                    )

    call_counter = 0
    message_counter = 0
    for day in range(n_days):
        year = YEARS[day % len(YEARS)]
        date = f"{year}-{(day % 12) + 1:02d}-{(day % 28) + 1:02d}"
        for sid in rng.sample(subscribers, max(1, len(subscribers) // 4)):
            for _ in range(rng.randint(0, 4)):
                callee = rng.choice(subscribers)
                database.insert(
                    "calls",
                    (f"CA{call_counter:08d}", sid, callee, date, rng.choice(cells),
                     rng.choice(DURATION_BANDS)),
                )
                call_counter += 1
            for _ in range(rng.randint(0, 5)):
                receiver = rng.choice(subscribers)
                database.insert(
                    "messages",
                    (f"MS{message_counter:08d}", sid, receiver, date),
                )
                message_counter += 1

    return database


JOIN_EDGES = (
    (("subscribers", "plan_id"), ("plans", "plan_id")),
    (("calls", "caller"), ("subscribers", "sid")),
    (("calls", "callee"), ("subscribers", "sid")),
    (("calls", "cell_id"), ("cells", "cell_id")),
    (("messages", "sender"), ("subscribers", "sid")),
    (("data_usage", "sid"), ("subscribers", "sid")),
    (("payments", "sid"), ("subscribers", "sid")),
    (("devices", "sid"), ("subscribers", "sid")),
    (("cells", "region"), ("subscribers", "region")),
)

WORKLOAD = WorkloadSpec(
    name="MCBM",
    schema=schema(),
    access_schema=access_schema(),
    generate=generate,
    join_edges=JOIN_EDGES,
    description="Mobile-communication benchmark: subscribers, calls, usage, payments",
    default_scale=200,
)
