"""Hardened serving tier over the versioned bounded-evaluation core.

The package layers a robustness stack on top of
:class:`~repro.core.engine.BoundedEngine`:

* :mod:`~repro.serving.server` — the asyncio :class:`BoundedServer`:
  bounded admission queue, per-request deadlines, cost-budget shedding
  (sound because covered plans expose an exact ``access_bound()``), the
  graceful-degradation ladder, and serialized write batches.
* :mod:`~repro.serving.policy` — retry/backoff/budget policies, the
  circuit breaker mounted around the unbounded conventional fallback,
  and deadlines.
* :mod:`~repro.serving.faults` — deterministic seeded fault injection at
  the executor / fallback / storage-write seams.
* :mod:`~repro.serving.metrics` — queue, shed, ladder, and latency
  quantile observability.
* :mod:`~repro.serving.soak` — the seeded chaos soak that cross-checks
  every served read against the uncached reference evaluator.
"""

from .faults import FaultInjector, FaultSpec
from .metrics import LatencyRecorder, ServingMetrics
from .policy import Backoff, CircuitBreaker, Deadline, RetryBudget, RetryPolicy
from .server import (
    BoundedServer,
    ReadRequest,
    ServeResponse,
    ServerConfig,
    WriteRequest,
)
from .soak import SoakConfig, run_soak

__all__ = [
    "Backoff",
    "BoundedServer",
    "CircuitBreaker",
    "Deadline",
    "FaultInjector",
    "FaultSpec",
    "LatencyRecorder",
    "ReadRequest",
    "RetryBudget",
    "RetryPolicy",
    "ServeResponse",
    "ServerConfig",
    "ServingMetrics",
    "SoakConfig",
    "WriteRequest",
    "run_soak",
]
