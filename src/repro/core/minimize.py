"""Access minimization — the AMP problem (Section 6).

Given a query ``Q`` covered by an access schema ``A``, find a subset
``A_m ⊆ A`` that still covers ``Q`` and minimizes ``Σ_{R(X→Y,N) ∈ A_m} N``
(the estimated amount of data accessed through the chosen indexes).  The
problem is NP-complete and not in APX (Theorem 9), so the paper gives
heuristics with guarantees:

* :func:`minimize_access` — ``minA``: greedy removal of redundant constraints
  weighted by ``w(φ) = c1·N / (c2·(|cov(Q,A) \\ cov(Q,A∖{φ})| + 1))``; always
  returns a *minimal* covering subset (Theorem 10(1)).
* :func:`minimize_access_acyclic` — ``minADAG``: shortest hyperpaths in the
  weighted ⟨Q,A⟩-hypergraph for the acyclic case (Theorem 10(2)).
* :func:`minimize_access_elementary` — ``minAE``: reduction to a directed
  Steiner-arborescence-style shortest-path union for the elementary case
  (Theorem 10(3)).
* :func:`minimize_access_exact` — exhaustive search, usable only for small
  ``‖A‖``; provided to measure the quality of the heuristics in tests and
  ablation benchmarks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .access import AccessConstraint, AccessSchema
from .coverage import CoverageChecker, CoverageResult, check_coverage
from .errors import NotCoveredError
from .hypergraph import ROOT, build_qa_hypergraph
from .query import Query
from .schema import Attribute


@dataclass
class MinimizationResult:
    """The outcome of an AMP heuristic."""

    selected: AccessSchema
    cost: int
    method: str
    iterations: int = 0
    details: Mapping[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.selected)


def schema_cost(access_schema: AccessSchema | Iterable[AccessConstraint]) -> int:
    """``Σ N`` over the constraints — the objective of AMP."""
    return sum(constraint.bound for constraint in access_schema)


# ---------------------------------------------------------------------------
# Case classification (Section 6.1)
# ---------------------------------------------------------------------------

def is_elementary_case(access_schema: AccessSchema) -> bool:
    """Whether every constraint is an indexing constraint or a unit constraint."""
    return all(c.is_indexing or c.is_unit for c in access_schema)


def is_acyclic_case(query: Query, access_schema: AccessSchema) -> bool:
    """Whether the ⟨Q,A⟩-hypergraph of the (normalized) query is acyclic."""
    coverage = check_coverage(query, access_schema)
    hypergraph = build_qa_hypergraph(
        coverage.normalized.query,
        coverage.actualized,
        analyses=[sub.analysis for sub in coverage.subqueries],
    )
    return hypergraph.is_acyclic()


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _coverage_tokens(coverage: CoverageResult) -> frozenset[str]:
    """All covered attribute tokens across the max SPC sub-queries."""
    tokens: set[str] = set()
    for sub in coverage.subqueries:
        tokens |= sub.covered_tokens
    return frozenset(tokens)


def _require_covered(
    query: Query, access_schema: AccessSchema, checker: CoverageChecker | None = None
) -> tuple[CoverageResult, CoverageChecker]:
    checker = checker if checker is not None else CoverageChecker(query)
    coverage = checker.check(access_schema)
    if not coverage.is_covered:
        raise NotCoveredError(
            "access minimization is only defined for covered queries:\n" + coverage.explain()
        )
    return coverage, checker


def _base_constraint_for(
    actualized: AccessConstraint,
    occurrences: Mapping[str, str],
    access_schema: AccessSchema,
) -> AccessConstraint | None:
    """Map an actualized constraint back to the base constraint it was copied from."""
    base_relation = occurrences.get(actualized.relation, actualized.relation)
    for constraint in access_schema.for_relation(base_relation):
        if (
            constraint.lhs == actualized.lhs
            and constraint.rhs == actualized.rhs
            and constraint.bound == actualized.bound
        ):
            return constraint
    return None


def _ensure_indexing(
    query: Query,
    access_schema: AccessSchema,
    selected: list[AccessConstraint],
    checker: CoverageChecker,
) -> list[AccessConstraint]:
    """Add cheapest constraints until every relation of the query is indexed.

    Used by ``minADAG`` / ``minAE`` after the hyperpath phase: the shortest
    hyperpaths guarantee fetchability, and this pass restores the indexing
    condition at minimal extra cost, preferring constraints already selected.
    """
    candidates = sorted(access_schema, key=lambda c: c.bound)
    full = checker.check(access_schema)
    for _ in range(len(candidates) + 1):
        subset = access_schema.restrict(selected)
        coverage = checker.check(subset)
        if coverage.is_covered:
            return selected
        # Find which relations are not indexed and add the cheapest applicable
        # constraint (as judged against the full schema's coverage).
        added = False
        for sub_full, sub_now in zip(full.subqueries, coverage.subqueries):
            for relation in sub_now.unindexed_relations:
                choice = sub_full.index_choices.get(relation)
                if choice is None:
                    continue
                base = _base_constraint_for(
                    choice, full.normalized.occurrences, access_schema
                )
                if base is not None and base not in selected:
                    selected.append(base)
                    added = True
            if not sub_now.fetchable:
                # Fall back: add cheapest constraints contributing to coverage.
                for constraint in candidates:
                    if constraint not in selected:
                        selected.append(constraint)
                        added = True
                        break
        if not added:
            for constraint in candidates:
                if constraint not in selected:
                    selected.append(constraint)
                    added = True
                    break
        if not added:  # pragma: no cover - exhausted all constraints
            break
    return selected


# ---------------------------------------------------------------------------
# minA — the general greedy heuristic (Theorem 10(1))
# ---------------------------------------------------------------------------

def minimize_access(
    query: Query,
    access_schema: AccessSchema,
    *,
    c1: float = 1.0,
    c2: float = 1.0,
) -> MinimizationResult:
    """``minA``: greedily drop redundant constraints, largest ``w(φ)`` first.

    The returned subset is *minimal*: removing any further constraint would
    leave the query uncovered.  ``c1`` and ``c2`` are the user-tunable
    normalization coefficients of the paper's weight function.
    """
    _, checker = _require_covered(query, access_schema)
    selected = list(access_schema)
    iterations = 0

    while True:
        iterations += 1
        current = access_schema.restrict(selected)
        current_coverage = checker.check(current)
        current_tokens = _coverage_tokens(current_coverage)

        best: AccessConstraint | None = None
        best_weight = float("-inf")
        for constraint in selected:
            reduced = access_schema.restrict([c for c in selected if c != constraint])
            reduced_coverage = checker.check(reduced)
            if not reduced_coverage.is_covered:
                continue
            lost = len(current_tokens - _coverage_tokens(reduced_coverage))
            weight = (c1 * constraint.bound) / (c2 * (lost + 1))
            if weight > best_weight:
                best_weight = weight
                best = constraint
        if best is None:
            break
        selected.remove(best)

    result_schema = access_schema.restrict(selected)
    return MinimizationResult(
        selected=result_schema,
        cost=schema_cost(result_schema),
        method="minA",
        iterations=iterations,
    )


# ---------------------------------------------------------------------------
# minADAG — acyclic case (Theorem 10(2))
# ---------------------------------------------------------------------------

def minimize_access_acyclic(
    query: Query, access_schema: AccessSchema
) -> MinimizationResult:
    """``minADAG``: shortest weighted hyperpaths from ``r`` to every needed attribute.

    Selects the constraints appearing on the shortest hyperpaths to the nodes
    of ``X̂_Q ∖ X̂_Q^C``, then adds indexing constraints for the relations of
    the query.  Intended for the acyclic case but safe (still correct, just
    without the approximation bound) on cyclic instances.
    """
    coverage, checker = _require_covered(query, access_schema)
    hypergraph = build_qa_hypergraph(
        coverage.normalized.query,
        coverage.actualized,
        weighted=True,
        analyses=[sub.analysis for sub in coverage.subqueries],
    )
    selected: list[AccessConstraint] = []
    total_path_weight = 0
    for sub in coverage.subqueries:
        analysis = sub.analysis
        targets = analysis.unified_needed - analysis.unified_constant
        for token in sorted(targets):
            path = hypergraph.graph.shortest_hyperpath({ROOT}, token)
            if path is None:  # pragma: no cover - guarded by coverage
                raise NotCoveredError(f"attribute token {token!r} unreachable from r")
            total_path_weight += path.weight
            for constraint in path.constraints():
                base = _base_constraint_for(
                    constraint, coverage.normalized.occurrences, access_schema
                )
                if base is not None and base not in selected:
                    selected.append(base)

    selected = _ensure_indexing(query, access_schema, selected, checker)
    result_schema = access_schema.restrict(selected)
    return MinimizationResult(
        selected=result_schema,
        cost=schema_cost(result_schema),
        method="minADAG",
        details={"total_path_weight": total_path_weight, "acyclic": hypergraph.is_acyclic()},
    )


# ---------------------------------------------------------------------------
# minAE — elementary case (Theorem 10(3))
# ---------------------------------------------------------------------------

def minimize_access_elementary(
    query: Query, access_schema: AccessSchema
) -> MinimizationResult:
    """``minAE``: Steiner-style selection for indexing + unit constraints.

    The unit constraints form an ordinary weighted digraph over attribute
    tokens; the heuristic takes the union of cheapest paths from ``r`` to the
    terminals ``X̂_Q ∖ X̂_Q^C`` (a classical ``O(|V_T|)``-approximation of the
    directed Steiner arborescence), then adds indexing constraints.
    """
    coverage, checker = _require_covered(query, access_schema)
    unit_constraints = AccessSchema(
        (c for c in access_schema if c.is_unit and not c.is_indexing),
        schema=access_schema.schema,
    )
    # Build the weighted hypergraph restricted to A_ni (unit constraints);
    # since |X| = |Y| = 1 it degenerates to a weighted digraph rooted at r.
    actual_unit = coverage.normalized.actualize(unit_constraints)
    hypergraph = build_qa_hypergraph(
        coverage.normalized.query,
        actual_unit,
        weighted=True,
        analyses=[sub.analysis for sub in coverage.subqueries],
    )
    selected: list[AccessConstraint] = []
    arborescence_weight = 0
    for sub in coverage.subqueries:
        analysis = sub.analysis
        targets = analysis.unified_needed - analysis.unified_constant
        for token in sorted(targets):
            path = hypergraph.graph.shortest_hyperpath({ROOT}, token)
            if path is None:
                # Not reachable via unit constraints alone; the indexing pass
                # below (which may use non-unit constraints) will fix coverage.
                continue
            arborescence_weight += path.weight
            for constraint in path.constraints():
                base = _base_constraint_for(
                    constraint, coverage.normalized.occurrences, access_schema
                )
                if base is not None and base not in selected:
                    selected.append(base)

    selected = _ensure_indexing(query, access_schema, selected, checker)
    result_schema = access_schema.restrict(selected)
    return MinimizationResult(
        selected=result_schema,
        cost=schema_cost(result_schema),
        method="minAE",
        details={
            "arborescence_weight": arborescence_weight,
            "elementary": is_elementary_case(access_schema),
        },
    )


# ---------------------------------------------------------------------------
# Exact search (for evaluation of the heuristics) and auto dispatch
# ---------------------------------------------------------------------------

def minimize_access_exact(
    query: Query, access_schema: AccessSchema, *, max_constraints: int = 16
) -> MinimizationResult:
    """Exhaustive AMP solver for small instances (exponential in ``‖A‖``).

    Only usable when ``‖A‖ ≤ max_constraints``; used by tests and ablation
    benchmarks to measure how far the heuristics are from the optimum.
    """
    _, checker = _require_covered(query, access_schema)
    constraints = list(access_schema)
    if len(constraints) > max_constraints:
        raise ValueError(
            f"exact search limited to {max_constraints} constraints, got {len(constraints)}"
        )
    best_subset: tuple[AccessConstraint, ...] | None = None
    best_cost = schema_cost(access_schema) + 1
    for size in range(len(constraints) + 1):
        for subset in itertools.combinations(constraints, size):
            cost = schema_cost(subset)
            if cost >= best_cost:
                continue
            candidate = access_schema.restrict(subset)
            if checker.check(candidate).is_covered:
                best_subset = subset
                best_cost = cost
    assert best_subset is not None  # the full schema always covers
    result_schema = access_schema.restrict(best_subset)
    return MinimizationResult(
        selected=result_schema, cost=best_cost, method="exact"
    )


def minimize_auto(query: Query, access_schema: AccessSchema) -> MinimizationResult:
    """Dispatch to the specialised heuristic when its case applies, else ``minA``."""
    if is_elementary_case(access_schema):
        return minimize_access_elementary(query, access_schema)
    if is_acyclic_case(query, access_schema):
        return minimize_access_acyclic(query, access_schema)
    return minimize_access(query, access_schema)
