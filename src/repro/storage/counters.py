"""Data-access accounting.

The central claim of bounded evaluability is about *how much data is
accessed*, so every component that touches tuples (index lookups, relation
scans, fetch execution) reports to an :class:`AccessCounter`.  The counters
feed the ``P(D_Q) = |D_Q| / |D|`` ratios reported by the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AccessCounter:
    """Counts tuples accessed, broken down by mechanism.

    ``fetched`` counts tuples retrieved through constraint indexes (the only
    access mechanism a bounded plan may use); ``scanned`` counts tuples read
    by full relation scans (used by the conventional baseline); ``index_probes``
    counts the number of index lookups issued.
    """

    fetched: int = 0
    scanned: int = 0
    index_probes: int = 0
    per_relation: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        """Total tuples accessed by any mechanism (the ``|D_Q|`` of the paper)."""
        return self.fetched + self.scanned

    def record_fetch(self, relation: str, count: int) -> None:
        self.fetched += count
        self.index_probes += 1
        self.per_relation[relation] = self.per_relation.get(relation, 0) + count

    def record_scan(self, relation: str, count: int) -> None:
        self.scanned += count
        self.per_relation[relation] = self.per_relation.get(relation, 0) + count

    def reset(self) -> None:
        self.fetched = 0
        self.scanned = 0
        self.index_probes = 0
        self.per_relation.clear()

    def merge(self, other: "AccessCounter") -> None:
        """Fold another counter into this one (used when combining sub-runs)."""
        self.fetched += other.fetched
        self.scanned += other.scanned
        self.index_probes += other.index_probes
        for relation, count in other.per_relation.items():
            self.per_relation[relation] = self.per_relation.get(relation, 0) + count

    def ratio(self, database_size: int) -> float:
        """``P(D_Q)``: the fraction of the database accessed."""
        if database_size <= 0:
            return 0.0
        return self.total / database_size
