"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation --no-use-pep517`` uses this file;
metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Bounded evaluability of relational queries under access constraints "
        "(reproduction of Cao & Fan, SIGMOD 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
