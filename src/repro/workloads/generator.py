"""Random RA query generation (Section 8, "RA queries generator").

The paper generates queries "by using attributes that occurred in the access
constraints and constants randomly extracted for those attributes", varying

* ``#-sel``      — the number of equality atoms in the selection (4..9),
* ``#-join``     — the number of joins (0..5), and
* ``#-unidiff``  — the number of union / set-difference operators (0..5).

:class:`RandomQueryGenerator` reproduces that process for a
:class:`~repro.workloads.base.WorkloadSpec`: joins follow the workload's join
graph (foreign-key-style edges), selections bind constraint attributes to
constants sampled from a generated instance, and set operators combine
independently generated SPC blocks of matching arity.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from ..core.access import AccessSchema
from ..core.query import (
    Difference,
    Join,
    Predicate,
    Projection,
    Query,
    Relation,
    Selection,
    Union,
    conjunction,
    eq,
)
from ..core.schema import Attribute
from ..storage.database import Database
from ..storage.statistics import DatabaseStatistics
from .base import WorkloadSpec


@dataclass(frozen=True)
class QueryParameters:
    """The knobs of one generated query."""

    n_sel: int
    n_join: int
    n_unidiff: int


class RandomQueryGenerator:
    """Generates random RA queries over a workload, as in the paper's experiments."""

    def __init__(
        self,
        workload: WorkloadSpec,
        database: Database | None = None,
        seed: int = 0,
        sample_scale: int = 60,
    ):
        self.workload = workload
        self.rng = random.Random(seed)
        if database is None:
            database = workload.database(scale=sample_scale, seed=seed)
        self.statistics = DatabaseStatistics.collect(database, sample_size=50)
        self._occurrence_counter = itertools.count(1)
        self._constraint_attributes = self._collect_constraint_attributes(
            workload.access_schema
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _collect_constraint_attributes(
        access_schema: AccessSchema,
    ) -> dict[str, list[str]]:
        """Per relation, the attributes that occur in some access constraint."""
        attributes: dict[str, list[str]] = {}
        for constraint in access_schema:
            bucket = attributes.setdefault(constraint.relation, [])
            for attr in sorted(constraint.lhs | constraint.rhs):
                if attr not in bucket:
                    bucket.append(attr)
        return attributes

    def _fresh_occurrence(self, base: str) -> str:
        return f"{base}_{next(self._occurrence_counter)}"

    def _sample_constant(self, base_relation: str, attribute: str) -> object:
        stats = self.statistics.relations.get(base_relation)
        if stats is None:
            return 0
        values = stats.sample_values.get(attribute, ())
        if not values:
            return 0
        return self.rng.choice(list(values))

    # ------------------------------------------------------------------
    def generate(self, n_sel: int = 4, n_join: int = 1, n_unidiff: int = 0) -> Query:
        """Generate one query with the requested ``#-sel`` / ``#-join`` / ``#-unidiff``."""
        blocks = [
            self._generate_spc_block(n_sel, n_join, single_output=n_unidiff > 0)
            for _ in range(n_unidiff + 1)
        ]
        query = blocks[0]
        for block in blocks[1:]:
            if self.rng.random() < 0.5:
                query = Union(query, block)
            else:
                query = Difference(query, block)
        return query

    def generate_batch(
        self,
        count: int,
        sel_range: tuple[int, int] = (4, 9),
        join_range: tuple[int, int] = (0, 5),
        unidiff_range: tuple[int, int] = (0, 5),
    ) -> list[tuple[QueryParameters, Query]]:
        """Generate ``count`` queries with parameters drawn uniformly from the ranges."""
        batch: list[tuple[QueryParameters, Query]] = []
        for _ in range(count):
            parameters = QueryParameters(
                n_sel=self.rng.randint(*sel_range),
                n_join=self.rng.randint(*join_range),
                n_unidiff=self.rng.randint(*unidiff_range),
            )
            batch.append(
                (parameters, self.generate(parameters.n_sel, parameters.n_join, parameters.n_unidiff))
            )
        return batch

    # ------------------------------------------------------------------
    def _generate_spc_block(self, n_sel: int, n_join: int, *, single_output: bool) -> Query:
        """One SPC block: a join chain over the workload's join graph + selections."""
        edges = list(self.workload.join_edges)
        relations_with_constraints = sorted(self._constraint_attributes)
        if not relations_with_constraints:
            relations_with_constraints = list(self.workload.schema.relation_names())

        start_base = self.rng.choice(relations_with_constraints)
        occurrences: dict[str, Relation] = {}

        def add_relation(base: str) -> Relation:
            name = self._fresh_occurrence(base)
            relation = Relation(name, self.workload.schema[base].attributes, base=base)
            occurrences[name] = relation
            return relation

        start = add_relation(start_base)
        query: Query = start
        included_bases: list[tuple[str, Relation]] = [(start_base, start)]

        for _ in range(n_join):
            candidates = [
                (edge, anchor_relation, anchor_side)
                for edge in edges
                for anchor_side in (0, 1)
                for base, anchor_relation in included_bases
                if edge[anchor_side][0] == base
            ]
            if not candidates:
                break
            edge, anchor_relation, anchor_side = self.rng.choice(candidates)
            other_side = 1 - anchor_side
            other_base, other_attr = edge[other_side]
            anchor_attr = edge[anchor_side][1]
            new_relation = add_relation(other_base)
            condition = eq(anchor_relation[anchor_attr], new_relation[other_attr])
            query = Join(query, new_relation, condition)
            included_bases.append((other_base, new_relation))

        # Selection: n_sel equality atoms on constraint attributes of the block.
        # Most atoms are drawn so as to complete the left-hand side of some
        # access constraint on an included relation (the paper's generator
        # uses "attributes that occurred in the access constraints"); the rest
        # are uniform over constraint attributes, so some queries end up not
        # covered, as in the experiments.
        atoms = []
        candidate_attributes: list[tuple[Relation, str, str]] = []
        lhs_candidates: list[tuple[Relation, str, str]] = []
        for base, relation in included_bases:
            for attr in self._constraint_attributes.get(base, relation.attribute_names):
                candidate_attributes.append((relation, base, attr))
            for constraint in self.workload.access_schema.for_relation(base):
                for attr in sorted(constraint.lhs):
                    lhs_candidates.append((relation, base, attr))
        for _ in range(n_sel):
            if not candidate_attributes:
                break
            pool = lhs_candidates if lhs_candidates and self.rng.random() < 0.7 else candidate_attributes
            relation, base, attr = self.rng.choice(pool)
            constant = self._sample_constant(base, attr)
            atoms.append(eq(relation[attr], constant))
        if atoms:
            condition = conjunction(atoms)
            assert condition is not None
            query = Selection(query, condition)

        # Projection: constraint attributes of the included relations.
        projection_pool: list[Attribute] = []
        for base, relation in included_bases:
            for attr in self._constraint_attributes.get(base, relation.attribute_names):
                projection_pool.append(relation[attr])
        if not projection_pool:  # pragma: no cover - defensive
            projection_pool = list(query.output_attributes())
        if single_output:
            chosen = [self.rng.choice(projection_pool)]
        else:
            width = self.rng.randint(1, min(3, len(projection_pool)))
            chosen = self.rng.sample(projection_pool, width)
        return Projection(query, chosen)
