"""Unit tests for access-constraint discovery."""

import pytest

from repro.core.coverage import is_covered
from repro.core.errors import DiscoveryError
from repro.discovery.mining import DiscoveryConfig, discover_access_schema, discover_constraints
from repro.storage.database import Database
from repro.workloads import facebook


@pytest.fixture
def small_fb() -> Database:
    return facebook.generate(scale=25, seed=11)


class TestDiscoveryConfig:
    def test_defaults(self):
        config = DiscoveryConfig()
        assert config.max_lhs_size == 2
        assert config.slack == 1.0

    def test_invalid_values(self):
        with pytest.raises(DiscoveryError):
            DiscoveryConfig(max_lhs_size=0)
        with pytest.raises(DiscoveryError):
            DiscoveryConfig(slack=0.5)


class TestDiscoverConstraints:
    def test_small_domain_constraints_found(self, small_fb):
        constraints = discover_constraints(small_fb.relation("dine"))
        domain = [c for c in constraints if not c.lhs]
        assert any("month" in c.rhs for c in domain)
        assert any("year" in c.rhs for c in domain)

    def test_key_constraint_found(self, small_fb):
        constraints = discover_constraints(small_fb.relation("cafe"))
        keys = [c for c in constraints if c.name and c.name.startswith("key")]
        assert keys
        assert keys[0].lhs == frozenset({"cid"})
        assert keys[0].bound == 1

    def test_discovered_constraints_hold_on_data(self, small_fb):
        for relation_name in small_fb.relation_names():
            for constraint in discover_constraints(small_fb.relation(relation_name)):
                assert small_fb.satisfies(constraint), str(constraint)

    def test_max_bound_filters_wide_groups(self, small_fb):
        tight = DiscoveryConfig(max_bound=2, domain_threshold=2)
        loose = DiscoveryConfig(max_bound=10_000, domain_threshold=10_000)
        tight_constraints = discover_constraints(small_fb.relation("dine"), tight)
        loose_constraints = discover_constraints(small_fb.relation("dine"), loose)
        assert len(tight_constraints) < len(loose_constraints)

    def test_slack_inflates_bounds(self, small_fb):
        exact = discover_constraints(small_fb.relation("friend"), DiscoveryConfig())
        slack = discover_constraints(small_fb.relation("friend"), DiscoveryConfig(slack=2.0))
        exact_by_shape = {(c.relation, c.lhs, c.rhs): c.bound for c in exact}
        for constraint in slack:
            shape = (constraint.relation, constraint.lhs, constraint.rhs)
            if shape in exact_by_shape:
                assert constraint.bound >= exact_by_shape[shape]

    def test_dominated_candidates_pruned(self, small_fb):
        """A superset LHS for the same RHS is kept only if it tightens the bound."""
        constraints = discover_constraints(
            small_fb.relation("dine"), DiscoveryConfig(max_lhs_size=3, max_bound=1000)
        )
        mined = [(c.lhs, c.rhs, c.bound) for c in constraints if c.lhs]
        for lhs_a, rhs_a, bound_a in mined:
            for lhs_b, rhs_b, bound_b in mined:
                if rhs_a == rhs_b and lhs_a < lhs_b:
                    assert bound_b < bound_a, (
                        f"dominated constraint kept: {lhs_b}->{rhs_b} (bound {bound_b}) "
                        f"despite {lhs_a}->{rhs_a} (bound {bound_a})"
                    )


class TestDiscoverAccessSchema:
    def test_schema_wide_discovery(self, small_fb):
        access = discover_access_schema(small_fb)
        assert len(access) > 0
        relations_covered = {c.relation for c in access}
        assert relations_covered == set(small_fb.relation_names())

    def test_relations_filter(self, small_fb):
        access = discover_access_schema(small_fb, relations=["cafe"])
        assert {c.relation for c in access} == {"cafe"}

    def test_discovered_schema_enables_coverage(self, small_fb):
        """Queries over constraint attributes become covered under mined constraints."""
        access = discover_access_schema(
            small_fb, DiscoveryConfig(max_lhs_size=3, max_bound=200)
        )
        q1 = facebook.query_q1()
        assert is_covered(q1, access)
