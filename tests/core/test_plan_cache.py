"""Plan-store correctness: hits, granular invalidation, and cache/optimizer equivalence."""

import pytest

from repro.core.engine import BoundedEngine, PlanCache, PreparedQuery
from repro.core.planstore import PlanStore
from repro.evaluator.algebra import evaluate
from repro.workloads import WORKLOADS, facebook
from repro.bench.experiments import select_covered_queries


@pytest.fixture
def cached_engine(fb_database, fb_access):
    return BoundedEngine(fb_database, fb_access)


@pytest.fixture
def uncached_engine(fb_database, fb_access):
    return BoundedEngine(fb_database, fb_access, plan_cache_size=0)


class TestPlanStoreUnit:
    def test_plan_cache_is_plan_store_alias(self):
        assert PlanCache is PlanStore

    def test_lru_eviction(self):
        store = PlanStore(capacity=2)
        a, b, c = (PreparedQuery(coverage=None) for _ in range(3))  # type: ignore[arg-type]
        assert store.put("a", a) == []
        store.put("b", b)
        assert store.get("a") is a  # refresh a; b is now least recent
        assert store.put("c", c) == [b]  # evictions are handed back to the caller
        assert store.get("b") is None
        assert store.get("a") is a
        assert store.get("c") is c
        assert store.stats()["evictions"] == 1

    def test_zero_capacity_disables(self):
        store = PlanStore(capacity=0)
        store.put("a", PreparedQuery(coverage=None))  # type: ignore[arg-type]
        assert len(store) == 0
        assert store.get("a") is None

    def test_stats_accumulate(self):
        store = PlanStore(capacity=4)
        entry = PreparedQuery(coverage=None)  # type: ignore[arg-type]
        assert store.get("k") is None
        store.put("k", entry)
        assert store.get("k") is entry
        store.invalidate()
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["sweeps"] == 1
        assert stats["invalidated"] == 1
        assert stats["entries"] == 0

    def test_targeted_invalidation_drops_only_dependents(self):
        store = PlanStore(capacity=8)
        on_r = PreparedQuery(coverage=None)  # type: ignore[arg-type]
        on_s = PreparedQuery(coverage=None)  # type: ignore[arg-type]
        no_deps = PreparedQuery(coverage=None)  # type: ignore[arg-type]
        store.put("r", on_r, dependencies=("r",))
        store.put("s", on_s, dependencies=("s", "t"))
        store.put("n", no_deps)
        dropped = store.invalidate(("r",))
        assert dropped == [on_r]
        assert store.get("s") is on_s
        assert store.get("n") is no_deps
        assert store.get("r") is None
        assert store.stats()["invalidated"] == 1

    def test_clear_all_returns_every_entry(self):
        store = PlanStore(capacity=8)
        entries = [PreparedQuery(coverage=None) for _ in range(3)]  # type: ignore[arg-type]
        for index, entry in enumerate(entries):
            store.put(index, entry, dependencies=(f"rel{index}",))
        dropped = store.invalidate()
        assert sorted(map(id, dropped)) == sorted(map(id, entries))
        assert len(store) == 0


class TestCachedExecution:
    def test_rows_identical_with_and_without_cache(
        self, cached_engine, uncached_engine, fb_q1, fb_database
    ):
        expected = evaluate(fb_q1, fb_database).rows
        assert cached_engine.execute(fb_q1).rows == expected
        assert cached_engine.execute(fb_q1).rows == expected  # served from cache
        assert uncached_engine.execute(fb_q1).rows == expected

    def test_repeat_hits_cache(self, cached_engine, fb_q1):
        first = cached_engine.execute(fb_q1)
        second = cached_engine.execute(fb_q1)
        assert not first.cached
        assert second.cached
        assert second.plan is first.plan  # the very same prepared plan object
        stats = cached_engine.cache_stats()["plan_store"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_distinct_parameters_get_distinct_entries(self, cached_engine, fb_database):
        q_p0 = facebook.query_q1(person="p0")
        q_p1 = facebook.query_q1(person="p1")
        r_p0 = cached_engine.execute(q_p0)
        r_p1 = cached_engine.execute(q_p1)
        assert not r_p1.cached  # no false sharing between distinct constants
        assert r_p0.rows == evaluate(q_p0, fb_database).rows
        assert r_p1.rows == evaluate(q_p1, fb_database).rows
        assert cached_engine.cache_stats()["plan_store"]["entries"] == 2

    def test_minimize_flag_keys_separately(self, cached_engine, fb_q1):
        cached_engine.execute(fb_q1, minimize=True)
        result = cached_engine.execute(fb_q1, minimize=False)
        assert not result.cached
        assert result.minimization is None

    def test_uncovered_verdict_cached_but_fallback_stays_fresh(
        self, cached_engine, fb_q2, fb_database
    ):
        first = cached_engine.execute(fb_q2)
        assert first.strategy == "conventional"
        second = cached_engine.execute(fb_q2)
        assert second.cached
        assert not second.result_cached  # fallback results are never cached
        assert second.strategy == "conventional"
        assert second.rows == evaluate(fb_q2, fb_database).rows

    def test_rewritten_query_served_from_cache(self, cached_engine, fb_q0):
        first = cached_engine.execute(fb_q0)
        second = cached_engine.execute(fb_q0)
        assert first.strategy == second.strategy == "bounded"
        assert first.rewrite == second.rewrite == "guard-difference"
        assert second.cached
        assert second.rows == first.rows


class TestInvalidation:
    def test_insert_invalidates_and_results_stay_correct(
        self, fb_database, fb_access
    ):
        # Legacy sweep-on-write contract: with delta repair off, a dependent
        # write drops the plan-store entry (one sweep per write).
        engine = BoundedEngine(fb_database, fb_access, delta_repair=False)
        q1 = facebook.query_q1()
        before = engine.execute(q1)
        assert engine.execute(q1).cached
        engine.apply_insert("cafe", ("c_new", "nyc"))
        engine.apply_insert("friend", ("p0", "p_new"))
        engine.apply_insert("dine", ("p_new", "c_new", "may", 2015))
        after = engine.execute(q1)
        assert not after.cached  # the entry was dropped by the first dependent write
        stats = engine.cache_stats()["plan_store"]
        assert stats["sweeps"] == 3  # one sweep per write...
        assert stats["invalidated"] == 1  # ...but only one entry ever dropped
        # satellite fix: the sweep names the relation that triggered it
        assert sum(stats["invalidated_by"].values()) == 1
        assert set(stats["invalidated_by"]) <= {"cafe", "friend", "dine"}
        assert ("c_new",) in after.rows
        assert after.rows == evaluate(q1, fb_database).rows
        assert before.rows <= after.rows

    def test_insert_repairs_cached_result_by_default(
        self, cached_engine, fb_database
    ):
        # Delta-repair contract (the default): dependent writes patch the
        # cached result in place and leave the plan store alone.
        q1 = facebook.query_q1()
        before = cached_engine.execute(q1)
        assert cached_engine.execute(q1).cached
        cached_engine.apply_insert("cafe", ("c_new", "nyc"))
        cached_engine.apply_insert("friend", ("p0", "p_new"))
        cached_engine.apply_insert("dine", ("p_new", "c_new", "may", 2015))
        after = cached_engine.execute(q1)
        assert after.cached  # plan store untouched on the repair path
        stats = cached_engine.cache_stats()
        assert stats["plan_store"]["sweeps"] == 0
        result_cache = stats["result_cache"]
        assert result_cache["repaired"] == 3  # one repair decision per write
        assert after.result_cached  # the repaired entry itself was served
        assert ("c_new",) in after.rows
        assert after.rows == evaluate(q1, fb_database).rows
        assert before.rows <= after.rows

    def test_delete_invalidates_and_results_stay_correct(
        self, fb_database, fb_access
    ):
        engine = BoundedEngine(fb_database, fb_access, delta_repair=False)
        q1 = facebook.query_q1()
        engine.apply_insert("cafe", ("c_gone", "nyc"))
        engine.apply_insert("friend", ("p0", "p88"))
        engine.apply_insert("dine", ("p88", "c_gone", "may", 2015))
        assert ("c_gone",) in engine.execute(q1).rows
        engine.apply_delete("dine", ("p88", "c_gone", "may", 2015))
        result = engine.execute(q1)
        assert not result.cached
        assert ("c_gone",) not in result.rows
        assert result.rows == evaluate(q1, fb_database).rows

    def test_delete_repairs_cached_result_by_default(
        self, cached_engine, fb_database
    ):
        q1 = facebook.query_q1()
        cached_engine.apply_insert("cafe", ("c_gone", "nyc"))
        cached_engine.apply_insert("friend", ("p0", "p88"))
        cached_engine.apply_insert("dine", ("p88", "c_gone", "may", 2015))
        assert ("c_gone",) in cached_engine.execute(q1).rows
        cached_engine.apply_delete("dine", ("p88", "c_gone", "may", 2015))
        result = cached_engine.execute(q1)
        assert result.result_cached  # the delete was patched out of the entry
        assert ("c_gone",) not in result.rows
        assert result.rows == evaluate(q1, fb_database).rows

    def test_noop_update_keeps_cache(self, cached_engine, fb_database):
        q1 = facebook.query_q1()
        cached_engine.execute(q1)
        existing = next(iter(fb_database.relation("cafe").rows))
        cached_engine.apply_insert("cafe", existing)  # duplicate: no data change
        repeat = cached_engine.execute(q1)
        assert repeat.cached
        assert repeat.result_cached  # even the result stayed valid

    def test_unrelated_write_keeps_entries_with_granular_invalidation(
        self, hot_cold_setup
    ):
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access)
        engine.execute(hot_query)
        prepared, _ = engine.prepare(hot_query)
        assert prepared.dependencies == ("hot",)
        engine.apply_insert("cold", ("y", 1))  # a relation the plan never fetches
        repeat = engine.execute(hot_query)
        assert repeat.cached  # plan survived the unrelated write
        assert repeat.result_cached  # and so did the materialized result

    def test_clear_all_mode_restores_legacy_behaviour(self, hot_cold_setup):
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access, granular_invalidation=False)
        engine.execute(hot_query)
        engine.apply_insert("cold", ("y", 1))
        repeat = engine.execute(hot_query)
        assert not repeat.cached  # clear-all drops even unrelated entries
        assert not repeat.result_cached


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_cache_and_optimizer_row_identical_on_workloads(name):
    """Bounded results match with cache+optimizer on, off, and reference eval."""
    workload = WORKLOADS[name]
    database = workload.database(scale=60, seed=7)
    queries = select_covered_queries(workload, count=2, seed=7, database=database)
    assert queries, f"no covered queries generated for {name}"
    full = BoundedEngine(database, workload.access_schema, check_constraints=False)
    bare = BoundedEngine(
        database,
        workload.access_schema,
        check_constraints=False,
        plan_cache_size=0,
        result_cache_size=0,
        optimize=False,
    )
    for query in queries:
        expected = evaluate(query, database).rows
        for engine in (full, bare):
            result = engine.execute(query)
            assert result.strategy == "bounded"
            assert result.rows == expected
        # warm pass: served from cache, still identical
        assert full.execute(query).rows == expected
