"""Data versioning: the VersionClock and Database's per-relation counters."""

from repro.core.access import AccessConstraint
from repro.storage.counters import VersionClock
from repro.storage.database import Database


class TestVersionClock:
    def test_starts_at_zero(self):
        clock = VersionClock()
        assert clock.global_version == 0
        assert clock.version_of("anything") == 0
        assert clock.snapshot(["a", "b"]) == (0, 0)

    def test_bump_advances_global_and_stamps_keys(self):
        clock = VersionClock()
        version = clock.bump(["r", "s"])
        assert version == 1
        assert clock.global_version == 1
        assert clock.version_of("r") == 1
        assert clock.version_of("s") == 1
        assert clock.version_of("t") == 0

    def test_batch_costs_one_tick(self):
        clock = VersionClock()
        clock.bump(["r", "s", "t"])
        assert clock.global_version == 1

    def test_snapshot_detects_interleaved_writes(self):
        clock = VersionClock()
        clock.bump(["r"])
        before = clock.snapshot(["r", "s"])
        assert clock.snapshot(["r", "s"]) == before  # no write, stable token
        clock.bump(["s"])
        assert clock.snapshot(["r", "s"]) != before
        # a write to an unrelated key leaves the token unchanged
        stable = clock.snapshot(["r"])
        clock.bump(["s"])
        assert clock.snapshot(["r"]) == stable

    def test_versions_are_monotonic(self):
        clock = VersionClock()
        seen = [clock.bump(["r"]) for _ in range(5)]
        assert seen == sorted(seen)
        assert len(set(seen)) == 5


class TestDatabaseVersioning:
    def test_insert_bumps_touched_relation_only(self, fb_schema):
        database = Database(fb_schema)
        base = database.version
        assert database.insert("friend", ("p0", "f1"))
        assert database.version == base + 1
        assert database.relation_version("friend") == database.version
        assert database.relation_version("cafe") == 0

    def test_noop_writes_do_not_bump(self, fb_schema):
        database = Database(fb_schema)
        database.insert("friend", ("p0", "f1"))
        version = database.version
        assert not database.insert("friend", ("p0", "f1"))  # duplicate
        assert not database.delete("friend", ("p9", "f9"))  # missing
        assert database.version == version

    def test_insert_many_is_one_tick(self, fb_schema):
        database = Database(fb_schema)
        base = database.version
        added = database.insert_many("friend", [("p0", f"f{i}") for i in range(10)])
        assert added == 10
        assert database.version == base + 1

    def test_delete_bumps(self, fb_schema):
        database = Database(fb_schema)
        database.insert("friend", ("p0", "f1"))
        version = database.version
        assert database.delete("friend", ("p0", "f1"))
        assert database.version == version + 1

    def test_constraint_version_tracks_its_relation(self, fb_schema):
        database = Database(fb_schema)
        psi1 = AccessConstraint.of("friend", "pid", "fid", 5000, name="psi1")
        psi4 = AccessConstraint.of("cafe", "city", "cid", 50, name="psi4")
        assert database.constraint_version(psi1) == 0
        database.insert("friend", ("p0", "f1"))
        assert database.constraint_version(psi1) == database.version
        assert database.constraint_version(psi4) == 0
        database.insert("cafe", ("c0", "nyc"))
        assert database.constraint_version(psi4) == database.version
