"""``Plan2SQL``: interpret bounded plans (and RA queries) as SQL (Section 7).

The paper integrates bounded evaluation into a DBMS by translating a bounded
plan ``ξ`` into an SQL query ``Q_ξ`` posed over the *index relations* of the
access schema, so that the DBMS executes it while touching only the data the
plan would have fetched.  This module produces that SQL:

* :func:`plan_to_sql` — a bounded plan becomes a ``WITH``-query whose CTEs
  mirror the plan steps, reading only from index tables ``ind_…``;
* :func:`query_to_sql` — an RA query becomes plain SQL over the base tables
  (used for the ``evalDBMS`` baseline on a real SQL engine);
* :func:`index_table_name` / :func:`index_table_ddl` — naming and DDL of the
  index relations ``T_XY = π_XY(D_R)`` with an index on ``X``.

The emitted SQL is standard enough for SQLite, which
:mod:`repro.backends.sqlite` uses to run both sides end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .access import AccessConstraint, AccessSchema
from .errors import PlanError, QueryError
from .plan import (
    BoundedPlan,
    ColumnPredicate,
    ColumnRef,
    ConstOp,
    DifferenceOp,
    FetchOp,
    HashJoinOp,
    IntersectOp,
    ProductOp,
    ProjectOp,
    RenameOp,
    SelectOp,
    UnionOp,
    UnitOp,
)
from .query import (
    Comparison,
    Constant,
    Difference,
    Join,
    Predicate,
    Product,
    Projection,
    Query,
    Relation,
    Rename,
    Selection,
    Union,
)
from .schema import Attribute


# ---------------------------------------------------------------------------
# Identifier / literal helpers
# ---------------------------------------------------------------------------

def quote_identifier(name: str) -> str:
    """Quote an SQL identifier (column or table name)."""
    return '"' + name.replace('"', '""') + '"'


def sql_literal(value: object) -> str:
    """Render a Python value as an SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    return "'" + str(value).replace("'", "''") + "'"


def index_table_name(constraint: AccessConstraint, base_relation: str | None = None) -> str:
    """The name of the index relation of a constraint, e.g. ``ind_friend_pid__fid``."""
    relation = base_relation if base_relation is not None else constraint.relation
    lhs = "_".join(sorted(constraint.lhs)) or "all"
    rhs = "_".join(sorted(constraint.rhs))
    return f"ind_{relation}_{lhs}__{rhs}"


def index_table_ddl(constraint: AccessConstraint, base_relation: str | None = None) -> list[str]:
    """DDL statements creating the index relation and its hash/B-tree index."""
    relation = base_relation if base_relation is not None else constraint.relation
    table = index_table_name(constraint, relation)
    columns = sorted(constraint.lhs | constraint.rhs)
    column_list = ", ".join(quote_identifier(c) for c in columns)
    statements = [
        f"CREATE TABLE {quote_identifier(table)} AS "
        f"SELECT DISTINCT {column_list} FROM {quote_identifier(relation)}"
    ]
    if constraint.lhs:
        key_list = ", ".join(quote_identifier(c) for c in sorted(constraint.lhs))
        statements.append(
            f"CREATE INDEX {quote_identifier('ix_' + table)} "
            f"ON {quote_identifier(table)} ({key_list})"
        )
    return statements


# ---------------------------------------------------------------------------
# Plan → SQL
# ---------------------------------------------------------------------------

@dataclass
class SQLTranslation:
    """The result of translating a bounded plan or RA query to SQL."""

    sql: str
    index_tables: Mapping[str, AccessConstraint] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.sql


def plan_to_sql(plan: BoundedPlan) -> SQLTranslation:
    """Translate a bounded plan into one SQL query over its index relations.

    Every plan step becomes a CTE named ``t<i>``; the final ``SELECT`` reads
    the output step.  Only index tables (``ind_…``) appear in ``FROM``
    clauses, mirroring the paper's example translation for ``Q1``.
    """
    ctes: list[str] = []
    index_tables: dict[str, AccessConstraint] = {}

    for step in plan.steps:
        body = _step_sql(plan, step, index_tables)
        ctes.append(f"t{step.id} AS (\n  {body}\n)")

    sql = "WITH " + ",\n".join(ctes) + f"\nSELECT DISTINCT * FROM t{plan.output}"
    return SQLTranslation(sql=sql, index_tables=index_tables)


def _step_sql(
    plan: BoundedPlan, step, index_tables: dict[str, AccessConstraint]
) -> str:
    op = step.op
    if isinstance(op, ConstOp):
        return f"SELECT {sql_literal(op.value)} AS {quote_identifier(op.column)}"
    if isinstance(op, UnitOp):
        return 'SELECT 1 AS "__unit"'
    if isinstance(op, FetchOp):
        return _fetch_sql(plan, step, op, index_tables)
    if isinstance(op, ProjectOp):
        names = op.output_names if op.output_names is not None else op.columns
        select_list = ", ".join(
            f"{quote_identifier(col)} AS {quote_identifier(name)}"
            for col, name in zip(op.columns, names)
        )
        return f"SELECT DISTINCT {select_list} FROM t{op.inputs[0]}"
    if isinstance(op, SelectOp):
        condition = " AND ".join(_predicate_sql(p) for p in op.predicates) or "1=1"
        return f"SELECT DISTINCT * FROM t{op.inputs[0]} WHERE {condition}"
    if isinstance(op, RenameOp):
        source_columns = plan.step(op.inputs[0]).columns
        select_list = ", ".join(
            f"{quote_identifier(col)} AS {quote_identifier(op.mapping.get(col, col))}"
            for col in source_columns
        )
        return f"SELECT DISTINCT {select_list} FROM t{op.inputs[0]}"
    if isinstance(op, ProductOp):
        left_cols = plan.step(op.inputs[0]).columns
        right_cols = plan.step(op.inputs[1]).columns
        select_list = ", ".join(
            [f"a.{quote_identifier(c)} AS {quote_identifier(c)}" for c in left_cols]
            + [f"b.{quote_identifier(c)} AS {quote_identifier(c)}" for c in right_cols]
        ) or "1"
        return (
            f"SELECT DISTINCT {select_list} FROM t{op.inputs[0]} a CROSS JOIN t{op.inputs[1]} b"
        )
    if isinstance(op, HashJoinOp):
        left_cols = plan.step(op.inputs[0]).columns
        right_cols = plan.step(op.inputs[1]).columns
        select_list = ", ".join(
            [f"a.{quote_identifier(c)} AS {quote_identifier(c)}" for c in left_cols]
            + [f"b.{quote_identifier(c)} AS {quote_identifier(c)}" for c in right_cols]
        ) or "1"
        conditions = [
            f"a.{quote_identifier(l)} = b.{quote_identifier(r)}" for l, r in op.pairs
        ] + [_predicate_sql(p) for p in op.residual]
        on_clause = " AND ".join(conditions) or "1=1"
        return (
            f"SELECT DISTINCT {select_list} FROM t{op.inputs[0]} a "
            f"JOIN t{op.inputs[1]} b ON {on_clause}"
        )
    if isinstance(op, UnionOp):
        return f"SELECT * FROM t{op.inputs[0]} UNION SELECT * FROM t{op.inputs[1]}"
    if isinstance(op, DifferenceOp):
        return f"SELECT * FROM t{op.inputs[0]} EXCEPT SELECT * FROM t{op.inputs[1]}"
    if isinstance(op, IntersectOp):
        return f"SELECT * FROM t{op.inputs[0]} INTERSECT SELECT * FROM t{op.inputs[1]}"
    raise PlanError(f"cannot translate plan operator {type(op).__name__} to SQL")


def _fetch_sql(
    plan: BoundedPlan, step, op: FetchOp, index_tables: dict[str, AccessConstraint]
) -> str:
    base = plan.occurrences.get(op.constraint.relation, op.constraint.relation)
    table = index_table_name(op.constraint, base)
    index_tables[table] = op.constraint
    attributes = sorted(op.constraint.lhs | op.constraint.rhs)
    select_list = ", ".join(
        f"i.{quote_identifier(attr)} AS {quote_identifier(col)}"
        for attr, col in zip(attributes, step.columns)
    )
    if not op.constraint.lhs:
        return f"SELECT DISTINCT {select_list} FROM {quote_identifier(table)} i"
    join_conditions = " AND ".join(
        f"i.{quote_identifier(attr)} = k.{quote_identifier(key)}"
        for attr, key in zip(sorted(op.constraint.lhs), op.key_columns)
    )
    return (
        f"SELECT DISTINCT {select_list} FROM {quote_identifier(table)} i "
        f"JOIN (SELECT DISTINCT "
        + ", ".join(quote_identifier(k) for k in dict.fromkeys(op.key_columns))
        + f" FROM t{op.inputs[0]}) k ON {join_conditions}"
    )


def _predicate_sql(predicate: ColumnPredicate) -> str:
    left = quote_identifier(predicate.left)
    if isinstance(predicate.right, ColumnRef):
        right = quote_identifier(predicate.right.column)
    else:
        right = sql_literal(predicate.right)
    op = "<>" if predicate.op == "!=" else predicate.op
    return f"{left} {op} {right}"


# ---------------------------------------------------------------------------
# RA query → SQL (used by the DBMS baseline)
# ---------------------------------------------------------------------------

def query_to_sql(query: Query) -> str:
    """Translate an RA query into a (nested) SQL query over the base tables."""
    return _query_sql(query)


def _query_sql(node: Query) -> str:
    if isinstance(node, Relation):
        select_list = ", ".join(
            f"{quote_identifier(a)} AS {quote_identifier(f'{node.name}.{a}')}"
            for a in node.attribute_names
        )
        return f"SELECT DISTINCT {select_list} FROM {quote_identifier(node.base)}"
    if isinstance(node, Selection):
        condition = _condition_sql(node.condition)
        return f"SELECT DISTINCT * FROM ({_query_sql(node.child)}) WHERE {condition}"
    if isinstance(node, Projection):
        select_list = ", ".join(quote_identifier(str(a)) for a in node.attributes)
        return f"SELECT DISTINCT {select_list} FROM ({_query_sql(node.child)})"
    if isinstance(node, Product):
        return (
            f"SELECT DISTINCT * FROM ({_query_sql(node.left)}) AS a "
            f"CROSS JOIN ({_query_sql(node.right)}) AS b"
        )
    if isinstance(node, Join):
        condition = _condition_sql(node.condition)
        return (
            f"SELECT DISTINCT * FROM ({_query_sql(node.left)}) AS a "
            f"JOIN ({_query_sql(node.right)}) AS b ON {condition}"
        )
    if isinstance(node, Union):
        return f"{_query_sql(node.left)} UNION {_query_sql(node.right)}"
    if isinstance(node, Difference):
        return f"{_query_sql(node.left)} EXCEPT {_query_sql(node.right)}"
    if isinstance(node, Rename):
        child_attrs = node.child.output_attributes()
        select_list = ", ".join(
            f"{quote_identifier(str(old))} AS {quote_identifier(f'{node.name}.{old.name}')}"
            for old in child_attrs
        )
        return f"SELECT DISTINCT {select_list} FROM ({_query_sql(node.child)})"
    raise QueryError(f"cannot translate query node {type(node).__name__} to SQL")


def _condition_sql(condition: Predicate) -> str:
    parts = []
    for atom in condition.atoms():
        if not isinstance(atom, Comparison):  # pragma: no cover - defensive
            raise QueryError(f"unsupported predicate {atom}")
        parts.append(
            f"{_term_sql(atom.left)} {'<>' if atom.op == '!=' else atom.op} {_term_sql(atom.right)}"
        )
    return " AND ".join(parts) if parts else "1=1"


def _term_sql(term: object) -> str:
    if isinstance(term, Attribute):
        return quote_identifier(str(term))
    if isinstance(term, Constant):
        return sql_literal(term.value)
    return sql_literal(term)  # pragma: no cover - defensive
