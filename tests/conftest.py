"""Shared fixtures: the paper's running example and small synthetic databases."""

from __future__ import annotations

import pytest

from repro.core.access import AccessConstraint, AccessSchema
from repro.core.schema import DatabaseSchema
from repro.storage.database import Database
from repro.storage.index import IndexSet
from repro.workloads import facebook


@pytest.fixture
def fb_schema() -> DatabaseSchema:
    """The friend/dine/cafe schema of Example 1."""
    return facebook.schema()


@pytest.fixture
def fb_access(fb_schema) -> AccessSchema:
    """The access schema A0 = {ψ1, ψ2, ψ3, ψ4} of Example 1."""
    return facebook.access_schema(fb_schema)


@pytest.fixture
def fb_database() -> Database:
    """A small deterministic instance of the Example 1 schema satisfying A0."""
    return facebook.generate(scale=40, seed=7)


@pytest.fixture
def fb_indexes(fb_database, fb_access) -> IndexSet:
    return IndexSet.build(fb_database, fb_access)


@pytest.fixture
def fb_q0():
    """Q0 = Q1 − Q2 as written in Example 1 (not covered)."""
    return facebook.query_q0()


@pytest.fixture
def fb_q0_prime():
    """Q0' = Q1 − Q3, the covered rewriting of Q0."""
    return facebook.query_q0_prime()


@pytest.fixture
def fb_q1():
    return facebook.query_q1()


@pytest.fixture
def fb_q2():
    return facebook.query_q2()


@pytest.fixture
def tiny_schema() -> DatabaseSchema:
    """A two-relation schema used by unit tests that need something minimal."""
    return DatabaseSchema.from_dict(
        {
            "r": ["a", "b", "e"],
            "s": ["f", "g", "h"],
        }
    )


@pytest.fixture
def tiny_access(tiny_schema) -> AccessSchema:
    """The access schema A1 of Example 3."""
    return AccessSchema(
        [
            AccessConstraint.of("r", ["a", "b"], "e", 10),
            AccessConstraint.of("s", "f", ["g", "h"], 2),
            AccessConstraint.of("s", ["g", "h"], ["g", "h"], 1),
        ],
        schema=tiny_schema,
    )


@pytest.fixture
def hot_cold_setup():
    """A two-relation database plus a covered query that reads only ``hot``.

    Used by the cache-invalidation tests: writes to ``cold`` are unrelated
    to the query's dependency set, writes to ``hot`` are dependent.
    Returns ``(database, access_schema, hot_query)``.
    """
    from repro.core.query import Relation, eq

    schema = DatabaseSchema.from_dict({"hot": ["k", "v"], "cold": ["k", "v"]})
    access = AccessSchema(
        [
            AccessConstraint.of("hot", "k", "v", 5, name="hot_kv"),
            AccessConstraint.of("cold", "k", "v", 5, name="cold_kv"),
        ],
        schema=schema,
    )
    database = Database(schema)
    database.insert_many("hot", [("a", 1), ("a", 2), ("b", 3)])
    database.insert_many("cold", [("x", 9)])
    hot = Relation.from_schema(schema, "hot")
    hot_query = hot.select(eq(hot["k"], "a")).project([hot["v"]])
    return database, access, hot_query


@pytest.fixture
def tiny_database(tiny_schema) -> Database:
    database = Database(tiny_schema)
    database.insert_many(
        "r",
        [
            (1, 1, "x"),
            (1, 2, "y"),
            (2, 1, "z"),
            (2, 2, "w"),
            (1, 3, "v"),
        ],
    )
    database.insert_many(
        "s",
        [
            ("u1", 1, 1),
            ("u1", 2, 2),
            ("u2", 1, 2),
            ("u3", 3, 3),
        ],
    )
    return database
