"""Covered queries and algorithm ``CovChk`` (Sections 3 and 4).

An RA query ``Q`` is *covered* by an access schema ``A`` when every max SPC
sub-query ``Qs`` of ``Q`` is

* **fetchable** via ``A`` — every attribute in ``X_Qs`` can be deduced from
  the constant attributes ``X_Qs^C`` by chasing with the constraints of
  ``A``; by Lemma 4 this is equivalent to the FD implication
  ``Σ_{Qs,A} |= X̂_Qs^C → X̂_Qs`` over induced FDs; and
* **indexed** by ``A`` — every relation occurrence ``S`` in ``Qs`` has an
  actualized constraint ``S(X → Y, N)`` with ``S[X] ⊆ cov(Qs, A)`` and
  ``X^S_Qs ⊆ S[X ∪ Y]`` (so the needed attributes of ``S`` come from the
  same tuples, validated via the index).

The check is purely syntactic (``O(|Q|² + |A|)``), independent of any data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from .access import AccessConstraint, AccessSchema
from .errors import QueryError
from .normalize import NormalizedQuery, normalize
from .query import Query, Relation
from .schema import Attribute
from .spc import SPCAnalysis, is_normal_form, max_spc_subqueries


# ---------------------------------------------------------------------------
# cov(Q, A)
# ---------------------------------------------------------------------------

def covered_attribute_tokens(
    analysis: SPCAnalysis, access_schema: AccessSchema
) -> frozenset[str]:
    """``ρ_U(cov(Qs, A))`` — the covered attributes of an SPC sub-query.

    Computed as the FD closure of the unified constant attributes under the
    induced FDs (the chase of Section 3 coincides with this closure; see the
    proof of Lemma 4 in the paper).
    """
    fds = analysis.induced_fds(access_schema)
    return frozenset(fds.closure(analysis.unified_constant))


def covered_attributes(
    analysis: SPCAnalysis, access_schema: AccessSchema
) -> frozenset[Attribute]:
    """``cov(Qs, A)`` restricted to the attributes actually occurring in ``Qs``."""
    tokens = covered_attribute_tokens(analysis, access_schema)
    attributes: set[Attribute] = set()
    for relation in analysis.relations:
        for attribute in relation.output_attributes():
            if analysis.unify(attribute) in tokens:
                attributes.add(attribute)
    return frozenset(attributes)


# ---------------------------------------------------------------------------
# Per-sub-query and whole-query results
# ---------------------------------------------------------------------------

@dataclass
class SubqueryCoverage:
    """Coverage diagnosis of a single max SPC sub-query."""

    subquery: Query
    analysis: SPCAnalysis
    fetchable: bool
    indexed: bool
    covered_tokens: frozenset[str]
    missing_attributes: frozenset[Attribute]
    unindexed_relations: tuple[str, ...]
    index_choices: Mapping[str, AccessConstraint] = field(default_factory=dict)

    @property
    def covered(self) -> bool:
        return self.fetchable and self.indexed

    def explain(self) -> str:
        """A human-readable explanation of why the sub-query is (not) covered."""
        if self.covered:
            return "covered: fetchable and indexed"
        reasons = []
        if not self.fetchable:
            missing = ", ".join(sorted(map(str, self.missing_attributes))) or "(none)"
            reasons.append(f"not fetchable: cannot cover attributes {missing}")
        if not self.indexed:
            relations = ", ".join(self.unindexed_relations)
            reasons.append(f"not indexed: no suitable constraint for relations {relations}")
        return "; ".join(reasons)


@dataclass
class CoverageResult:
    """The outcome of :func:`check_coverage` for a whole RA query.

    Carries the normalized query and the actualized access schema so that
    downstream consumers (plan generation, access minimization) can reuse
    them without repeating the normalization.
    """

    query: Query
    normalized: NormalizedQuery
    access_schema: AccessSchema
    actualized: AccessSchema
    subqueries: list[SubqueryCoverage]
    normal_form: bool

    @property
    def is_fetchable(self) -> bool:
        return self.normal_form and all(s.fetchable for s in self.subqueries)

    @property
    def is_indexed(self) -> bool:
        return self.normal_form and all(s.indexed for s in self.subqueries)

    @property
    def is_covered(self) -> bool:
        return self.normal_form and all(s.covered for s in self.subqueries)

    def explain(self) -> str:
        """A multi-line report of the coverage decision."""
        lines = [f"covered: {self.is_covered}"]
        if not self.normal_form:
            lines.append(
                "query is not in normal form (union/difference below an SPC operator); "
                "treated conservatively as not covered"
            )
        for index, sub in enumerate(self.subqueries, start=1):
            lines.append(f"  max SPC sub-query #{index}: {sub.explain()}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# CovChk
# ---------------------------------------------------------------------------

def _check_subquery(
    subquery: Query, actualized: AccessSchema, analysis: SPCAnalysis | None = None
) -> SubqueryCoverage:
    if analysis is None:
        analysis = SPCAnalysis(subquery)
    fds = analysis.induced_fds(actualized)
    covered_tokens = frozenset(fds.closure(analysis.unified_constant))

    # Fetchable: Σ_{Qs,A} |= X̂_Qs^C → X̂_Qs  (Lemma 4).
    needed_tokens = analysis.unified_needed
    fetchable = needed_tokens <= covered_tokens
    missing = frozenset(
        a for a in analysis.needed_attributes if analysis.unify(a) not in covered_tokens
    )

    # Indexed: each relation occurrence has a constraint whose LHS is covered
    # and whose attributes span the relation's needed attributes.
    unindexed: list[str] = []
    index_choices: dict[str, AccessConstraint] = {}
    for relation in analysis.relations:
        needed_here = analysis.relation_needed_attributes(relation)
        best: AccessConstraint | None = None
        for constraint in actualized.for_relation(relation.name):
            lhs_tokens = analysis.unify_all(
                Attribute(relation.name, a) for a in constraint.lhs
            )
            if not lhs_tokens <= covered_tokens:
                continue
            span = {a.name for a in needed_here}
            if not span <= (constraint.lhs | constraint.rhs):
                continue
            if best is None or constraint.bound < best.bound:
                best = constraint
        if best is None:
            unindexed.append(relation.name)
        else:
            index_choices[relation.name] = best

    return SubqueryCoverage(
        subquery=subquery,
        analysis=analysis,
        fetchable=fetchable,
        indexed=not unindexed,
        covered_tokens=covered_tokens,
        missing_attributes=missing,
        unindexed_relations=tuple(unindexed),
        index_choices=index_choices,
    )


def check_coverage(
    query: Query,
    access_schema: AccessSchema,
    *,
    pre_normalized: NormalizedQuery | None = None,
) -> CoverageResult:
    """Algorithm ``CovChk``: decide whether ``query`` is covered by ``access_schema``.

    The query is first normalized (distinct relation occurrences) and the
    access schema actualized onto the occurrences (Lemma 1).  Pass
    ``pre_normalized`` to skip re-normalization when the caller already has
    a :class:`NormalizedQuery`.
    """
    normalized = pre_normalized if pre_normalized is not None else normalize(query)
    actualized = normalized.actualize(access_schema)
    normal_form = is_normal_form(normalized.query)
    subqueries = [
        _check_subquery(subquery, actualized)
        for subquery in max_spc_subqueries(normalized.query)
    ]
    return CoverageResult(
        query=query,
        normalized=normalized,
        access_schema=access_schema,
        actualized=actualized,
        subqueries=subqueries,
        normal_form=normal_form,
    )


class CoverageChecker:
    """Repeated coverage checks of one query against many access-schema subsets.

    ``CovChk`` spends most of its time normalizing the query and analysing its
    max SPC sub-queries; both depend only on the query.  The access-minimization
    heuristics re-check coverage for many subsets of ``A``, so this helper
    caches the query-side work and re-does only the schema-side part
    (actualization, induced FDs, closure) per call.
    """

    def __init__(self, query: Query):
        self.query = query
        self.normalized = normalize(query)
        self.normal_form = is_normal_form(self.normalized.query)
        self._subqueries = max_spc_subqueries(self.normalized.query)
        self._analyses = [SPCAnalysis(sub) for sub in self._subqueries]

    def check(self, access_schema: AccessSchema) -> CoverageResult:
        """Coverage of the cached query under ``access_schema``."""
        actualized = self.normalized.actualize(access_schema)
        subqueries = [
            _check_subquery(sub, actualized, analysis)
            for sub, analysis in zip(self._subqueries, self._analyses)
        ]
        return CoverageResult(
            query=self.query,
            normalized=self.normalized,
            access_schema=access_schema,
            actualized=actualized,
            subqueries=subqueries,
            normal_form=self.normal_form,
        )

    def is_covered(self, access_schema: AccessSchema) -> bool:
        """Shorthand: run the check and return only the verdict."""
        return self.check(access_schema).is_covered


def is_covered(query: Query, access_schema: AccessSchema) -> bool:
    """Convenience wrapper: ``True`` iff ``query`` is covered by ``access_schema``."""
    return check_coverage(query, access_schema).is_covered


def is_fetchable(query: Query, access_schema: AccessSchema) -> bool:
    """``True`` iff every max SPC sub-query of ``query`` is fetchable via ``access_schema``."""
    return check_coverage(query, access_schema).is_fetchable


def is_indexed(query: Query, access_schema: AccessSchema) -> bool:
    """``True`` iff every max SPC sub-query of ``query`` is indexed by ``access_schema``."""
    return check_coverage(query, access_schema).is_indexed


def uncovered_attributes(query: Query, access_schema: AccessSchema) -> frozenset[Attribute]:
    """The needed attributes that no chase with ``access_schema`` can reach."""
    result = check_coverage(query, access_schema)
    missing: set[Attribute] = set()
    for sub in result.subqueries:
        missing |= sub.missing_attributes
    return frozenset(missing)
