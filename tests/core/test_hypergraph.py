"""Unit tests for directed hypergraphs and the ⟨Q,A⟩-hypergraph (Section 5.2)."""

import pytest

from repro.core.coverage import check_coverage
from repro.core.errors import PlanError
from repro.core.hypergraph import (
    DirectedHypergraph,
    Hyperedge,
    ROOT,
    build_qa_hypergraph,
)
from repro.core.normalize import normalize
from repro.core.schema import Attribute
from repro.workloads import facebook


def edge(head, tail, weight=0):
    return Hyperedge(head=frozenset(head), tail=tail, weight=weight)


@pytest.fixture
def diamond() -> DirectedHypergraph:
    """r -> a, r -> b, {a, b} -> c, c -> d."""
    graph = DirectedHypergraph()
    graph.add_edge(edge({"r"}, "a", 1))
    graph.add_edge(edge({"r"}, "b", 2))
    graph.add_edge(edge({"a", "b"}, "c", 5))
    graph.add_edge(edge({"c"}, "d", 0))
    return graph


class TestHyperedge:
    def test_rejects_empty_head(self):
        with pytest.raises(PlanError):
            Hyperedge(head=frozenset(), tail="x")

    def test_rejects_tail_in_head(self):
        with pytest.raises(PlanError):
            Hyperedge(head=frozenset({"x"}), tail="x")

    def test_size(self):
        assert edge({"a", "b"}, "c").size == 2


class TestReachabilityAndHyperpaths:
    def test_reachable(self, diamond):
        assert diamond.reachable({"r"}) == frozenset({"r", "a", "b", "c", "d"})
        assert diamond.reachable({"a"}) == frozenset({"a"})
        assert diamond.reachable({"a", "b"}) == frozenset({"a", "b", "c", "d"})

    def test_hyperedge_needs_whole_head(self):
        graph = DirectedHypergraph()
        graph.add_edge(edge({"a", "b"}, "c"))
        assert "c" not in graph.reachable({"a"})
        assert "c" in graph.reachable({"a", "b"})

    def test_find_hyperpath_orders_edges(self, diamond):
        path = diamond.find_hyperpath({"r"}, "d")
        assert path is not None
        derived = set(path.source)
        for hyperedge in path.edges:
            assert hyperedge.head <= derived
            derived.add(hyperedge.tail)
        assert path.target == "d"
        assert path.edges[-1].tail == "d"

    def test_find_hyperpath_to_source_is_empty(self, diamond):
        path = diamond.find_hyperpath({"r"}, "r")
        assert path is not None and path.edges == ()

    def test_find_hyperpath_unreachable(self, diamond):
        assert diamond.find_hyperpath({"a"}, "b") is None

    def test_hyperpath_nodes_and_weight(self, diamond):
        path = diamond.find_hyperpath({"r"}, "c")
        assert path.weight == 1 + 2 + 5
        assert {"r", "a", "b", "c"} <= path.nodes()

    def test_shortest_hyperpath_prefers_cheap_route(self):
        graph = DirectedHypergraph()
        graph.add_edge(edge({"r"}, "a", 100))
        graph.add_edge(edge({"r"}, "b", 1))
        graph.add_edge(edge({"a"}, "t", 0))
        graph.add_edge(edge({"b"}, "t", 0))
        path = graph.shortest_hyperpath({"r"}, "t")
        assert path is not None
        assert path.weight == 1

    def test_shortest_hyperpaths_distances(self, diamond):
        dist, _ = diamond.shortest_hyperpaths({"r"})
        assert dist["a"] == 1
        assert dist["b"] == 2
        assert dist["c"] == 8  # 5 + dist(a) + dist(b)
        assert dist["d"] == 8

    def test_derivations_map(self, diamond):
        derivations = diamond.derivations({"r"})
        assert derivations["r"] is None
        assert derivations["c"].tail == "c"

    def test_size_and_len(self, diamond):
        assert len(diamond) == 5
        assert diamond.size == 5  # 1 + 1 + 2 + 1


class TestAcyclicity:
    def test_acyclic_graph(self, diamond):
        assert diamond.is_acyclic()

    def test_cycle_detected(self):
        graph = DirectedHypergraph()
        graph.add_edge(edge({"a"}, "b"))
        graph.add_edge(edge({"b"}, "a"))
        assert not graph.is_acyclic()

    def test_to_simple_graph(self, diamond):
        simple = diamond.to_simple_graph()
        assert simple["a"] == {"c"}
        assert simple["b"] == {"c"}
        assert simple["c"] == {"d"}


class TestQAHypergraph:
    def test_q0_prime_hypergraph_reaches_all_needed(self, fb_q0_prime, fb_access):
        """Lemma 7 / Example 7: every attribute of X_Q is reachable from r."""
        coverage = check_coverage(fb_q0_prime, fb_access)
        hypergraph = build_qa_hypergraph(
            coverage.normalized.query,
            coverage.actualized,
            analyses=[s.analysis for s in coverage.subqueries],
        )
        for sub in coverage.subqueries:
            for attribute in sub.analysis.needed_attributes:
                assert hypergraph.hyperpath_to(attribute) is not None

    def test_uncovered_attribute_unreachable(self, fb_q2, fb_access):
        coverage = check_coverage(fb_q2, fb_access)
        hypergraph = build_qa_hypergraph(
            coverage.normalized.query,
            coverage.actualized,
            analyses=[s.analysis for s in coverage.subqueries],
        )
        analysis = coverage.subqueries[0].analysis
        cid = next(a for a in analysis.needed_attributes if a.name == "cid")
        assert hypergraph.hyperpath_to(cid) is None

    def test_weighted_hypergraph_edge_weights(self, fb_q1, fb_access):
        coverage = check_coverage(fb_q1, fb_access)
        hypergraph = build_qa_hypergraph(
            coverage.normalized.query,
            coverage.actualized,
            weighted=True,
            analyses=[s.analysis for s in coverage.subqueries],
        )
        weights = {e.weight for e in hypergraph.graph.edges if e.constraint is not None}
        assert 5000 in weights  # ψ1
        assert 31 in weights  # ψ2

    def test_example1_hypergraph_is_acyclic(self, fb_q0_prime, fb_access):
        """Section 6.1 notes that (Q0', A0) is an acyclic case."""
        coverage = check_coverage(fb_q0_prime, fb_access)
        hypergraph = build_qa_hypergraph(
            coverage.normalized.query,
            coverage.actualized,
            analyses=[s.analysis for s in coverage.subqueries],
        )
        assert hypergraph.is_acyclic()

    def test_analysis_for_unknown_relation_raises(self, fb_q1, fb_access):
        coverage = check_coverage(fb_q1, fb_access)
        hypergraph = build_qa_hypergraph(
            coverage.normalized.query,
            coverage.actualized,
            analyses=[s.analysis for s in coverage.subqueries],
        )
        with pytest.raises(PlanError):
            hypergraph.analysis_for_relation("nonexistent")
        with pytest.raises(PlanError):
            hypergraph.node_for(Attribute("nonexistent", "x"))

    def test_constant_edges_from_root(self, fb_q1, fb_access):
        coverage = check_coverage(fb_q1, fb_access)
        hypergraph = build_qa_hypergraph(
            coverage.normalized.query,
            coverage.actualized,
            analyses=[s.analysis for s in coverage.subqueries],
        )
        constant_edges = [
            e for e in hypergraph.graph.edges if e.head == frozenset({ROOT}) and e.constraint is None
        ]
        assert constant_edges  # p0, may, 2015, nyc
        assert {e.constant for e in constant_edges} >= {"p0", "may", 2015, "nyc"}
