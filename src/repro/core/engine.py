"""The end-to-end bounded evaluation framework of Section 7 (Fig. 4).

:class:`BoundedEngine` wires together every component of the paper on top of
the in-memory substrate:

* **C1** — discover an access schema (optional) and build / maintain its
  constraint indexes ``I_A``;
* **C2** — check coverage of incoming queries (``CovChk``);
* **C3** — pick a minimal covering subset ``A_m`` (``minA`` and friends);
* **C4** — generate a canonical bounded plan (``QPlan``);
* **C5** — optionally translate the plan to SQL (``Plan2SQL``);
* **C6** — execute the plan, accessing only the bounded fraction ``D_Q``;
  queries that are not covered (and cannot be rewritten into a covered
  equivalent) fall back to conventional evaluation.

On top of the paper's pipeline the engine maintains a **plan cache**: C2–C4
(plus the peephole optimization of :mod:`repro.core.optimizer`) depend only on
the query syntax and the access schema, so their output is cached under the
query's canonical fingerprint (:mod:`repro.core.fingerprint`).  Repeated
queries — the hot path of any serving workload — skip straight to C6 against
an already-compiled plan.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

from ..evaluator.baseline import evaluate_conventional
from ..evaluator.executor import ExecutionResult, PlanExecutor
from ..storage.counters import AccessCounter
from ..storage.database import Database
from ..storage.index import IndexSet
from .access import AccessSchema
from .coverage import CoverageResult, check_coverage
from .errors import NotCoveredError
from .fingerprint import query_fingerprint
from .minimize import MinimizationResult, minimize_auto
from .optimizer import optimize_plan
from .plan import BoundedPlan
from .plan2sql import SQLTranslation, plan_to_sql
from .planner import generate_plan
from .query import Query
from .rewrite import find_covered_rewrite


@dataclass
class EngineResult:
    """The outcome of :meth:`BoundedEngine.execute`.

    ``strategy`` is ``"bounded"`` when a bounded plan was executed (possibly
    for a rewritten equivalent of the input query), and ``"conventional"``
    when the engine fell back to full evaluation.  ``cached`` reports whether
    the coverage/minimization/planning work was served from the plan cache.
    """

    rows: frozenset[tuple]
    columns: tuple[str, ...]
    strategy: str
    elapsed: float
    counter: AccessCounter
    plan: BoundedPlan | None = None
    coverage: CoverageResult | None = None
    minimization: MinimizationResult | None = None
    rewrite: str = "identity"
    cached: bool = False

    def access_ratio(self, database_size: int) -> float:
        """``P(D_Q)`` for this execution."""
        return self.counter.ratio(database_size)


@dataclass
class PreparedQuery:
    """Everything C2–C4 produce for one query under one engine configuration.

    For covered (or rewritable) queries ``plan`` holds the canonical bounded
    plan and ``executable`` the optimized plan actually run; for uncovered
    queries both are ``None`` and only ``coverage`` is kept, so the fallback
    decision itself is also cached.
    """

    coverage: CoverageResult
    plan: BoundedPlan | None = None
    executable: BoundedPlan | None = None
    minimization: MinimizationResult | None = None
    rewrite: str = "identity"
    target: Query | None = None

    @property
    def covered(self) -> bool:
        return self.plan is not None


class PlanCache:
    """An LRU cache from query fingerprints to :class:`PreparedQuery` entries.

    A ``capacity`` of zero (or less) disables caching: every lookup misses and
    nothing is stored.  The cache tracks hit/miss/eviction/invalidation
    counts for :meth:`BoundedEngine.cache_stats`-style reporting.
    """

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, PreparedQuery] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> PreparedQuery | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, entry: PreparedQuery) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (called when the underlying data changes)."""
        if self._entries:
            self._entries.clear()
        self.invalidations += 1

    def stats(self) -> dict[str, int | float]:
        requests = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / requests) if requests else 0.0,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class BoundedEngine:
    """Bounded evaluation of RA queries over an in-memory database."""

    def __init__(
        self,
        database: Database,
        access_schema: AccessSchema,
        *,
        build_indexes: bool = True,
        check_constraints: bool = True,
        plan_cache_size: int = 128,
        optimize: bool = True,
    ):
        self.database = database
        self.access_schema = access_schema
        self.index_build_seconds = 0.0
        if build_indexes:
            started = time.perf_counter()
            self.indexes = IndexSet.build(
                database, access_schema, check=check_constraints
            )
            self.index_build_seconds = time.perf_counter() - started
        else:
            self.indexes = IndexSet()
        self._executor = PlanExecutor(database, self.indexes)
        self.plan_cache = PlanCache(plan_cache_size)
        self.optimize = optimize

    # -- C2: coverage -----------------------------------------------------------
    def check(self, query: Query) -> CoverageResult:
        """Run ``CovChk`` on ``query`` against the engine's access schema."""
        return check_coverage(query, self.access_schema)

    def is_covered(self, query: Query) -> bool:
        return self.check(query).is_covered

    # -- C3 + C4: minimization and planning -----------------------------------------
    def plan(
        self, query: Query, *, minimize: bool = True
    ) -> tuple[BoundedPlan, CoverageResult, MinimizationResult | None]:
        """Generate a bounded plan for a covered query.

        When ``minimize`` is true, the plan is generated against the minimized
        subset ``A_m`` returned by the access-minimization heuristics.
        Raises :class:`NotCoveredError` if the query is not covered.
        """
        coverage = self.check(query)
        if not coverage.is_covered:
            raise NotCoveredError(coverage.explain())
        minimization: MinimizationResult | None = None
        if minimize:
            minimization = minimize_auto(query, self.access_schema)
            coverage = check_coverage(query, minimization.selected)
        plan = generate_plan(coverage)
        return plan, coverage, minimization

    # -- C5: SQL translation ----------------------------------------------------------
    def to_sql(self, query: Query, *, minimize: bool = True) -> SQLTranslation:
        """The ``Plan2SQL`` translation of the bounded plan for ``query``."""
        plan, _, _ = self.plan(query, minimize=minimize)
        return plan_to_sql(plan)

    # -- query preparation (C2-C4, cached) --------------------------------------------
    def _cache_key(self, query: Query, minimize: bool, allow_rewrite: bool) -> Hashable:
        return (query_fingerprint(query), minimize, allow_rewrite)

    def _prepare(self, query: Query, *, minimize: bool, allow_rewrite: bool) -> PreparedQuery:
        """Run coverage, rewriting, minimization, planning and optimization."""
        target = query
        rewrite_name = "identity"
        coverage = self.check(query)
        if not coverage.is_covered and allow_rewrite:
            verdict = find_covered_rewrite(query, self.access_schema)
            if verdict.bounded and verdict.witness is not None:
                target = verdict.witness
                rewrite_name = verdict.rewrite
                coverage = self.check(target)

        if not coverage.is_covered:
            return PreparedQuery(coverage=coverage)

        minimization: MinimizationResult | None = None
        effective_coverage = coverage
        if minimize:
            minimization = minimize_auto(target, self.access_schema)
            effective_coverage = check_coverage(target, minimization.selected)
        plan = generate_plan(effective_coverage)
        executable = optimize_plan(plan) if self.optimize else plan
        return PreparedQuery(
            coverage=effective_coverage,
            plan=plan,
            executable=executable,
            minimization=minimization,
            rewrite=rewrite_name,
            target=target,
        )

    def prepare(
        self, query: Query, *, minimize: bool = True, allow_rewrite: bool = True
    ) -> tuple[PreparedQuery, bool]:
        """The cached C2-C4 pipeline; returns ``(prepared, was_cache_hit)``."""
        key = self._cache_key(query, minimize, allow_rewrite)
        entry = self.plan_cache.get(key)
        if entry is not None:
            return entry, True
        entry = self._prepare(query, minimize=minimize, allow_rewrite=allow_rewrite)
        self.plan_cache.put(key, entry)
        return entry, False

    # -- C6: execution -------------------------------------------------------------------
    def execute(
        self,
        query: Query,
        *,
        minimize: bool = True,
        allow_rewrite: bool = True,
        fallback: bool = True,
    ) -> EngineResult:
        """Answer ``query``: bounded plan when possible, otherwise fall back.

        With ``allow_rewrite`` the engine also tries the A-equivalent rewrites
        of :mod:`repro.core.rewrite` (difference guarding, branch pruning)
        before giving up on bounded evaluation.  Repeated queries hit the plan
        cache and skip coverage checking, minimization and planning entirely.
        """
        prepared, cached = self.prepare(
            query, minimize=minimize, allow_rewrite=allow_rewrite
        )

        if prepared.covered:
            execution: ExecutionResult = self._executor.execute(prepared.executable)
            return EngineResult(
                rows=execution.rows,
                columns=execution.columns,
                strategy="bounded",
                elapsed=execution.elapsed,
                counter=execution.counter,
                plan=prepared.plan,
                coverage=prepared.coverage,
                minimization=prepared.minimization,
                rewrite=prepared.rewrite,
                cached=cached,
            )

        if not fallback:
            raise NotCoveredError(prepared.coverage.explain())

        baseline = evaluate_conventional(query, self.database, self.access_schema, self.indexes)
        return EngineResult(
            rows=baseline.rows,
            columns=baseline.result.columns,
            strategy="conventional",
            elapsed=baseline.elapsed,
            counter=baseline.counter,
            coverage=prepared.coverage,
            cached=cached,
        )

    # -- C1: maintenance -------------------------------------------------------------------
    # Updates clear the plan cache wholesale.  Today every cached artifact is
    # data-independent, so this is purely conservative — it future-proofs
    # against statistics-driven planning and keeps the invalidation contract
    # simple.  Constraint-granular invalidation (via plan.constraints_used())
    # is the planned refinement; see ROADMAP "Open items".
    def apply_insert(self, relation: str, row: Sequence | Mapping[str, object]) -> None:
        """Insert a tuple and incrementally maintain the indexes (Proposition 12)."""
        instance = self.database.relation(relation)
        prepared = instance._prepare(row)
        if instance.insert(prepared):
            self.indexes.apply_insert(relation, prepared)
            self.plan_cache.invalidate()

    def apply_delete(self, relation: str, row: Sequence | Mapping[str, object]) -> None:
        """Delete a tuple and incrementally maintain the indexes (Proposition 12)."""
        instance = self.database.relation(relation)
        prepared = instance._prepare(row)
        if instance.delete(prepared):
            self.indexes.apply_delete(relation, prepared, instance)
            self.plan_cache.invalidate()

    # -- reporting ----------------------------------------------------------------------------
    def index_footprint(self) -> dict[str, object]:
        """Size statistics of the materialized indexes (Exp-1(IV))."""
        database_size = self.database.size
        total = self.indexes.total_size
        return {
            "database_tuples": database_size,
            "index_tuples": total,
            "index_fraction": (total / database_size) if database_size else 0.0,
            "build_seconds": self.index_build_seconds,
            "constraints": len(self.access_schema),
        }

    def cache_stats(self) -> dict[str, int | float]:
        """Plan-cache hit/miss statistics, in the style of :meth:`index_footprint`."""
        return self.plan_cache.stats()
