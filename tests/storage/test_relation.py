"""Unit tests for relation instances."""

import pytest

from repro.core.errors import StorageError
from repro.core.schema import RelationSchema
from repro.storage.relation import RelationInstance


@pytest.fixture
def cafe_schema():
    return RelationSchema("cafe", ["cid", "city"])


@pytest.fixture
def cafe(cafe_schema):
    return RelationInstance(cafe_schema, [("c1", "nyc"), ("c2", "boston")])


class TestInsertDelete:
    def test_insert_positional_and_mapping(self, cafe):
        assert cafe.insert(("c3", "austin"))
        assert cafe.insert({"cid": "c4", "city": "denver"})
        assert len(cafe) == 4

    def test_duplicate_insert_is_noop(self, cafe):
        assert not cafe.insert(("c1", "nyc"))
        assert len(cafe) == 2

    def test_insert_wrong_arity(self, cafe):
        with pytest.raises(StorageError, match="arity"):
            cafe.insert(("c5",))

    def test_insert_missing_attribute(self, cafe):
        with pytest.raises(StorageError, match="missing attributes"):
            cafe.insert({"cid": "c5"})

    def test_insert_many_counts_new_rows(self, cafe):
        added = cafe.insert_many([("c1", "nyc"), ("c9", "miami")])
        assert added == 1

    def test_delete(self, cafe):
        assert cafe.delete(("c1", "nyc"))
        assert not cafe.delete(("c1", "nyc"))
        assert len(cafe) == 1
        assert ("c1", "nyc") not in cafe

    def test_contains(self, cafe):
        assert ("c1", "nyc") in cafe
        assert {"cid": "c2", "city": "boston"} in cafe
        assert ("c2", "nyc") not in cafe


class TestAccessors:
    def test_rows_and_iteration(self, cafe):
        assert set(cafe.rows) == {("c1", "nyc"), ("c2", "boston")}
        assert sorted(cafe) == sorted(cafe.rows)

    def test_to_dicts(self, cafe):
        dicts = cafe.to_dicts()
        assert {"cid": "c1", "city": "nyc"} in dicts
        assert len(dicts) == 2

    def test_project(self, cafe):
        assert cafe.project(["city"]) == {("nyc",), ("boston",)}
        assert cafe.distinct_count(["city"]) == 2

    def test_group_max_multiplicity(self):
        schema = RelationSchema("dine", ["pid", "cid"])
        relation = RelationInstance(
            schema, [("p0", "c1"), ("p0", "c2"), ("p0", "c3"), ("p1", "c1")]
        )
        assert relation.group_max_multiplicity(["pid"], ["cid"]) == 3
        assert relation.group_max_multiplicity(["cid"], ["pid"]) == 2
        assert relation.group_max_multiplicity(["pid", "cid"], ["cid"]) == 1

    def test_group_max_multiplicity_empty_relation(self, cafe_schema):
        empty = RelationInstance(cafe_schema)
        assert empty.group_max_multiplicity(["cid"], ["city"]) == 0


class TestCSVRoundTrip:
    def test_round_trip(self, cafe, cafe_schema, tmp_path):
        path = tmp_path / "cafe.csv"
        cafe.to_csv(path)
        loaded = RelationInstance.from_csv(cafe_schema, path)
        # CSV stringifies values; compare on string forms
        assert {tuple(map(str, row)) for row in cafe.rows} == set(loaded.rows)

    def test_header_mismatch_rejected(self, cafe, tmp_path):
        path = tmp_path / "cafe.csv"
        cafe.to_csv(path)
        other_schema = RelationSchema("cafe", ["a", "b"])
        with pytest.raises(StorageError, match="header"):
            RelationInstance.from_csv(other_schema, path)

    def test_empty_file(self, cafe_schema, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        loaded = RelationInstance.from_csv(cafe_schema, path)
        assert len(loaded) == 0
