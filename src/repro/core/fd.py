"""Functional dependencies and their implication analysis.

Algorithm ``CovChk`` (Section 4) reduces the *fetchable* check to FD
implication over *induced FDs* (Lemma 4).  This module provides a small,
self-contained FD engine: the classical linear-time closure computation
(Beeri–Bernstein counting algorithm) and the implication test built on it.

Attributes here are plain hashable tokens (the library uses the unified
attribute names produced by :mod:`repro.core.spc`), so the module is usable
for ordinary FD reasoning as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Sequence

Token = Hashable


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``lhs -> rhs`` over attribute tokens.

    An empty ``lhs`` is allowed and means the dependency fires unconditionally
    (it corresponds to access constraints of the form ``R(∅ -> X, N)``).
    """

    lhs: frozenset[Token]
    rhs: frozenset[Token]

    @classmethod
    def of(cls, lhs: Iterable[Token] | str, rhs: Iterable[Token] | str) -> "FunctionalDependency":
        """Build an FD; a bare string is treated as a single attribute token."""
        if isinstance(lhs, str):
            lhs = [lhs]
        if isinstance(rhs, str):
            rhs = [rhs]
        return cls(frozenset(lhs), frozenset(rhs))

    @property
    def size(self) -> int:
        return len(self.lhs) + len(self.rhs)

    def __str__(self) -> str:
        lhs = ",".join(sorted(map(str, self.lhs))) or "∅"
        rhs = ",".join(sorted(map(str, self.rhs)))
        return f"{lhs} -> {rhs}"


class FDSet:
    """A set of functional dependencies supporting linear-time closure queries."""

    def __init__(self, dependencies: Iterable[FunctionalDependency] = ()):
        self._dependencies: list[FunctionalDependency] = list(dependencies)

    def add(self, dependency: FunctionalDependency) -> None:
        """Append a dependency to the set (no implication check)."""
        self._dependencies.append(dependency)

    def __iter__(self) -> Iterator[FunctionalDependency]:
        return iter(self._dependencies)

    def __len__(self) -> int:
        return len(self._dependencies)

    def __contains__(self, dependency: FunctionalDependency) -> bool:
        return dependency in self._dependencies

    @property
    def size(self) -> int:
        """Total length of the dependencies (for complexity accounting)."""
        return sum(dependency.size for dependency in self._dependencies)

    def attributes(self) -> set[Token]:
        """All attribute tokens mentioned by some dependency."""
        tokens: set[Token] = set()
        for dependency in self._dependencies:
            tokens |= dependency.lhs
            tokens |= dependency.rhs
        return tokens

    # -- closure and implication ------------------------------------------------
    def closure(self, attributes: Iterable[Token]) -> frozenset[Token]:
        """The attribute closure of ``attributes`` under this FD set.

        Implements the counting algorithm of Beeri and Bernstein: each
        dependency keeps a counter of left-hand-side attributes not yet in the
        closure; when the counter reaches zero its right-hand side is added.
        Runs in time linear in the total size of the FD set.
        """
        closure: set[Token] = set(attributes)
        counters: list[int] = []
        by_attribute: dict[Token, list[int]] = {}
        queue: list[Token] = list(closure)

        for index, dependency in enumerate(self._dependencies):
            # Counters start at the full LHS size; every LHS attribute that
            # enters the closure is drained exactly once through the queue.
            counters.append(len(dependency.lhs))
            for token in dependency.lhs:
                by_attribute.setdefault(token, []).append(index)
            if not dependency.lhs:
                for token in dependency.rhs:
                    if token not in closure:
                        closure.add(token)
                        queue.append(token)

        while queue:
            token = queue.pop()
            for index in by_attribute.get(token, ()):
                counters[index] -= 1
                if counters[index] == 0:
                    for added in self._dependencies[index].rhs:
                        if added not in closure:
                            closure.add(added)
                            queue.append(added)
        return frozenset(closure)

    def implies(self, lhs: Iterable[Token], rhs: Iterable[Token]) -> bool:
        """Whether ``lhs -> rhs`` is implied by this FD set (``Σ |= lhs → rhs``)."""
        return set(rhs) <= self.closure(lhs)

    def implies_fd(self, dependency: FunctionalDependency) -> bool:
        """:meth:`implies` over a packaged :class:`FunctionalDependency`."""
        return self.implies(dependency.lhs, dependency.rhs)

    # -- convenience -------------------------------------------------------------
    def minimal_cover_step(self) -> "FDSet":
        """Remove dependencies implied by the others (one simplification pass).

        This is not a full canonical cover computation; it is the redundancy
        elimination used by tests and by the discovery module to keep mined
        constraint sets small.
        """
        kept: list[FunctionalDependency] = list(self._dependencies)
        changed = True
        while changed:
            changed = False
            for index, dependency in enumerate(kept):
                others = FDSet(kept[:index] + kept[index + 1 :])
                if others.implies_fd(dependency):
                    kept.pop(index)
                    changed = True
                    break
        return FDSet(kept)


def closure(
    attributes: Iterable[Token], dependencies: Sequence[FunctionalDependency]
) -> frozenset[Token]:
    """Module-level convenience wrapper around :meth:`FDSet.closure`."""
    return FDSet(dependencies).closure(attributes)


def implies(
    dependencies: Sequence[FunctionalDependency],
    lhs: Iterable[Token],
    rhs: Iterable[Token],
) -> bool:
    """Module-level convenience wrapper around :meth:`FDSet.implies`."""
    return FDSet(dependencies).implies(lhs, rhs)
