"""JSON (de)serialization of schemas and access schemas.

Used by the command-line interface and handy for persisting discovered access
schemas next to the data they were mined from.  The formats are deliberately
plain:

* database schema — ``{"relation": ["attr1", "attr2", ...], ...}``
* access schema — ``[{"relation": ..., "lhs": [...], "rhs": [...],
  "bound": N, "name": optional}, ...]``
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .access import AccessConstraint, AccessSchema
from .errors import SchemaError
from .schema import DatabaseSchema


# ---------------------------------------------------------------------------
# Database schemas
# ---------------------------------------------------------------------------

def schema_to_dict(schema: DatabaseSchema) -> dict[str, list[str]]:
    """JSON-ready ``{relation: [attributes]}`` mapping for ``schema``."""
    return {relation.name: list(relation.attributes) for relation in schema}


def schema_from_dict(data: dict[str, list[str]]) -> DatabaseSchema:
    """Rebuild a :class:`DatabaseSchema` from :func:`schema_to_dict` output."""
    if not isinstance(data, dict):
        raise SchemaError("database schema JSON must be an object of relation -> attributes")
    return DatabaseSchema.from_dict(data)


def dump_schema(schema: DatabaseSchema, path: str | Path) -> None:
    """Write ``schema`` to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(schema_to_dict(schema), indent=2) + "\n")


def load_schema(path: str | Path) -> DatabaseSchema:
    """Read a schema previously written by :func:`dump_schema`."""
    return schema_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Access schemas
# ---------------------------------------------------------------------------

def constraint_to_dict(constraint: AccessConstraint) -> dict:
    """JSON-ready object for one access constraint (sorted lhs/rhs)."""
    data = {
        "relation": constraint.relation,
        "lhs": sorted(constraint.lhs),
        "rhs": sorted(constraint.rhs),
        "bound": constraint.bound,
    }
    if constraint.name:
        data["name"] = constraint.name
    return data


def constraint_from_dict(data: dict) -> AccessConstraint:
    """Rebuild an :class:`AccessConstraint`; missing fields raise SchemaError."""
    try:
        return AccessConstraint.of(
            data["relation"],
            data.get("lhs", []),
            data["rhs"],
            int(data["bound"]),
            name=data.get("name"),
        )
    except KeyError as missing:
        raise SchemaError(f"access constraint JSON missing field {missing}") from None


def access_schema_to_list(access_schema: AccessSchema | Iterable[AccessConstraint]) -> list[dict]:
    """JSON-ready list of constraint objects, in schema order."""
    return [constraint_to_dict(constraint) for constraint in access_schema]


def access_schema_from_list(
    data: list[dict], schema: DatabaseSchema | None = None
) -> AccessSchema:
    """Rebuild an :class:`AccessSchema`, optionally validating against ``schema``."""
    if not isinstance(data, list):
        raise SchemaError("access schema JSON must be a list of constraint objects")
    return AccessSchema((constraint_from_dict(item) for item in data), schema=schema)


def dump_access_schema(access_schema: AccessSchema, path: str | Path) -> None:
    """Write the access schema to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(access_schema_to_list(access_schema), indent=2) + "\n")


def load_access_schema(path: str | Path, schema: DatabaseSchema | None = None) -> AccessSchema:
    """Read an access schema previously written by :func:`dump_access_schema`."""
    return access_schema_from_list(json.loads(Path(path).read_text()), schema=schema)
