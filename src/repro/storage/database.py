"""In-memory databases: collections of relation instances over a schema."""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from ..core.access import AccessConstraint, AccessSchema
from ..core.errors import StorageError
from ..core.schema import DatabaseSchema, RelationSchema
from .counters import VersionClock
from .relation import RelationInstance, Row


class Database:
    """An instance ``D`` of a database schema ``R``.

    The database carries a :class:`~repro.storage.counters.VersionClock`:
    every mutation that actually changes data advances a global version and
    stamps the touched relation, so caches (and the serving engine's result
    cache in particular) can validate entries against
    ``(relation versions at fill time)`` instead of being cleared wholesale.

    **Write-path contract**: mutations must go through this class's
    ``insert``/``delete``/``insert_many``, the engine's maintenance methods,
    or :func:`repro.discovery.maintenance.apply_updates` — each of which
    settles the clock.  Writing directly to a
    :class:`~repro.storage.relation.RelationInstance` bypasses both the
    constraint indexes *and* the clock, leaving stale indexes (as before)
    and, now, stale cached results with no invalidation signal.
    """

    def __init__(self, schema: DatabaseSchema):
        self.schema = schema
        self.clock = VersionClock()
        self._relations: dict[str, RelationInstance] = {
            relation.name: RelationInstance(relation) for relation in schema
        }

    # -- access ----------------------------------------------------------------
    def relation(self, name: str) -> RelationInstance:
        try:
            return self._relations[name]
        except KeyError:
            raise StorageError(f"database has no relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationInstance]:
        return iter(self._relations.values())

    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    @property
    def size(self) -> int:
        """``|D|`` — the total number of tuples in the database."""
        return sum(len(relation) for relation in self._relations.values())

    @property
    def cell_size(self) -> int:
        """Total number of value cells (tuples × arity), a byte-footprint proxy."""
        return sum(
            len(relation) * len(relation.schema) for relation in self._relations.values()
        )

    def __len__(self) -> int:
        return self.size

    # -- versioning ----------------------------------------------------------------
    @property
    def version(self) -> int:
        """The global data version: bumped once per data-changing write (or batch)."""
        return self.clock.global_version

    def relation_version(self, relation: str) -> int:
        """The global version at which ``relation`` last changed (0 if never)."""
        return self.clock.version_of(relation)

    def constraint_version(self, constraint: AccessConstraint) -> int:
        """The data version of ``constraint``: when its fetch results last changed.

        A write to a relation can change the index contents of *every*
        constraint on that relation (and of no other), so per-constraint
        versions share the counter of the constraint's relation.
        """
        return self.clock.version_of(constraint.relation)

    # -- mutation ----------------------------------------------------------------
    def insert(self, relation: str, row: Sequence | Mapping[str, object]) -> bool:
        inserted = self.relation(relation).insert(row)
        if inserted:
            self.clock.bump((relation,))
        return inserted

    def insert_many(self, relation: str, rows: Iterable[Sequence | Mapping[str, object]]) -> int:
        added = self.relation(relation).insert_many(rows)
        if added:
            self.clock.bump((relation,))
        return added

    def delete(self, relation: str, row: Sequence | Mapping[str, object]) -> bool:
        deleted = self.relation(relation).delete(row)
        if deleted:
            self.clock.bump((relation,))
        return deleted

    # -- constraints ----------------------------------------------------------------
    def satisfies(self, constraint: AccessConstraint) -> bool:
        """Whether this database satisfies the cardinality part of ``constraint``."""
        relation = self.relation(constraint.relation)
        observed = relation.group_max_multiplicity(
            sorted(constraint.lhs), sorted(constraint.rhs)
        )
        return observed <= constraint.bound

    def satisfies_schema(self, access_schema: AccessSchema) -> bool:
        """``D |= A``: every constraint's cardinality bound holds."""
        return all(self.satisfies(constraint) for constraint in access_schema)

    def violations(self, access_schema: AccessSchema) -> list[AccessConstraint]:
        """The constraints of ``access_schema`` that the data does not satisfy."""
        return [c for c in access_schema if not self.satisfies(c)]

    # -- scaling (for the |D|-varying experiments) ------------------------------------
    def scaled(self, factor: float, seed: int = 0) -> "Database":
        """A database with roughly ``factor`` of the tuples of each relation.

        Sampling is deterministic given ``seed``.  Scaling down preserves the
        cardinality constraints (dropping tuples can only lower group sizes),
        which is what the paper's ``|D|``-varying experiments rely on.
        """
        if not 0.0 < factor <= 1.0:
            raise StorageError(f"scale factor must be in (0, 1], got {factor}")
        rng = random.Random(seed)
        scaled = Database(self.schema)
        for name, relation in self._relations.items():
            rows = list(relation)
            if factor < 1.0:
                keep = max(1, int(len(rows) * factor))
                rows = rng.sample(rows, keep) if rows else []
            scaled.insert_many(name, rows)
        return scaled

    # -- persistence ---------------------------------------------------------------------
    def to_directory(self, path: str | Path) -> None:
        """Write each relation to ``<path>/<relation>.csv``."""
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        for name, relation in self._relations.items():
            relation.to_csv(directory / f"{name}.csv")

    @classmethod
    def from_directory(cls, schema: DatabaseSchema, path: str | Path) -> "Database":
        """Load a database previously written with :meth:`to_directory`."""
        directory = Path(path)
        database = cls(schema)
        for relation_schema in schema:
            csv_path = directory / f"{relation_schema.name}.csv"
            if not csv_path.exists():
                continue
            loaded = RelationInstance.from_csv(relation_schema, csv_path)
            database._relations[relation_schema.name] = loaded
        return database

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        counts = ", ".join(f"{name}={len(rel)}" for name, rel in self._relations.items())
        return f"Database({counts})"
