"""Access-constraint discovery and incremental maintenance (Section 7, C1)."""

from .maintenance import MaintenanceReport, Update, apply_updates, maintain_constraints
from .mining import DiscoveryConfig, discover_access_schema, discover_constraints
from .workload_cover import WorkloadCoverResult, cover_workload, cover_workload_from_data

__all__ = [
    "DiscoveryConfig",
    "MaintenanceReport",
    "Update",
    "WorkloadCoverResult",
    "apply_updates",
    "cover_workload",
    "cover_workload_from_data",
    "discover_access_schema",
    "discover_constraints",
    "maintain_constraints",
]
