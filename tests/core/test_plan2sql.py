"""Unit tests for Plan2SQL and the RA-to-SQL translation (Section 7)."""

import sqlite3

import pytest

from repro.core.access import AccessConstraint
from repro.core.plan2sql import (
    index_table_ddl,
    index_table_name,
    plan_to_sql,
    query_to_sql,
    quote_identifier,
    sql_literal,
)
from repro.core.planner import plan_query
from repro.core.query import Relation, eq
from repro.evaluator.algebra import evaluate
from repro.workloads import facebook


class TestSQLHelpers:
    def test_quote_identifier_escapes(self):
        assert quote_identifier("dine.cid") == '"dine.cid"'
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_sql_literal_types(self):
        assert sql_literal(None) == "NULL"
        assert sql_literal(True) == "1"
        assert sql_literal(5) == "5"
        assert sql_literal(2.5) == "2.5"
        assert sql_literal("o'hare") == "'o''hare'"

    def test_index_table_name_deterministic(self):
        psi2 = AccessConstraint.of("dine", ["pid", "year", "month"], "cid", 31)
        assert index_table_name(psi2) == "ind_dine_month_pid_year__cid"
        assert index_table_name(psi2, "dine_base") == "ind_dine_base_month_pid_year__cid"

    def test_index_table_ddl_creates_table_and_index(self):
        psi1 = AccessConstraint.of("friend", "pid", "fid", 5000)
        statements = index_table_ddl(psi1)
        assert len(statements) == 2
        assert statements[0].startswith("CREATE TABLE")
        assert "SELECT DISTINCT" in statements[0]
        assert statements[1].startswith("CREATE INDEX")

    def test_index_table_ddl_empty_lhs_has_no_index(self):
        months = AccessConstraint.of("dine", (), "month", 12)
        statements = index_table_ddl(months)
        assert len(statements) == 1


class TestPlanToSQL:
    def test_plan_sql_uses_only_index_tables(self, fb_q1, fb_access):
        plan = plan_query(fb_q1, fb_access)
        translation = plan_to_sql(plan)
        assert translation.sql.startswith("WITH ")
        # every FROM target is either a CTE t<k> or an index table
        for table in translation.index_tables:
            assert table.startswith("ind_")
        # base tables never appear unqualified in FROM clauses
        assert 'FROM "friend"' not in translation.sql
        assert 'FROM "dine"' not in translation.sql

    def test_plan_sql_mentions_constants(self, fb_q1, fb_access):
        translation = plan_to_sql(plan_query(fb_q1, fb_access))
        assert "'p0'" in translation.sql
        assert "'nyc'" in translation.sql

    def test_plan_sql_is_valid_sqlite(self, fb_q1, fb_access, fb_database):
        """The generated SQL parses and runs on SQLite against the index tables."""
        plan = plan_query(fb_q1, fb_access)
        translation = plan_to_sql(plan)
        connection = sqlite3.connect(":memory:")
        cursor = connection.cursor()
        for relation in fb_database:
            cols = ", ".join(quote_identifier(a) for a in relation.schema.attributes)
            cursor.execute(f"CREATE TABLE {quote_identifier(relation.schema.name)} ({cols})")
            cursor.executemany(
                f"INSERT INTO {quote_identifier(relation.schema.name)} VALUES "
                f"({', '.join('?' for _ in relation.schema.attributes)})",
                relation.rows,
            )
        for constraint in fb_access:
            for statement in index_table_ddl(constraint):
                cursor.execute(statement)
        cursor.execute(translation.sql)
        rows = frozenset(tuple(r) for r in cursor.fetchall())
        assert rows == evaluate(fb_q1, fb_database).rows

    def test_difference_plan_sql(self, fb_q0_prime, fb_access):
        translation = plan_to_sql(plan_query(fb_q0_prime, fb_access))
        assert "EXCEPT" in translation.sql


class TestQueryToSQL:
    def test_simple_selection(self, fb_schema):
        cafe = Relation.from_schema(fb_schema, "cafe")
        query = cafe.select(eq(cafe["city"], "nyc")).project([cafe["cid"]])
        sql = query_to_sql(query)
        assert "SELECT DISTINCT" in sql
        assert '"cafe"' in sql
        assert "'nyc'" in sql

    def test_join_and_difference(self, fb_q0):
        sql = query_to_sql(fb_q0)
        assert "JOIN" in sql
        assert "EXCEPT" in sql

    def test_query_sql_runs_on_sqlite(self, fb_q0, fb_database):
        connection = sqlite3.connect(":memory:")
        cursor = connection.cursor()
        for relation in fb_database:
            cols = ", ".join(quote_identifier(a) for a in relation.schema.attributes)
            cursor.execute(f"CREATE TABLE {quote_identifier(relation.schema.name)} ({cols})")
            cursor.executemany(
                f"INSERT INTO {quote_identifier(relation.schema.name)} VALUES "
                f"({', '.join('?' for _ in relation.schema.attributes)})",
                relation.rows,
            )
        cursor.execute(query_to_sql(fb_q0))
        rows = frozenset(tuple(r) for r in cursor.fetchall())
        assert rows == evaluate(fb_q0, fb_database).rows
