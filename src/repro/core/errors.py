"""Exception hierarchy for the bounded-evaluation library.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch everything coming out of the library with a single ``except``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class SchemaError(ReproError):
    """A relational schema is malformed or referenced inconsistently.

    Raised, e.g., when a relation is declared twice, when an attribute is
    referenced that does not belong to its relation, or when a constraint
    mentions an unknown relation.
    """


class QueryError(ReproError):
    """A relational-algebra query is structurally invalid.

    Examples: projecting an attribute that does not exist in the input,
    taking the union of expressions with different arities, or referencing
    a relation that is not part of the schema.
    """


class AccessConstraintError(ReproError):
    """An access constraint is malformed (e.g. attributes outside its relation)."""


class NotCoveredError(ReproError):
    """An operation that requires a covered query received one that is not.

    ``QPlan`` and the access-minimization algorithms are only defined for
    queries covered by the access schema; calling them on an uncovered query
    raises this error rather than silently producing an unbounded plan.
    """


class PlanError(ReproError):
    """A bounded query plan is invalid or cannot be executed.

    Raised when a plan references an undefined intermediate result, when a
    ``fetch`` uses an access constraint that is not part of the access
    schema, or when plan execution encounters incompatible arities.
    """


class ParseError(ReproError):
    """The SQL parser could not parse the input text."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)


class StorageError(ReproError):
    """The storage layer was used inconsistently.

    Examples: inserting a tuple with the wrong arity, loading a relation that
    does not exist, or building an index over attributes the relation lacks.
    """


class ConstraintViolation(ReproError):
    """A dataset does not satisfy an access constraint it was declared to satisfy."""

    def __init__(self, constraint, value, count: int):
        self.constraint = constraint
        self.value = value
        self.count = count
        super().__init__(
            f"constraint {constraint} violated: X-value {value!r} has {count} "
            f"distinct Y-values (limit {constraint.bound})"
        )


class DiscoveryError(ReproError):
    """Access-constraint discovery was configured or used incorrectly."""


class MaintenanceError(ReproError):
    """A batch of updates failed part-way through being applied.

    The rows applied before the failure are *kept* (storage and indexes stay
    mutually consistent — each row is validated and indexed atomically), but
    the rest of the batch was not attempted.  ``report`` is the partial
    :class:`~repro.discovery.maintenance.MaintenanceReport` up to the failing
    update: its ``touched_relations`` names every relation the partial batch
    modified, which callers (and :meth:`~repro.core.engine.BoundedEngine.
    apply_updates` in particular) must settle the version clock and cache
    sweeps over — otherwise result caches would keep serving rows from before
    the partial batch.
    """

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)


class ServingError(ReproError):
    """Base class for the serving tier's request-level failures.

    These are *per-request* verdicts, not library bugs: the query itself may
    be fine, but the serving tier declined or failed to answer it right now.
    Callers distinguish retryable conditions (:class:`TransientFault`) from
    terminal ones (:class:`OverloadedError`, :class:`DeadlineExceededError`).
    """


class OverloadedError(ServingError):
    """The request was shed by admission control.

    Raised when the bounded request queue is full, or when the query's
    ``access_bound()`` cost estimate exceeds the server's per-request budget.
    Shedding at admission keeps queueing bounded: the alternative — accepting
    every request — turns overload into unbounded latency for everyone.
    """


class DeadlineExceededError(ServingError):
    """The request's deadline expired before (or while) it was served."""


class CircuitOpenError(OverloadedError):
    """A circuit breaker rejected the call without attempting it.

    Subclasses :class:`OverloadedError` because the caller-visible meaning is
    the same — the request was refused to protect the system, not because it
    was invalid.  The serving tier wraps the *unbounded* conventional
    fallback in a breaker so a stampede of uncovered queries cannot starve
    the covered (bounded-cost) hot path.
    """


class TransientFault(ServingError):
    """A retryable infrastructure fault (injected or real).

    The operation may succeed if retried: the fault is in the environment
    (slow storage, a flaky dependency, an injected test fault), not in the
    query.  :class:`~repro.serving.policy.RetryPolicy` retries these within
    its budget; anything else propagates immediately.
    """
