"""Simple per-relation statistics.

Used by access-constraint discovery (to rank candidate constraints), by the
workload generators (to pick realistic constants), and by the conventional
baseline's rudimentary optimizer (to order joins by estimated size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .database import Database
from .relation import RelationInstance


@dataclass
class RelationStatistics:
    """Cardinality and per-attribute distinct-count statistics of one relation."""

    name: str
    row_count: int
    distinct_counts: Mapping[str, int]
    sample_values: Mapping[str, tuple]

    def distinct(self, attribute: str) -> int:
        return self.distinct_counts.get(attribute, 0)

    def selectivity(self, attribute: str) -> float:
        """Estimated fraction of rows matching an equality on ``attribute``."""
        distinct = self.distinct(attribute)
        if distinct == 0 or self.row_count == 0:
            return 1.0
        return 1.0 / distinct


@dataclass
class DatabaseStatistics:
    """Statistics of every relation of a database."""

    relations: dict[str, RelationStatistics] = field(default_factory=dict)

    @classmethod
    def collect(cls, database: Database, sample_size: int = 20) -> "DatabaseStatistics":
        stats = cls()
        for relation in database:
            stats.relations[relation.schema.name] = _collect_relation(relation, sample_size)
        return stats

    def __getitem__(self, relation: str) -> RelationStatistics:
        return self.relations[relation]

    def __contains__(self, relation: str) -> bool:
        return relation in self.relations

    @property
    def total_rows(self) -> int:
        return sum(stat.row_count for stat in self.relations.values())


def _collect_relation(relation: RelationInstance, sample_size: int) -> RelationStatistics:
    distinct_counts: dict[str, int] = {}
    sample_values: dict[str, tuple] = {}
    for attribute in relation.schema.attributes:
        values = relation.project([attribute])
        distinct_counts[attribute] = len(values)
        flattened = sorted((v[0] for v in values), key=repr)
        sample_values[attribute] = tuple(flattened[:sample_size])
    return RelationStatistics(
        name=relation.schema.name,
        row_count=len(relation),
        distinct_counts=distinct_counts,
        sample_values=sample_values,
    )
