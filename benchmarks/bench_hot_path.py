"""Repeated-query throughput: plan store + result cache + pipelined executor.

A serving engine sees the same (parameterized) queries over and over; the
paper's boundedness guarantees make each execution touch only ``D_Q``, but the
wall-clock then hinges on how much work happens *around* the data.  Two
scenarios are measured:

**Read-only** — queries/second on repeated covered queries in three modes:

* **cold** — all caching disabled: every execution re-runs ``CovChk``,
  ``minA``, ``QPlan`` and plan optimization from scratch;
* **warm_plan** — plan store only: repeats skip straight to the compiled
  plan but still execute it;
* **warm** — plan store + result cache: repeats on unchanged data skip
  execution entirely and serve the materialized bounded result.

**Cold path** — queries/second on the bundled *analytic* queries
(:mod:`repro.bench.analytic`) with the result cache off, comparing the row
and columnar executor kernels on the executions a serving tier pays on every
result-cache miss.  Row/columnar results are cross-checked for identity
against the reference evaluator before any timing; the report records
``cold_row_qps``, ``cold_columnar_qps``, the ``columnar_speedup`` ratio and
the shipping ``cold_qps`` (auto mode) per workload.

**Mixed read/write** — repeated queries interleaved with writes to a
relation *unrelated* to every query's dependency set, comparing
constraint-granular invalidation against the legacy clear-all mode
(``granular_invalidation=False``).  With granular invalidation the writes
must cause **zero** plan recompilations and zero re-executions (asserted via
cache stats); with clear-all every write flushes both caches.  Afterwards a
*dependent* write is applied and results are cross-checked row-for-row
against the uncached reference evaluator on the changed data.  Both engines
run with delta repair off — this scenario isolates the invalidation
granularity, the next one isolates repair.

**Delta repair** — repeated queries interleaved with *dependent* writes (a
delete/re-insert pair on a relation every query reads), comparing delta
repair (``delta_repair=True``, the default) against invalidate-and-recompute
(``delta_repair=False``).  The repairing engine must actually repair
(asserted via ``repaired`` in cache stats) and both engines' rows are
cross-checked against the uncached reference evaluator after the write mix.
The report records per-workload ``delta_qps`` and the repair/invalidate
``speedup``.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_hot_path.py --quick --output BENCH_hot_path.json

``--mode`` limits the run to one scenario (``read``, ``cold``, ``mixed``,
``delta``; default ``all``).

The JSON report records per-workload throughput, the speedups, and the
engine's cache statistics, so the perf trajectory is a tracked number (see
``benchmarks/track_trajectory.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # allow running without an editable install
    sys.path.insert(0, str(SRC))

from repro.bench.analytic import analytic_queries  # noqa: E402
from repro.bench.experiments import select_covered_queries  # noqa: E402
from repro.core.engine import BoundedEngine  # noqa: E402
from repro.evaluator.algebra import evaluate  # noqa: E402
from repro.workloads import WORKLOADS  # noqa: E402


def _stats_delta(before: dict, after: dict) -> dict:
    """Per-cache counter deltas between two cache_stats() snapshots.

    Gauge-style keys (capacity, entries, hit_rate) are taken from ``after``;
    the hit rate is recomputed from the delta traffic only.
    """
    delta: dict[str, dict] = {}
    for cache_name, counters in after.items():
        base = before.get(cache_name, {})
        cache_delta = {}
        for key, value in counters.items():
            if key in ("capacity", "entries"):
                cache_delta[key] = value
            elif isinstance(value, dict):
                # dict-valued counters (invalidated_by, repair_fallback_reasons):
                # per-key deltas, dropping keys that saw no traffic
                base_map = base.get(key, {})
                sub = {
                    k: v - base_map.get(k, 0)
                    for k, v in value.items()
                    if v - base_map.get(k, 0)
                }
                cache_delta[key] = sub
            elif key != "hit_rate":
                cache_delta[key] = value - base.get(key, 0)
        requests = cache_delta.get("hits", 0) + cache_delta.get("misses", 0)
        cache_delta["hit_rate"] = (
            round(cache_delta.get("hits", 0) / requests, 4) if requests else 0.0
        )
        delta[cache_name] = cache_delta
    return delta


def _throughput(engine: BoundedEngine, queries, repeats: int) -> tuple[float, int]:
    """Execute each query ``repeats`` times; returns (queries/sec, executions)."""
    executions = 0
    started = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            engine.execute(query)
            executions += 1
    elapsed = time.perf_counter() - started
    return (executions / elapsed) if elapsed > 0 else float("inf"), executions


def bench_workload(name: str, *, scale: int, query_count: int, repeats: int) -> dict:
    workload = WORKLOADS[name]
    database = workload.database(scale=scale, seed=7)
    queries = select_covered_queries(
        workload, count=query_count, seed=7, database=database
    )
    if not queries:
        return {"workload": name, "skipped": "no covered queries generated"}

    cold = BoundedEngine(
        database,
        workload.access_schema,
        check_constraints=False,
        plan_cache_size=0,
        result_cache_size=0,
    )
    warm_plan = BoundedEngine(
        database, workload.access_schema, check_constraints=False, result_cache_size=0
    )
    warm = BoundedEngine(database, workload.access_schema, check_constraints=False)
    plain = BoundedEngine(
        database,
        workload.access_schema,
        check_constraints=False,
        plan_cache_size=0,
        result_cache_size=0,
        optimize=False,
    )

    # Correctness first: caches on/off, optimizer on/off, reference semantics.
    for query in queries:
        expected = evaluate(query, database).rows
        for engine in (cold, warm_plan, warm, plain):
            rows = engine.execute(query).rows
            if rows != expected:
                raise AssertionError(
                    f"{name}: result mismatch for\n{query}\n"
                    f"expected {len(expected)} rows, got {len(rows)}"
                )
        # repeats served from the result cache must be row-identical too
        if warm.execute(query).rows != expected:
            raise AssertionError(f"{name}: result-cache mismatch for\n{query}")

    for engine in (warm_plan, warm):  # measure the warm paths from clean caches
        engine.plan_cache.invalidate()
        engine.result_cache.invalidate()
    warm_up_qps, _ = _throughput(warm, queries, 1)  # first pass populates the caches
    _throughput(warm_plan, queries, 1)
    stats_before = warm.cache_stats()  # counters also include the phases above...
    cold_qps, cold_runs = _throughput(cold, queries, repeats)
    warm_plan_qps, _ = _throughput(warm_plan, queries, repeats)
    warm_qps, warm_runs = _throughput(warm, queries, repeats)
    # ...so report only the measured passes' traffic.
    measured_stats = _stats_delta(stats_before, warm.cache_stats())

    return {
        "workload": name,
        "scale": scale,
        "queries": len(queries),
        "executions": {"cold": cold_runs, "warm": warm_runs},
        "cold_qps": round(cold_qps, 2),
        "warm_first_pass_qps": round(warm_up_qps, 2),
        "warm_plan_qps": round(warm_plan_qps, 2),
        "warm_qps": round(warm_qps, 2),
        "speedup": round(warm_qps / cold_qps, 2) if cold_qps else None,
        "plan_speedup": round(warm_plan_qps / cold_qps, 2) if cold_qps else None,
        "cache": measured_stats,
    }


def bench_cold_path(name: str, *, scale: int, repeats: int) -> dict:
    """Row vs columnar execution throughput on the bundled analytic queries.

    Every engine runs with the result cache disabled and a warm plan store,
    so the measured cost is pure plan execution — the cold path of a result
    cache miss.  Before any timing, every (query, mode) pair is cross-checked
    row-for-row against the reference evaluator.  Row mode gets fewer passes
    (its analytic executions are orders of magnitude slower); throughput is
    normalized per execution either way.
    """
    workload = WORKLOADS[name]
    queries = analytic_queries(workload)
    if not queries:
        return {"workload": name, "skipped": "no bundled analytic queries"}
    database = workload.database(scale=scale, seed=7)

    engines = {
        mode: BoundedEngine(
            database,
            workload.access_schema,
            check_constraints=False,
            result_cache_size=0,
            executor_mode=mode,
        )
        for mode in ("row", "columnar", "auto")
    }

    # Row-identity cross-checks (also warm every plan store): each mode must
    # produce exactly the reference evaluator's rows for every query.
    access_bounds = []
    for query in queries:
        expected = evaluate(query, database).rows
        for mode, engine in engines.items():
            result = engine.execute(query)
            if result.rows != expected:
                raise AssertionError(
                    f"{name}/{mode}: cold-path result mismatch for\n{query}\n"
                    f"expected {len(expected)} rows, got {len(result.rows)}"
                )
        prepared, _ = engines["row"].prepare(query)
        access_bounds.append(prepared.executable.access_bound())

    row_repeats = max(1, repeats // 4)
    row_qps, row_runs = _throughput(engines["row"], queries, row_repeats)
    columnar_qps, columnar_runs = _throughput(engines["columnar"], queries, repeats)
    auto_qps, _ = _throughput(engines["auto"], queries, repeats)
    executor = engines["columnar"].cache_stats()["executor"]

    return {
        "workload": name,
        "scale": scale,
        "queries": len(queries),
        "access_bounds": access_bounds,
        "executions": {"row": row_runs, "columnar": columnar_runs},
        "cold_row_qps": round(row_qps, 2),
        "cold_columnar_qps": round(columnar_qps, 2),
        # the shipping number: auto mode picks kernels per plan
        "cold_qps": round(auto_qps, 2),
        "columnar_speedup": round(columnar_qps / row_qps, 2) if row_qps else None,
        "executor": executor,
    }


def _mixed_engine(database, workload, *, granular: bool) -> BoundedEngine:
    # Delta repair off: this scenario compares invalidation *granularity*;
    # the delta scenario below isolates repair itself.
    return BoundedEngine(
        database,
        workload.access_schema,
        check_constraints=False,
        granular_invalidation=granular,
        delta_repair=False,
    )


def bench_mixed(name: str, *, scale: int, query_count: int, batches: int,
                reads_per_batch: int) -> dict:
    """Interleave unrelated writes with repeated reads: granular vs clear-all.

    Each write event deletes and re-inserts one existing row of a relation no
    query depends on — a real pair of data changes (two version bumps, two
    sweeps) that leaves the data equal to its initial state, so results stay
    comparable against a fixed reference.
    """
    workload = WORKLOADS[name]

    def setup(granular: bool):
        database = workload.database(scale=scale, seed=7)
        queries = select_covered_queries(
            workload, count=query_count, seed=7, database=database
        )
        engine = _mixed_engine(database, workload, granular=granular)
        return database, queries, engine

    database, queries, probe = setup(True)
    if not queries:
        return {"workload": name, "skipped": "no covered queries generated"}

    dependencies: set[str] = set()
    for query in queries:
        prepared, _ = probe.prepare(query)
        dependencies.update(prepared.dependencies)
    unrelated = [
        relation
        for relation in database.relation_names()
        if relation not in dependencies and len(database.relation(relation)) > 0
    ]
    if not unrelated:
        return {"workload": name, "skipped": "every relation is a query dependency"}
    write_relation = unrelated[0]
    related_relation = sorted(dependencies)[0]

    results: dict[str, dict] = {}
    for mode, granular in (("granular", True), ("clear_all", False)):
        database, queries, engine = setup(granular)
        write_row = next(iter(database.relation(write_relation)))
        expected = {id(q): evaluate(q, database).rows for q in queries}
        for query in queries:  # warm both caches
            engine.execute(query)
        before = engine.cache_stats()
        reads = 0
        started = time.perf_counter()
        for _ in range(batches):
            engine.apply_delete(write_relation, write_row)
            engine.apply_insert(write_relation, write_row)
            for _ in range(reads_per_batch):
                for query in queries:
                    engine.execute(query)
                    reads += 1
        elapsed = time.perf_counter() - started
        after = engine.cache_stats()
        invalidated = (
            after["plan_store"]["invalidated"] - before["plan_store"]["invalidated"]
        )
        result_hits = after["result_cache"]["hits"] - before["result_cache"]["hits"]
        for query in queries:  # rows must still match the uncached reference
            if engine.execute(query).rows != expected[id(query)]:
                raise AssertionError(f"{name}/{mode}: mixed-scenario row mismatch")
        results[mode] = {
            "qps": round(reads / elapsed, 2) if elapsed > 0 else float("inf"),
            "reads": reads,
            "writes": 2 * batches,
            "entries_invalidated": invalidated,
            "result_cache_hits": result_hits,
            "stats": after,
        }
        if granular:
            # Acceptance: unrelated writes leave plans AND results untouched —
            # every post-warmup read is a result-cache hit, nothing recompiled.
            if invalidated != 0:
                raise AssertionError(
                    f"{name}: granular mode invalidated {invalidated} plan entries "
                    "on writes to an unrelated relation"
                )
            if result_hits < batches * reads_per_batch * len(queries):
                raise AssertionError(
                    f"{name}: granular mode re-executed queries after unrelated "
                    f"writes ({result_hits} result-cache hits)"
                )
            # Dependent-write epilogue: a real data change must be reflected.
            victim = next(iter(database.relation(related_relation)))
            engine.apply_delete(related_relation, victim)
            for query in queries:
                if engine.execute(query).rows != evaluate(query, database).rows:
                    raise AssertionError(
                        f"{name}: stale rows served after dependent delete"
                    )
            engine.apply_insert(related_relation, victim)
            for query in queries:
                if engine.execute(query).rows != expected[id(query)]:
                    raise AssertionError(
                        f"{name}: stale rows served after dependent re-insert"
                    )

    granular_qps = results["granular"]["qps"]
    clear_all_qps = results["clear_all"]["qps"]
    return {
        "workload": name,
        "scale": scale,
        "queries": len(queries),
        "write_relation": write_relation,
        "dependencies": sorted(dependencies),
        "granular": results["granular"],
        "clear_all": results["clear_all"],
        "speedup": round(granular_qps / clear_all_qps, 2) if clear_all_qps else None,
    }


def bench_delta(name: str, *, scale: int, query_count: int, batches: int,
                reads_per_batch: int) -> dict:
    """Interleave *dependent* writes with repeated reads: repair vs recompute.

    Each write event deletes and re-inserts one existing row of a relation
    every query depends on, so both engines must settle their result caches
    on every write.  The repairing engine patches (or cleanly re-stamps)
    entries and keeps serving cache hits; the recomputing engine drops them
    and pays a full plan execution per query per batch.  The data returns to
    its initial state after each event, so the fixed reference stays valid.
    """
    workload = WORKLOADS[name]

    def setup(delta_repair: bool):
        database = workload.database(scale=scale, seed=7)
        queries = select_covered_queries(
            workload, count=query_count, seed=7, database=database
        )
        engine = BoundedEngine(
            database,
            workload.access_schema,
            check_constraints=False,
            delta_repair=delta_repair,
        )
        return database, queries, engine

    database, queries, probe = setup(True)
    if not queries:
        return {"workload": name, "skipped": "no covered queries generated"}
    dependencies: set[str] = set()
    for query in queries:
        prepared, _ = probe.prepare(query)
        dependencies.update(prepared.dependencies)
    shared = [r for r in sorted(dependencies) if len(database.relation(r)) > 0]
    if not shared:
        return {"workload": name, "skipped": "no populated dependent relation"}
    write_relation = shared[0]

    results: dict[str, dict] = {}
    for mode, delta_repair in (("repair", True), ("invalidate", False)):
        database, queries, engine = setup(delta_repair)
        write_row = next(iter(database.relation(write_relation)))
        expected = {id(q): evaluate(q, database).rows for q in queries}
        for query in queries:  # warm both caches
            engine.execute(query)
        before = engine.cache_stats()
        reads = 0
        started = time.perf_counter()
        for _ in range(batches):
            engine.apply_delete(write_relation, write_row)
            engine.apply_insert(write_relation, write_row)
            for _ in range(reads_per_batch):
                for query in queries:
                    engine.execute(query)
                    reads += 1
        elapsed = time.perf_counter() - started
        measured = _stats_delta(before, engine.cache_stats())
        for query in queries:  # rows must still match the uncached reference
            if engine.execute(query).rows != expected[id(query)]:
                raise AssertionError(f"{name}/{mode}: delta-scenario row mismatch")
            if engine.execute(query).rows != evaluate(query, database).rows:
                raise AssertionError(f"{name}/{mode}: reference drift")
        cache = measured["result_cache"]
        if delta_repair and cache.get("repaired", 0) == 0:
            raise AssertionError(
                f"{name}: repair mode never repaired an entry on "
                f"{2 * batches} dependent writes "
                f"(fallbacks: {cache.get('repair_fallback_reasons')})"
            )
        results[mode] = {
            "qps": round(reads / elapsed, 2) if elapsed > 0 else float("inf"),
            "reads": reads,
            "writes": 2 * batches,
            "repaired": cache.get("repaired", 0),
            "repaired_clean": cache.get("repaired_clean", 0),
            "rows_patched": cache.get("rows_patched", 0),
            "repair_fallbacks": cache.get("repair_fallbacks", 0),
            "invalidated": cache.get("invalidated", 0),
            "result_cache_hits": cache.get("hits", 0),
        }

    repair_qps = results["repair"]["qps"]
    invalidate_qps = results["invalidate"]["qps"]
    return {
        "workload": name,
        "scale": scale,
        "queries": len(queries),
        "write_relation": write_relation,
        "delta_qps": repair_qps,
        "repair": results["repair"],
        "invalidate": results["invalidate"],
        "speedup": (
            round(repair_qps / invalidate_qps, 2) if invalidate_qps else None
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small scale / few repeats (CI mode)"
    )
    parser.add_argument("--scale", type=int, default=None, help="workload scale")
    parser.add_argument("--queries", type=int, default=None, help="covered queries per workload")
    parser.add_argument("--repeats", type=int, default=None, help="passes over the query set")
    parser.add_argument("--write-batches", type=int, default=None,
                        help="write events in the mixed and delta scenarios")
    parser.add_argument(
        "--mode", choices=("all", "read", "cold", "mixed", "delta"), default="all",
        help="run only one scenario family (default: all)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="write the JSON report to this path"
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (120 if args.quick else 220)
    query_count = args.queries if args.queries is not None else (3 if args.quick else 5)
    repeats = args.repeats if args.repeats is not None else (5 if args.quick else 20)
    batches = args.write_batches if args.write_batches is not None else (10 if args.quick else 40)

    results = []
    mixed_results = []
    if args.mode in ("all", "read"):
        for name in sorted(WORKLOADS):
            result = bench_workload(
                name, scale=scale, query_count=query_count, repeats=repeats
            )
            results.append(result)
            if "skipped" in result:
                print(f"{name}: skipped ({result['skipped']})")
                continue
            print(
                f"{name}: cold {result['cold_qps']:.1f} q/s, "
                f"warm-plan {result['warm_plan_qps']:.1f} q/s, "
                f"warm {result['warm_qps']:.1f} q/s, "
                f"speedup {result['speedup']:.2f}x "
                f"(plan hit rate {result['cache']['plan_store']['hit_rate']:.2f}, "
                f"result hit rate {result['cache']['result_cache']['hit_rate']:.2f})"
            )

    cold_results = []
    if args.mode in ("all", "cold"):
        for name in sorted(WORKLOADS):
            cold = bench_cold_path(name, scale=scale, repeats=repeats)
            cold_results.append(cold)
            if "skipped" in cold:
                print(f"{name} cold-path: skipped ({cold['skipped']})")
                continue
            print(
                f"{name} cold-path: row {cold['cold_row_qps']:.1f} q/s, "
                f"columnar {cold['cold_columnar_qps']:.1f} q/s, "
                f"auto {cold['cold_qps']:.1f} q/s, "
                f"columnar speedup {cold['columnar_speedup']:.2f}x "
                f"(bounds {cold['access_bounds']})"
            )

    if args.mode in ("all", "mixed"):
        for name in sorted(WORKLOADS):
            mixed = bench_mixed(
                name, scale=scale, query_count=query_count,
                batches=batches, reads_per_batch=max(1, repeats),
            )
            mixed_results.append(mixed)
            if "skipped" in mixed:
                print(f"{name} mixed: skipped ({mixed['skipped']})")
                continue
            print(
                f"{name} mixed: granular {mixed['granular']['qps']:.1f} q/s "
                f"(0 invalidations on {mixed['granular']['writes']} unrelated writes), "
                f"clear-all {mixed['clear_all']['qps']:.1f} q/s, "
                f"speedup {mixed['speedup']:.2f}x"
            )

    delta_results = []
    if args.mode in ("all", "delta"):
        for name in sorted(WORKLOADS):
            delta = bench_delta(
                name, scale=scale, query_count=query_count,
                batches=batches, reads_per_batch=max(1, repeats),
            )
            delta_results.append(delta)
            if "skipped" in delta:
                print(f"{name} delta: skipped ({delta['skipped']})")
                continue
            print(
                f"{name} delta: repair {delta['repair']['qps']:.1f} q/s "
                f"({delta['repair']['repaired']} repairs, "
                f"{delta['repair']['rows_patched']} rows patched, "
                f"{delta['repair']['repair_fallbacks']} fallbacks), "
                f"invalidate {delta['invalidate']['qps']:.1f} q/s "
                f"({delta['invalidate']['invalidated']} invalidations), "
                f"speedup {delta['speedup']:.2f}x"
            )

    measured = [r for r in results if "speedup" in r and r["speedup"] is not None]
    overall = (
        round(sum(r["speedup"] for r in measured) / len(measured), 2) if measured else None
    )
    measured_mixed = [
        r for r in mixed_results if "speedup" in r and r["speedup"] is not None
    ]
    overall_mixed = (
        round(sum(r["speedup"] for r in measured_mixed) / len(measured_mixed), 2)
        if measured_mixed
        else None
    )
    measured_cold = [
        r for r in cold_results if r.get("columnar_speedup") is not None
    ]
    overall_cold = (
        round(
            sum(r["columnar_speedup"] for r in measured_cold) / len(measured_cold), 2
        )
        if measured_cold
        else None
    )
    measured_delta = [
        r for r in delta_results if r.get("speedup") is not None
    ]
    overall_delta = (
        round(sum(r["speedup"] for r in measured_delta) / len(measured_delta), 2)
        if measured_delta
        else None
    )
    report = {
        "benchmark": "hot_path",
        "mode": "quick" if args.quick else "full",
        "scale": scale,
        "repeats": repeats,
        "workloads": results,
        "cold_path": cold_results,
        "mixed": mixed_results,
        "delta": delta_results,
        "mean_speedup": overall,
        "mean_mixed_speedup": overall_mixed,
        "mean_columnar_speedup": overall_cold,
        "mean_delta_speedup": overall_delta,
    }
    print(f"mean warm/cold speedup: {overall}x")
    print(f"mean granular/clear-all mixed speedup: {overall_mixed}x")
    print(f"mean columnar/row cold-path speedup: {overall_cold}x")
    print(f"mean repair/invalidate delta speedup: {overall_delta}x")

    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")

    return 0


if __name__ == "__main__":
    raise SystemExit(main())
