"""Property-based end-to-end tests: bounded plans compute Q(D) on random data.

These are the strongest correctness properties in the suite: for randomly
generated databases (that satisfy the access schema by construction) and for
randomly generated covered queries, the canonical bounded plan produced by
``QPlan`` must return exactly ``Q(D)`` while accessing data only through
indexes and staying under its own static access bound.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.coverage import check_coverage
from repro.core.planner import generate_plan
from repro.evaluator.algebra import evaluate
from repro.evaluator.executor import execute_plan
from repro.storage.database import Database
from repro.storage.index import IndexSet
from repro.workloads import WORKLOADS, RandomQueryGenerator, facebook

MONTHS = ("jan", "may", "jun")
CITIES = ("nyc", "boston")


@st.composite
def facebook_databases(draw):
    """Small random instances of the Example 1 schema that satisfy A0."""
    database = Database(facebook.schema())
    people = [f"p{i}" for i in range(draw(st.integers(min_value=2, max_value=6)))]
    cafes = [f"c{i}" for i in range(draw(st.integers(min_value=1, max_value=5)))]
    for cid in cafes:
        database.insert("cafe", (cid, draw(st.sampled_from(CITIES))))
    friend_pairs = draw(
        st.sets(
            st.tuples(st.sampled_from(people), st.sampled_from(people)), max_size=12
        )
    )
    for pid, fid in friend_pairs:
        if pid != fid:
            database.insert("friend", (pid, fid))
    dine_rows = draw(
        st.sets(
            st.tuples(
                st.sampled_from(people),
                st.sampled_from(cafes),
                st.sampled_from(MONTHS),
                st.sampled_from([2014, 2015]),
            ),
            max_size=20,
        )
    )
    for row in dine_rows:
        database.insert("dine", row)
    return database


class TestFacebookQueriesOnRandomData:
    @given(facebook_databases())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_q1_plan_equals_reference(self, database):
        access = facebook.access_schema()
        assert database.satisfies_schema(access)
        query = facebook.query_q1()
        plan = generate_plan(check_coverage(query, access))
        indexes = IndexSet.build(database, access)
        execution = execute_plan(plan, database, indexes)
        assert execution.rows == evaluate(query, database).rows
        assert execution.counter.scanned == 0
        assert execution.counter.total <= plan.access_bound()

    @given(facebook_databases())
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_q0_prime_plan_equals_q0_semantics(self, database):
        access = facebook.access_schema()
        query = facebook.query_q0_prime()
        plan = generate_plan(check_coverage(query, access))
        indexes = IndexSet.build(database, access)
        execution = execute_plan(plan, database, indexes)
        assert execution.rows == evaluate(facebook.query_q0(), database).rows


class TestGeneratedCoveredQueries:
    @given(
        workload_name=st.sampled_from(sorted(WORKLOADS)),
        generator_seed=st.integers(min_value=0, max_value=2**16),
        n_sel=st.integers(min_value=3, max_value=7),
        n_join=st.integers(min_value=0, max_value=3),
        n_unidiff=st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_covered_generated_query_plans_are_correct(
        self, workload_name, generator_seed, n_sel, n_join, n_unidiff
    ):
        workload = WORKLOADS[workload_name]
        database = workload.database(scale=35, seed=5)
        generator = RandomQueryGenerator(workload, database=database, seed=generator_seed)
        query = generator.generate(n_sel=n_sel, n_join=n_join, n_unidiff=n_unidiff)
        coverage = check_coverage(query, workload.access_schema)
        truth = evaluate(query, database).rows
        if not coverage.is_covered:
            # Nothing to check for uncovered queries beyond not crashing.
            return
        plan = generate_plan(coverage)
        indexes = IndexSet.build(database, workload.access_schema, check=False)
        execution = execute_plan(plan, database, indexes)
        assert execution.rows == truth
        assert execution.counter.scanned == 0
        assert execution.counter.total <= plan.access_bound()
