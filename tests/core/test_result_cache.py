"""Result-cache correctness and the shared plan store across engines."""

import pytest

from repro.core.engine import BoundedEngine
from repro.core.planstore import PlanStore, ResultCache
from repro.evaluator.algebra import evaluate
from repro.workloads import facebook


class TestResultCacheUnit:
    def test_hit_requires_matching_snapshot(self):
        cache = ResultCache(capacity=4)
        rows = frozenset({(1,)})
        cache.put("k", rows, ("v",), dependencies=("hot",), snapshot=(3,))
        hit = cache.get("k", (3,))
        assert hit is not None and hit.rows == rows
        assert cache.get("k", (4,)) is None  # data moved on: stale, dropped
        assert cache.get("k", (3,)) is None  # entry gone after the stale probe
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["stale"] == 1
        assert stats["misses"] == 2

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("k", frozenset(), (), dependencies=(), snapshot=())
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        for index in range(3):
            cache.put(index, frozenset(), (), dependencies=(), snapshot=())
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        assert cache.get(0, ()) is None  # the oldest entry was evicted

    def test_oversized_results_not_admitted(self):
        cache = ResultCache(capacity=4, max_rows=2)
        small = frozenset({(1,), (2,)})
        big = frozenset({(i,) for i in range(3)})
        cache.put("small", small, ("v",), dependencies=(), snapshot=())
        cache.put("big", big, ("v",), dependencies=(), snapshot=())
        assert cache.get("small", ()) is not None
        assert cache.get("big", ()) is None
        assert cache.stats()["oversized"] == 1

    def test_targeted_invalidation(self):
        cache = ResultCache(capacity=8)
        cache.put("on_r", frozenset(), (), dependencies=("r",), snapshot=(1,))
        cache.put("on_s", frozenset(), (), dependencies=("s",), snapshot=(1,))
        dropped = cache.invalidate(("r",))
        assert dropped == 1
        assert cache.get("on_s", (1,)) is not None
        assert cache.stats()["invalidated"] == 1


class TestEngineResultCache:
    def test_repeat_served_without_execution(self, hot_cold_setup):
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access)
        first = engine.execute(hot_query)
        second = engine.execute(hot_query)
        assert not first.result_cached
        assert second.result_cached
        assert second.rows == first.rows
        assert second.columns == first.columns
        assert second.counter.total == 0  # no data accessed at all
        stats = engine.cache_stats()["result_cache"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_dependent_insert_recomputes_correct_rows(self, hot_cold_setup):
        """Legacy contract: with delta repair off, a dependent insert drops
        the entry and the next read recomputes."""
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access, delta_repair=False)
        engine.execute(hot_query)
        engine.apply_insert("hot", ("a", 4))
        result = engine.execute(hot_query)
        assert not result.result_cached
        assert (4,) in result.rows
        assert result.rows == evaluate(hot_query, database).rows

    def test_dependent_insert_repairs_entry_by_default(self, hot_cold_setup):
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access)
        engine.execute(hot_query)
        engine.apply_insert("hot", ("a", 4))
        result = engine.execute(hot_query)
        assert result.result_cached  # the entry was patched, not dropped
        assert (4,) in result.rows
        assert result.rows == evaluate(hot_query, database).rows

    def test_dependent_delete_recomputes_correct_rows(self, hot_cold_setup):
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access, delta_repair=False)
        assert (2,) in engine.execute(hot_query).rows
        engine.apply_delete("hot", ("a", 2))
        result = engine.execute(hot_query)
        assert not result.result_cached
        assert (2,) not in result.rows
        assert result.rows == evaluate(hot_query, database).rows

    def test_dependent_delete_repairs_entry_by_default(self, hot_cold_setup):
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access)
        assert (2,) in engine.execute(hot_query).rows
        engine.apply_delete("hot", ("a", 2))
        result = engine.execute(hot_query)
        assert result.result_cached  # the delete was patched out in place
        assert (2,) not in result.rows
        assert result.rows == evaluate(hot_query, database).rows

    def test_unrelated_write_preserves_cached_result(self, hot_cold_setup):
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access)
        first = engine.execute(hot_query)
        engine.apply_insert("cold", ("y", 7))
        engine.apply_delete("cold", ("x", 9))
        repeat = engine.execute(hot_query)
        assert repeat.result_cached
        assert repeat.rows == first.rows == evaluate(hot_query, database).rows

    def test_result_cache_disabled_still_correct(self, hot_cold_setup):
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access, result_cache_size=0)
        first = engine.execute(hot_query)
        second = engine.execute(hot_query)
        assert not second.result_cached
        assert second.cached  # the plan store still works
        assert second.rows == first.rows

    def test_out_of_band_database_write_detected(self, hot_cold_setup):
        """Writes through Database.insert (not the engine) still bump the clock.

        The constraint indexes are NOT maintained by out-of-band writes, so
        bounded results may not see the new tuple — but the result cache must
        not keep serving the pre-write materialization as if nothing happened.
        """
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access)
        engine.execute(hot_query)
        database.insert("hot", ("a", 8))  # bypasses the engine's maintenance
        result = engine.execute(hot_query)
        assert not result.result_cached  # snapshot mismatch forces re-execution

    def test_rewritten_covered_query_result_cached(self, fb_database, fb_access, fb_q0):
        engine = BoundedEngine(fb_database, fb_access)
        first = engine.execute(fb_q0)
        assert first.strategy == "bounded" and first.rewrite == "guard-difference"
        second = engine.execute(fb_q0)
        assert second.result_cached
        assert second.rows == first.rows


class TestSharedPlanStore:
    def test_two_engines_share_prepared_plans(self, fb_access):
        store = PlanStore(capacity=32)
        db_a = facebook.generate(scale=30, seed=1)
        db_b = facebook.generate(scale=30, seed=2)
        engine_a = BoundedEngine(db_a, fb_access, plan_store=store)
        engine_b = BoundedEngine(db_b, fb_access, plan_store=store)
        q1 = facebook.query_q1()

        result_a = engine_a.execute(q1)
        assert not result_a.cached  # first preparation fleet-wide
        result_b = engine_b.execute(q1)
        assert result_b.cached  # engine B reuses engine A's prepared plan
        assert store.stats()["entries"] == 1

        prepared_a, _ = engine_a.prepare(q1)
        prepared_b, _ = engine_b.prepare(q1)
        assert prepared_a is prepared_b  # literally the same entry

    def test_divergent_data_yields_per_engine_results(self, fb_access):
        store = PlanStore(capacity=32)
        db_a = facebook.generate(scale=30, seed=1)
        db_b = facebook.generate(scale=30, seed=2)
        engine_a = BoundedEngine(db_a, fb_access, plan_store=store)
        engine_b = BoundedEngine(db_b, fb_access, plan_store=store)
        q1 = facebook.query_q1()

        rows_a = engine_a.execute(q1).rows
        rows_b = engine_b.execute(q1).rows
        assert rows_a == evaluate(q1, db_a).rows
        assert rows_b == evaluate(q1, db_b).rows

        # diverge engine A's data; engine B's cached result must be unaffected
        engine_a.apply_insert("cafe", ("c_div", "nyc"))
        engine_a.apply_insert("friend", ("p0", "p_div"))
        engine_a.apply_insert("dine", ("p_div", "c_div", "may", 2015))
        after_a = engine_a.execute(q1)
        after_b = engine_b.execute(q1)
        assert ("c_div",) in after_a.rows
        assert after_a.rows == evaluate(q1, db_a).rows
        assert after_b.rows == evaluate(q1, db_b).rows
        assert ("c_div",) not in after_b.rows

    def test_optimize_flag_keys_separately_in_shared_store(self, fb_access):
        """Engines with different optimize settings must not serve each other."""
        store = PlanStore(capacity=32)
        database = facebook.generate(scale=30, seed=1)
        optimized = BoundedEngine(database, fb_access, plan_store=store)
        plain = BoundedEngine(
            database, fb_access, plan_store=store, optimize=False
        )
        q1 = facebook.query_q1()
        optimized.execute(q1)
        result = plain.execute(q1)
        assert not result.cached  # distinct entry, not the optimized one
        assert store.stats()["entries"] == 2
        prepared_opt, _ = optimized.prepare(q1)
        prepared_plain, _ = plain.prepare(q1)
        assert prepared_plain.executable is prepared_plain.plan  # unoptimized
        assert prepared_opt.executable is not prepared_opt.plan

    def test_write_on_one_engine_invalidates_shared_entry_for_both(self, fb_access):
        """A shared store is swept by whichever engine takes the write.

        This is the legacy (``delta_repair=False``) contract; with delta
        repair on, plan-store entries survive writes because prepared plans
        are data-independent (covered below).
        """
        store = PlanStore(capacity=32)
        db_a = facebook.generate(scale=30, seed=1)
        db_b = facebook.generate(scale=30, seed=2)
        engine_a = BoundedEngine(db_a, fb_access, plan_store=store, delta_repair=False)
        engine_b = BoundedEngine(db_b, fb_access, plan_store=store, delta_repair=False)
        q1 = facebook.query_q1()
        engine_a.execute(q1)
        assert engine_b.execute(q1).cached
        engine_a.apply_insert("friend", ("p0", "p_x"))
        # the shared entry was dropped; either engine re-prepares on demand
        result_b = engine_b.execute(q1)
        assert not result_b.cached
        assert result_b.rows == evaluate(q1, db_b).rows

    def test_write_with_delta_repair_keeps_shared_plan_entry(self, fb_access):
        """With delta repair (the default) a write leaves the shared store
        alone — each engine's *result* cache is settled individually."""
        store = PlanStore(capacity=32)
        db_a = facebook.generate(scale=30, seed=1)
        db_b = facebook.generate(scale=30, seed=2)
        engine_a = BoundedEngine(db_a, fb_access, plan_store=store)
        engine_b = BoundedEngine(db_b, fb_access, plan_store=store)
        q1 = facebook.query_q1()
        engine_a.execute(q1)
        assert engine_b.execute(q1).cached
        engine_a.apply_insert("friend", ("p0", "p_x"))
        result_a = engine_a.execute(q1)
        result_b = engine_b.execute(q1)
        assert result_a.cached and result_b.cached  # plan entry survived
        assert result_b.result_cached  # engine B's result was never touched
        assert result_a.rows == evaluate(q1, db_a).rows
        assert result_b.rows == evaluate(q1, db_b).rows
