"""Ensure the in-repo sources are importable even without an editable install."""

import sys
from pathlib import Path

SRC = Path(__file__).parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
