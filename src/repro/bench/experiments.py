"""Experiment drivers reproducing the evaluation of Section 8.

Each function regenerates one table/figure of the paper on the synthetic
workloads and returns an :class:`~repro.bench.metrics.ExperimentTable` whose
rows are the series the corresponding figure plots.  The pytest-benchmark
suites under ``benchmarks/`` are thin wrappers over these drivers, and
EXPERIMENTS.md records representative output.

The experiments intentionally reuse the exact production code paths:
``CovChk`` for coverage, ``QPlan`` + the plan executor for ``evalQP``,
``minA``/``minADAG``/``minAE`` for minimization, and the conventional
evaluator for ``evalDBMS``.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from ..core.access import AccessSchema
from ..core.coverage import CoverageChecker, check_coverage
from ..core.rewrite import rewrite_candidates
from ..core.minimize import (
    minimize_access,
    minimize_access_acyclic,
    minimize_access_elementary,
)
from ..core.planner import generate_plan
from ..core.query import Query
from ..core.rewrite import is_boundedly_evaluable
from ..discovery.maintenance import Update, apply_updates
from ..evaluator.baseline import evaluate_conventional
from ..evaluator.executor import PlanExecutor
from ..storage.database import Database
from ..storage.index import IndexSet
from ..workloads.base import WorkloadSpec
from ..workloads.generator import RandomQueryGenerator
from .metrics import ExperimentTable

#: default scale factors for the |D|-varying experiment, mirroring 2^-5 .. 1
DEFAULT_SCALE_FACTORS = (2 ** -5, 2 ** -4, 2 ** -3, 2 ** -2, 2 ** -1, 1.0)


# ---------------------------------------------------------------------------
# Query selection helpers
# ---------------------------------------------------------------------------

def select_covered_queries(
    workload: WorkloadSpec,
    count: int = 5,
    *,
    seed: int = 7,
    n_sel: tuple[int, int] = (4, 9),
    n_join: tuple[int, int] = (1, 3),
    n_unidiff: tuple[int, int] = (0, 1),
    max_attempts: int = 400,
    database: Database | None = None,
) -> list[Query]:
    """Randomly generate queries and keep the first ``count`` covered ones.

    Mirrors the paper's "5 covered queries randomly chosen" used throughout
    Figure 5.
    """
    generator = RandomQueryGenerator(workload, database=database, seed=seed)
    covered: list[Query] = []
    attempts = 0
    while len(covered) < count and attempts < max_attempts:
        attempts += 1
        query = generator.generate(
            n_sel=generator.rng.randint(*n_sel),
            n_join=generator.rng.randint(*n_join),
            n_unidiff=generator.rng.randint(*n_unidiff),
        )
        if check_coverage(query, workload.access_schema).is_covered:
            covered.append(query)
    return covered


def _run_bounded(
    query: Query,
    access_schema: AccessSchema,
    database: Database,
    indexes: IndexSet,
) -> tuple[float, int]:
    """Plan + execute a covered query; returns (seconds, tuples accessed)."""
    coverage = check_coverage(query, access_schema)
    plan = generate_plan(coverage)
    execution = PlanExecutor(database, indexes).execute(plan)
    return execution.elapsed, execution.counter.total


def _run_baseline(
    query: Query, access_schema: AccessSchema, database: Database, indexes: IndexSet
) -> tuple[float, int]:
    result = evaluate_conventional(query, database, access_schema, indexes)
    return result.elapsed, result.counter.total


# ---------------------------------------------------------------------------
# Figure 6 — percentage of covered / boundedly evaluable queries
# ---------------------------------------------------------------------------

def coverage_experiment(
    workload: WorkloadSpec,
    *,
    n_queries: int = 100,
    fractions: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    seed: int = 11,
) -> ExperimentTable:
    """Reproduce Figure 6: % covered and % bounded vs. fraction of ``A`` used.

    For each fraction a random (seed-deterministic) subset of the access
    constraints is used, and for every generated query both coverage (CovChk)
    and bounded evaluability (the rewrite oracle standing in for the paper's
    manual examination) are measured.
    """
    generator = RandomQueryGenerator(workload, seed=seed)
    batch = [query for _, query in generator.generate_batch(n_queries)]
    # Pre-compute the query-side analysis of every query and of its rewrite
    # candidates once; only the schema side changes across fractions.
    checkers = [CoverageChecker(query) for query in batch]
    candidate_checkers = [
        [CoverageChecker(candidate) for _, candidate in rewrite_candidates(query)]
        for query in batch
    ]
    table = ExperimentTable(
        title=f"Figure 6 ({workload.name}): covered / bounded queries vs ‖A‖ fraction",
        columns=["fraction", "constraints", "covered_pct", "bounded_pct"],
    )
    for fraction in fractions:
        subset = (
            workload.access_schema
            if fraction >= 1.0
            else workload.access_schema.sample_fraction(fraction, seed=seed)
        )
        covered = sum(1 for checker in checkers if checker.is_covered(subset))
        bounded = sum(
            1
            for candidates in candidate_checkers
            if any(checker.is_covered(subset) for checker in candidates)
        )
        table.add_row(
            fraction=fraction,
            constraints=len(subset),
            covered_pct=100.0 * covered / len(batch),
            bounded_pct=100.0 * bounded / len(batch),
        )
    return table


# ---------------------------------------------------------------------------
# Figure 5(a,e,i) — varying |D|
# ---------------------------------------------------------------------------

def scale_experiment(
    workload: WorkloadSpec,
    *,
    base_scale: int | None = None,
    scale_factors: Sequence[float] = DEFAULT_SCALE_FACTORS,
    n_queries: int = 5,
    seed: int = 7,
    include_baseline: bool = True,
    include_unminimized: bool = True,
) -> ExperimentTable:
    """Reproduce Figure 5(a,e,i): evalQP / evalQP⁻ / evalDBMS time and P(D_Q) vs |D|."""
    base_scale = base_scale if base_scale is not None else workload.default_scale
    full_database = workload.database(scale=base_scale, seed=seed)
    queries = select_covered_queries(workload, n_queries, seed=seed, database=full_database)
    minimized = [
        minimize_access(query, workload.access_schema).selected for query in queries
    ]
    table = ExperimentTable(
        title=f"Figure 5 |D| sweep ({workload.name})",
        columns=[
            "scale", "db_tuples", "evalQP_s", "evalQPminus_s", "evalDBMS_s",
            "P_DQ", "P_DQ_minus",
        ],
    )
    for factor in scale_factors:
        database = full_database.scaled(factor, seed=seed) if factor < 1.0 else full_database
        indexes = IndexSet.build(database, workload.access_schema, check=False)
        qp_time = qp_access = 0.0
        qpm_time = qpm_access = 0.0
        dbms_time = 0.0
        for query, schema_min in zip(queries, minimized):
            elapsed, accessed = _run_bounded(query, schema_min, database, indexes)
            qp_time += elapsed
            qp_access += accessed
            if include_unminimized:
                elapsed, accessed = _run_bounded(
                    query, workload.access_schema, database, indexes
                )
                qpm_time += elapsed
                qpm_access += accessed
            if include_baseline:
                elapsed, _ = _run_baseline(query, workload.access_schema, database, indexes)
                dbms_time += elapsed
        denominator = max(1, database.size * len(queries))
        table.add_row(
            scale=factor,
            db_tuples=database.size,
            evalQP_s=qp_time / len(queries),
            evalQPminus_s=(qpm_time / len(queries)) if include_unminimized else float("nan"),
            evalDBMS_s=(dbms_time / len(queries)) if include_baseline else float("nan"),
            P_DQ=qp_access / denominator,
            P_DQ_minus=(qpm_access / denominator) if include_unminimized else float("nan"),
        )
    return table


# ---------------------------------------------------------------------------
# Figure 5(b,f,j) and (c,g,k) — varying #-sel and #-join
# ---------------------------------------------------------------------------

def _parameter_sweep(
    workload: WorkloadSpec,
    parameter: str,
    values: Sequence[int],
    *,
    seed: int,
    scale: int | None,
    queries_per_value: int,
    include_baseline: bool,
) -> ExperimentTable:
    scale = scale if scale is not None else workload.default_scale
    database = workload.database(scale=scale, seed=seed)
    indexes = IndexSet.build(database, workload.access_schema, check=False)
    generator = RandomQueryGenerator(workload, database=database, seed=seed)
    table = ExperimentTable(
        title=f"Figure 5 #-{parameter} sweep ({workload.name})",
        columns=[parameter, "queries", "evalQP_s", "evalDBMS_s", "P_DQ"],
    )
    for value in values:
        chosen: list[Query] = []
        attempts = 0
        while len(chosen) < queries_per_value and attempts < 300:
            attempts += 1
            kwargs = {"n_sel": 5, "n_join": 1, "n_unidiff": 0, parameter: value}
            query = generator.generate(**kwargs)
            if check_coverage(query, workload.access_schema).is_covered:
                chosen.append(query)
        if not chosen:
            table.add_row(**{parameter: value}, queries=0, evalQP_s=float("nan"),
                          evalDBMS_s=float("nan"), P_DQ=float("nan"))
            continue
        qp_time = qp_access = dbms_time = 0.0
        for query in chosen:
            elapsed, accessed = _run_bounded(query, workload.access_schema, database, indexes)
            qp_time += elapsed
            qp_access += accessed
            if include_baseline:
                elapsed, _ = _run_baseline(query, workload.access_schema, database, indexes)
                dbms_time += elapsed
        table.add_row(
            **{parameter: value},
            queries=len(chosen),
            evalQP_s=qp_time / len(chosen),
            evalDBMS_s=(dbms_time / len(chosen)) if include_baseline else float("nan"),
            P_DQ=qp_access / max(1, database.size * len(chosen)),
        )
    return table


def selection_experiment(
    workload: WorkloadSpec,
    *,
    values: Sequence[int] = (4, 5, 6, 7, 8, 9),
    seed: int = 13,
    scale: int | None = None,
    queries_per_value: int = 3,
    include_baseline: bool = True,
) -> ExperimentTable:
    """Reproduce Figure 5(b,f,j): vary the number of selection atoms ``#-sel``."""
    return _parameter_sweep(
        workload, "n_sel", values, seed=seed, scale=scale,
        queries_per_value=queries_per_value, include_baseline=include_baseline,
    )


def join_experiment(
    workload: WorkloadSpec,
    *,
    values: Sequence[int] = (0, 1, 2, 3, 4, 5),
    seed: int = 17,
    scale: int | None = None,
    queries_per_value: int = 3,
    include_baseline: bool = True,
) -> ExperimentTable:
    """Reproduce Figure 5(c,g,k): vary the number of joins ``#-join``."""
    return _parameter_sweep(
        workload, "n_join", values, seed=seed, scale=scale,
        queries_per_value=queries_per_value, include_baseline=include_baseline,
    )


def unidiff_experiment(
    workload: WorkloadSpec,
    *,
    values: Sequence[int] = (0, 1, 2, 3, 4, 5),
    seed: int = 19,
    scale: int | None = None,
    queries_per_value: int = 3,
) -> ExperimentTable:
    """Reproduce the #-unidiff observation: bounded plans are insensitive to set operators."""
    return _parameter_sweep(
        workload, "n_unidiff", values, seed=seed, scale=scale,
        queries_per_value=queries_per_value, include_baseline=False,
    )


# ---------------------------------------------------------------------------
# Figure 5(d,h,l) — varying ‖A‖
# ---------------------------------------------------------------------------

def constraints_experiment(
    workload: WorkloadSpec,
    *,
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    seed: int = 23,
    scale: int | None = None,
    n_queries: int = 5,
) -> ExperimentTable:
    """Reproduce Figure 5(d,h,l): evalQP time and P(D_Q) vs the fraction of ``A`` used."""
    scale = scale if scale is not None else workload.default_scale
    database = workload.database(scale=scale, seed=seed)
    queries = select_covered_queries(workload, n_queries, seed=seed, database=database)
    table = ExperimentTable(
        title=f"Figure 5 ‖A‖ sweep ({workload.name})",
        columns=["fraction", "constraints", "covered_queries", "evalQP_s", "P_DQ"],
    )
    for fraction in fractions:
        subset = (
            workload.access_schema
            if fraction >= 1.0
            else workload.access_schema.sample_fraction(fraction, seed=seed)
        )
        indexes = IndexSet.build(database, subset, check=False)
        usable = [q for q in queries if check_coverage(q, subset).is_covered]
        if not usable:
            table.add_row(fraction=fraction, constraints=len(subset), covered_queries=0,
                          evalQP_s=float("nan"), P_DQ=float("nan"))
            continue
        qp_time = qp_access = 0.0
        for query in usable:
            elapsed, accessed = _run_bounded(query, subset, database, indexes)
            qp_time += elapsed
            qp_access += accessed
        table.add_row(
            fraction=fraction,
            constraints=len(subset),
            covered_queries=len(usable),
            evalQP_s=qp_time / len(usable),
            P_DQ=qp_access / max(1, database.size * len(usable)),
        )
    return table


# ---------------------------------------------------------------------------
# Exp-1(III) — effectiveness of minA
# ---------------------------------------------------------------------------

def mina_effect_experiment(
    workload: WorkloadSpec,
    *,
    seed: int = 29,
    scale: int | None = None,
    n_queries: int = 5,
    include_random_baseline: bool = True,
) -> ExperimentTable:
    """Reproduce Exp-1(III): data accessed and index footprint with vs. without minA.

    Also includes an ablation: a "random minimal subset" strategy that removes
    removable constraints in arbitrary order instead of by the weight
    ``w(φ)``, to show what the greedy weighting buys.
    """
    scale = scale if scale is not None else workload.default_scale
    database = workload.database(scale=scale, seed=seed)
    indexes = IndexSet.build(database, workload.access_schema, check=False)
    queries = select_covered_queries(workload, n_queries, seed=seed, database=database)
    table = ExperimentTable(
        title=f"Exp-1(III) minA effectiveness ({workload.name})",
        columns=[
            "strategy", "avg_constraints", "avg_cost", "P_DQ", "index_tuples",
        ],
    )

    def run(strategy: str, chooser: Callable[[Query], AccessSchema]) -> None:
        access_total = 0.0
        cost_total = 0
        constraints_total = 0
        index_tuples = 0
        for query in queries:
            subset = chooser(query)
            accessed = _run_bounded(query, subset, database, indexes)[1]
            access_total += accessed
            cost_total += sum(c.bound for c in subset)
            constraints_total += len(subset)
            index_tuples += sum(
                index.size for index in IndexSet.build(database, subset, check=False)
            )
        count = max(1, len(queries))
        table.add_row(
            strategy=strategy,
            avg_constraints=constraints_total / count,
            avg_cost=cost_total / count,
            P_DQ=access_total / max(1, database.size * count),
            index_tuples=index_tuples // count,
        )

    run("evalQP- (full A)", lambda q: workload.access_schema)
    run("evalQP (minA)", lambda q: minimize_access(q, workload.access_schema).selected)
    if include_random_baseline:
        run(
            "ablation: unweighted greedy",
            lambda q: minimize_access(q, workload.access_schema, c1=0.0, c2=1.0).selected,
        )
    return table


# ---------------------------------------------------------------------------
# Exp-1(IV) — index size and creation time
# ---------------------------------------------------------------------------

def index_size_experiment(
    workload: WorkloadSpec, *, seed: int = 31, scale: int | None = None
) -> ExperimentTable:
    """Reproduce Exp-1(IV): index footprint as a fraction of |D| and build time."""
    scale = scale if scale is not None else workload.default_scale
    database = workload.database(scale=scale, seed=seed)
    started = time.perf_counter()
    indexes = IndexSet.build(database, workload.access_schema, check=False)
    build_seconds = time.perf_counter() - started
    table = ExperimentTable(
        title=f"Exp-1(IV) index size ({workload.name})",
        columns=[
            "db_tuples", "db_cells", "index_tuples", "index_cells",
            "cell_fraction", "build_s", "constraints",
        ],
    )
    table.add_row(
        db_tuples=database.size,
        db_cells=database.cell_size,
        index_tuples=indexes.total_size,
        index_cells=indexes.total_cell_size,
        cell_fraction=indexes.total_cell_size / max(1, database.cell_size),
        build_s=build_seconds,
        constraints=len(workload.access_schema),
    )
    return table


# ---------------------------------------------------------------------------
# Exp-2 — efficiency of the analysis algorithms
# ---------------------------------------------------------------------------

def efficiency_experiment(
    workload: WorkloadSpec,
    *,
    n_queries: int = 20,
    seed: int = 37,
) -> ExperimentTable:
    """Reproduce Exp-2: wall-clock of ChkCov, QPlan, minA, minADAG and minAE."""
    generator = RandomQueryGenerator(workload, seed=seed)
    batch = [query for _, query in generator.generate_batch(n_queries)]
    covered = [
        query for query in batch
        if check_coverage(query, workload.access_schema).is_covered
    ]
    timings: dict[str, list[float]] = {
        "ChkCov": [], "QPlan": [], "minA": [], "minADAG": [], "minAE": [],
    }
    for query in batch:
        started = time.perf_counter()
        check_coverage(query, workload.access_schema)
        timings["ChkCov"].append(time.perf_counter() - started)
    for query in covered:
        coverage = check_coverage(query, workload.access_schema)
        started = time.perf_counter()
        generate_plan(coverage)
        timings["QPlan"].append(time.perf_counter() - started)
        started = time.perf_counter()
        minimize_access(query, workload.access_schema)
        timings["minA"].append(time.perf_counter() - started)
        started = time.perf_counter()
        minimize_access_acyclic(query, workload.access_schema)
        timings["minADAG"].append(time.perf_counter() - started)
        started = time.perf_counter()
        minimize_access_elementary(query, workload.access_schema)
        timings["minAE"].append(time.perf_counter() - started)
    table = ExperimentTable(
        title=f"Exp-2 algorithm efficiency ({workload.name})",
        columns=["algorithm", "runs", "avg_ms", "max_ms"],
    )
    for name, values in timings.items():
        if not values:
            table.add_row(algorithm=name, runs=0, avg_ms=float("nan"), max_ms=float("nan"))
            continue
        table.add_row(
            algorithm=name,
            runs=len(values),
            avg_ms=1000.0 * sum(values) / len(values),
            max_ms=1000.0 * max(values),
        )
    return table


# ---------------------------------------------------------------------------
# Proposition 12 — bounded incremental maintenance
# ---------------------------------------------------------------------------

def maintenance_experiment(
    workload: WorkloadSpec,
    *,
    scales: Sequence[int] = (50, 100, 200, 400),
    delta_size: int = 50,
    seed: int = 41,
) -> ExperimentTable:
    """Show that maintaining ⟨A, I_A⟩ under ΔD costs the same at every |D|."""
    table = ExperimentTable(
        title=f"Proposition 12 maintenance ({workload.name})",
        columns=["scale", "db_tuples", "delta", "maintain_s", "work_units"],
    )
    # Use the same relation and the same ΔD at every scale so the runs are
    # directly comparable; the donor instance is generated at a fixed scale.
    reference = workload.database(scale=scales[0], seed=seed)
    relation_name = max(reference.relation_names(), key=lambda n: len(reference.relation(n)))
    donor = workload.database(scale=max(scales), seed=seed + 1)
    donor_rows = [row for row in donor.relation(relation_name)][:delta_size]
    for scale in scales:
        database = workload.database(scale=scale, seed=seed)
        indexes = IndexSet.build(database, workload.access_schema, check=False)
        updates = [Update.insert(relation_name, row) for row in donor_rows]
        started = time.perf_counter()
        report = apply_updates(database, indexes, workload.access_schema, updates)
        elapsed = time.perf_counter() - started
        table.add_row(
            scale=scale,
            db_tuples=database.size,
            delta=len(updates),
            maintain_s=elapsed,
            work_units=report.work_units,
        )
    return table
