"""Shared plan store and versioned result cache (the serving-core substrate).

Two caches back the hot path of :class:`~repro.core.engine.BoundedEngine`:

* :class:`PlanStore` — an LRU map from canonical query keys
  (:func:`~repro.core.fingerprint.prepared_cache_key`) to prepared-query
  entries.  Everything a prepared entry holds (coverage verdict, minimized
  schema, bounded plan, optimized plan) depends only on the query syntax and
  the access schema, so one store can be **shared across engine instances**
  (or shards) that serve the same access schema, even over divergent data.
  Each entry is tagged with the base relations its plan fetches from
  (:meth:`~repro.core.plan.BoundedPlan.dependency_relations`), so writes
  invalidate only the dependent entries instead of clearing the store.

* :class:`ResultCache` — a per-engine LRU map from ``(query key, dependency
  version snapshot)`` to materialized result rows.  Covered results are
  bounded by the access schema (≤ ``access_bound()`` tuples), which makes
  them cheap to keep; the snapshot of per-relation data versions
  (:class:`~repro.storage.counters.VersionClock`) makes them precise to
  invalidate: an entry is served only while none of its dependent relations
  has been written since it was filled.

Both caches keep hit/miss/eviction/invalidation counts for
:meth:`~repro.core.engine.BoundedEngine.cache_stats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable


@dataclass
class _StoreSlot:
    """One plan-store entry plus the relations whose data its plan reads."""

    entry: object
    dependencies: frozenset[str]


class PlanStore:
    """An LRU store of prepared queries, shareable across engine instances.

    A ``capacity`` of zero (or less) disables caching: every lookup misses
    and nothing is stored.  ``invalidate()`` with no argument drops every
    entry (the conservative legacy behaviour); ``invalidate(relations)``
    drops only entries whose dependency set intersects ``relations`` and
    returns the dropped entries so callers can release derived artifacts
    (e.g. compiled kernels).

    Entries must be data-independent: a store may only be shared by engines
    configured with an **identical access schema**, since plans embed the
    schema's constraints.
    """

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._slots: OrderedDict[Hashable, _StoreSlot] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: entries displaced by a put() overwriting their key
        self.replaced = 0
        #: entries dropped by invalidation (targeted or clear-all)
        self.invalidated = 0
        #: invalidation sweeps performed (one per write or batch)
        self.sweeps = 0

    def __len__(self) -> int:
        return len(self._slots)

    def get(self, key: Hashable) -> object | None:
        slot = self._slots.get(key)
        if slot is None:
            self.misses += 1
            return None
        self._slots.move_to_end(key)
        self.hits += 1
        return slot.entry

    def put(
        self, key: Hashable, entry: object, dependencies: Iterable[str] = ()
    ) -> list[object]:
        """Store ``entry``; returns the entries displaced to make room.

        Displaced entries are both LRU evictions *and* the previous entry of
        ``key`` when one existed (unless it is the very object being re-put):
        a replaced entry is just as dead as an evicted one, and silently
        dropping it would leak the artifacts derived from it.  Callers
        holding such artifacts (compiled kernels in the executor) should
        release them for every returned entry, exactly as they do for
        :meth:`invalidate`'s drops.
        """
        if self.capacity <= 0:
            return []
        displaced: list[object] = []
        previous = self._slots.pop(key, None)
        if previous is not None and previous.entry is not entry:
            displaced.append(previous.entry)
            self.replaced += 1
        self._slots[key] = _StoreSlot(entry=entry, dependencies=frozenset(dependencies))
        while len(self._slots) > self.capacity:
            _, slot = self._slots.popitem(last=False)
            displaced.append(slot.entry)
            self.evictions += 1
        return displaced

    def invalidate(self, relations: Iterable[str] | None = None) -> list[object]:
        """Drop dependent entries after a write; returns the dropped entries.

        With ``relations=None`` every entry is dropped (clear-all).  Otherwise
        only entries whose dependency set intersects ``relations`` are
        dropped — entries prepared for queries that never fetch from the
        written relations stay valid, which is sound because prepared plans
        depend on data *only* through the constraint indexes of the relations
        they fetch from.
        """
        self.sweeps += 1
        if relations is None:
            dropped = [slot.entry for slot in self._slots.values()]
            self._slots.clear()
        else:
            touched = frozenset(relations)
            stale = [
                key for key, slot in self._slots.items() if slot.dependencies & touched
            ]
            dropped = []
            for key in stale:
                dropped.append(self._slots.pop(key).entry)
        self.invalidated += len(dropped)
        return dropped

    def stats(self) -> dict[str, int | float]:
        requests = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": len(self._slots),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / requests) if requests else 0.0,
            "evictions": self.evictions,
            "replaced": self.replaced,
            "invalidated": self.invalidated,
            "sweeps": self.sweeps,
        }


@dataclass
class CachedResult:
    """A materialized covered result plus the version snapshot it is valid for."""

    rows: frozenset[tuple]
    columns: tuple[str, ...]
    dependencies: tuple[str, ...]
    snapshot: tuple[int, ...]


class ResultCache:
    """An LRU cache of bounded results, validated by data-version snapshots.

    Keys are the same canonical query keys as the plan store; each entry
    remembers the ``(relation, version)`` snapshot of its plan's dependent
    relations at fill time.  A lookup hits only when the caller's current
    snapshot matches — entries outlived by a write to a dependent relation
    are dropped on probe (counted as ``stale``) or by an explicit targeted
    ``invalidate`` sweep.

    The cache is **per engine** (per database): results are data-dependent,
    unlike the shareable :class:`PlanStore`.

    ``max_rows`` is the admission threshold: results with more rows are not
    cached.  Fetched inputs are bounded by ``access_bound()``, but a plan's
    *output* can exceed that (e.g. a product of two fetched sets), so the
    LRU alone would bound entry count, not memory.
    """

    def __init__(self, capacity: int = 256, max_rows: int = 100_000):
        self.capacity = capacity
        self.max_rows = max_rows
        #: results refused admission for exceeding ``max_rows``
        self.oversized = 0
        self._entries: OrderedDict[Hashable, CachedResult] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.evictions = 0
        self.invalidated = 0
        self.sweeps = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, snapshot: tuple[int, ...]) -> CachedResult | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.snapshot != snapshot:
            # The data moved on under this entry; drop it eagerly.
            del self._entries[key]
            self.stale += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(
        self,
        key: Hashable,
        rows: frozenset[tuple],
        columns: tuple[str, ...],
        dependencies: Iterable[str],
        snapshot: tuple[int, ...],
    ) -> None:
        if self.capacity <= 0:
            return
        if len(rows) > self.max_rows:
            self.oversized += 1
            return
        self._entries[key] = CachedResult(
            rows=rows,
            columns=columns,
            dependencies=tuple(dependencies),
            snapshot=snapshot,
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, relations: Iterable[str] | None = None) -> int:
        """Purge entries depending on ``relations`` (all entries when ``None``).

        Version snapshots already guarantee stale entries are never *served*;
        the sweep exists to bound memory and to surface invalidation counts
        in the stats.  Returns the number of entries dropped.
        """
        self.sweeps += 1
        if relations is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            touched = frozenset(relations)
            stale = [
                key
                for key, entry in self._entries.items()
                if touched.intersection(entry.dependencies)
            ]
            for key in stale:
                del self._entries[key]
            dropped = len(stale)
        self.invalidated += dropped
        return dropped

    def stats(self) -> dict[str, int | float]:
        requests = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / requests) if requests else 0.0,
            "stale": self.stale,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
            "sweeps": self.sweeps,
            "oversized": self.oversized,
        }
