"""Reference relational-algebra evaluation over in-memory databases.

This is the "ground truth" evaluator: it computes ``Q(D)`` by straightforward
bottom-up evaluation of the query tree under set semantics.  It also serves as
the core of the conventional-DBMS baseline (:mod:`repro.evaluator.baseline`),
which layers a simple index-aware scan strategy and access accounting on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from ..core.errors import QueryError
from ..core.query import (
    Comparison,
    Constant,
    Difference,
    Join,
    Predicate,
    Product,
    Projection,
    Query,
    Relation,
    Rename,
    Selection,
    Union,
)
from ..core.schema import Attribute
from ..storage.counters import AccessCounter
from ..storage.database import Database

Row = tuple


@dataclass(frozen=True)
class ResultSet:
    """A named intermediate or final result: ordered columns plus a set of rows."""

    columns: tuple[str, ...]
    rows: frozenset[Row]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column_position(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise QueryError(
                f"result has no column {column!r}; columns: {list(self.columns)}"
            ) from None

    def as_dicts(self) -> list[dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in sorted(self.rows, key=repr)]

    def values(self, column: str) -> frozenset:
        position = self.column_position(column)
        return frozenset(row[position] for row in self.rows)


def _predicate_matcher(
    condition: Predicate, columns: Sequence[str]
) -> Callable[[Row], bool]:
    """Compile a query predicate into a row filter over named columns."""
    compiled: list[tuple[int, str, object, int | None]] = []
    positions: dict[str, int] = {}
    for index, column in enumerate(columns):
        positions.setdefault(column, index)
    for atom in condition.atoms():
        if not isinstance(atom, Comparison):  # pragma: no cover - defensive
            raise QueryError(f"unsupported predicate {atom}")
        left, op, right = atom.left, atom.op, atom.right
        if isinstance(left, Constant) and isinstance(right, Attribute):
            left, right = right, left
            op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(op, op)
        if not isinstance(left, Attribute):
            raise QueryError(f"predicate {atom} compares two constants")
        try:
            left_pos = positions[str(left)]
            if isinstance(right, Attribute):
                compiled.append((left_pos, op, None, positions[str(right)]))
            else:
                compiled.append((left_pos, op, right.value, None))
        except KeyError as missing:
            raise QueryError(
                f"predicate {atom} references missing column {missing.args[0]!r}"
            ) from None

    def matches(row: Row) -> bool:
        for left_pos, op, constant, right_pos in compiled:
            left_value = row[left_pos]
            right_value = row[right_pos] if right_pos is not None else constant
            if not _compare(left_value, op, right_value):
                return False
        return True

    return matches


def _compare(left: object, op: str, right: object) -> bool:
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        return left >= right  # type: ignore[operator]
    except TypeError:
        # Incomparable types under an ordering operator: treat as non-matching.
        return False


class AlgebraEvaluator:
    """Bottom-up RA evaluation.  ``relation_source`` lets subclasses replace scans."""

    def __init__(self, database: Database, counter: AccessCounter | None = None):
        self.database = database
        self.counter = counter if counter is not None else AccessCounter()

    # -- relation access (overridden by the baseline evaluator) ---------------------
    def scan_relation(self, node: Relation, context: Query) -> ResultSet:
        relation = self.database.relation(node.base)
        columns = tuple(str(a) for a in node.output_attributes())
        self.counter.record_scan(node.base, len(relation))
        return ResultSet(columns=columns, rows=frozenset(relation.rows))

    # -- evaluation --------------------------------------------------------------------
    def evaluate(self, query: Query) -> ResultSet:
        return self._evaluate(query, query)

    def _evaluate(self, node: Query, context: Query) -> ResultSet:
        if isinstance(node, Relation):
            return self.scan_relation(node, context)
        if isinstance(node, Selection):
            child = self._evaluate(node.child, context)
            matcher = _predicate_matcher(node.condition, child.columns)
            return ResultSet(child.columns, frozenset(r for r in child.rows if matcher(r)))
        if isinstance(node, Projection):
            child = self._evaluate(node.child, context)
            positions = [child.column_position(str(a)) for a in node.attributes]
            columns = tuple(str(a) for a in node.attributes)
            rows = frozenset(tuple(row[p] for p in positions) for row in child.rows)
            return ResultSet(columns, rows)
        if isinstance(node, Product):
            left = self._evaluate(node.left, context)
            right = self._evaluate(node.right, context)
            return _cross(left, right)
        if isinstance(node, Join):
            left = self._evaluate(node.left, context)
            right = self._evaluate(node.right, context)
            return _join(left, right, node.condition)
        if isinstance(node, Union):
            left = self._evaluate(node.left, context)
            right = self._evaluate(node.right, context)
            _check_arity(left, right, "union")
            return ResultSet(left.columns, left.rows | right.rows)
        if isinstance(node, Difference):
            left = self._evaluate(node.left, context)
            right = self._evaluate(node.right, context)
            _check_arity(left, right, "difference")
            return ResultSet(left.columns, left.rows - right.rows)
        if isinstance(node, Rename):
            child = self._evaluate(node.child, context)
            columns = tuple(str(a) for a in node.output_attributes())
            return ResultSet(columns, child.rows)
        raise QueryError(f"cannot evaluate query node {type(node).__name__}")


def _check_arity(left: ResultSet, right: ResultSet, operation: str) -> None:
    if len(left.columns) != len(right.columns):
        raise QueryError(
            f"{operation} operands have different arities: "
            f"{len(left.columns)} vs {len(right.columns)}"
        )


def _cross(left: ResultSet, right: ResultSet) -> ResultSet:
    columns = left.columns + right.columns
    rows = frozenset(l + r for l in left.rows for r in right.rows)
    return ResultSet(columns, rows)


def _join(left: ResultSet, right: ResultSet, condition: Predicate) -> ResultSet:
    """Hash-join on the equality atoms that span both sides; filter the rest."""
    columns = left.columns + right.columns
    left_cols, right_cols = set(left.columns), set(right.columns)
    hash_pairs: list[tuple[int, int]] = []
    residual: list[Comparison] = []
    for atom in condition.atoms():
        if (
            isinstance(atom, Comparison)
            and atom.is_equality
            and isinstance(atom.left, Attribute)
            and isinstance(atom.right, Attribute)
        ):
            l, r = str(atom.left), str(atom.right)
            if l in left_cols and r in right_cols:
                hash_pairs.append((left.columns.index(l), right.columns.index(r)))
                continue
            if r in left_cols and l in right_cols:
                hash_pairs.append((left.columns.index(r), right.columns.index(l)))
                continue
        residual.append(atom)  # type: ignore[arg-type]

    if hash_pairs:
        buckets: dict[tuple, list[Row]] = {}
        for row in right.rows:
            key = tuple(row[rp] for _, rp in hash_pairs)
            buckets.setdefault(key, []).append(row)
        joined = set()
        for row in left.rows:
            key = tuple(row[lp] for lp, _ in hash_pairs)
            for match in buckets.get(key, ()):
                joined.add(row + match)
        rows: frozenset[Row] = frozenset(joined)
    else:
        rows = frozenset(l + r for l in left.rows for r in right.rows)

    if residual:
        from ..core.query import conjunction

        matcher = _predicate_matcher(conjunction(residual), columns)  # type: ignore[arg-type]
        rows = frozenset(r for r in rows if matcher(r))
    return ResultSet(columns, rows)


def evaluate(query: Query, database: Database, counter: AccessCounter | None = None) -> ResultSet:
    """Evaluate ``query`` over ``database`` (reference semantics)."""
    return AlgebraEvaluator(database, counter).evaluate(query)
