"""Federated scatter/gather throughput vs a single-engine reference.

Measures what sharding costs (and buys) on the repeated-covered-query hot
path: the same covered query set is served by one `BoundedEngine` and by
`ShardRouter` federations of increasing shard counts over heterogeneous
(memory/SQLite alternating) backends.  Result caches are disabled on **both**
sides so the numbers measure scatter/gather execution, not cache hits — a
federated result-cache hit costs the same as a single-engine one and would
just flatter the router.

Correctness is asserted before anything is timed:

* every covered query's federated rows are row-for-row identical to the
  uncached reference evaluator on every topology;
* a routed mixed delete/re-insert batch leaves every query's rows identical
  to the reference evaluated on a mirror database receiving the same batch;
* a replicated topology (2 replicas per shard) serves identical rows both
  healthy and with one replica killed — the degraded throughput and the
  failover/quarantine counters land in the report.

The JSON report feeds ``track_trajectory.py --federated``, which merges the
federated throughput into the tracked ``BENCH_trajectory.json`` under the
same >30% regression gate as the hot-path numbers.

Run directly::

    PYTHONPATH=src python benchmarks/bench_federated.py --quick --output BENCH_federated.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # allow running without an editable install
    sys.path.insert(0, str(SRC))

from repro.bench.experiments import select_covered_queries  # noqa: E402
from repro.core.engine import BoundedEngine  # noqa: E402
from repro.evaluator.algebra import evaluate  # noqa: E402
from repro.sharding import ShardFaultInjector, build_topology  # noqa: E402
from repro.workloads import WORKLOADS  # noqa: E402


def _throughput(engine, queries, repeats: int) -> float:
    executions = 0
    started = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            engine.execute(query)
            executions += 1
    elapsed = time.perf_counter() - started
    return (executions / elapsed) if elapsed > 0 else float("inf")


def _check_write_identity(workload, queries, *, scale: int, shards: int,
                          batch_size: int) -> int:
    """Route a mixed delete/re-insert batch; rows must match a mirrored reference.

    Returns the number of updates applied.  The mirror database receives
    exactly the batches the router fully applied (the soak's write_observer
    seam), so ``evaluate(query, mirror)`` is the single-database truth for
    the federation's post-write state.
    """
    from repro.discovery.maintenance import Update

    mirror = workload.database(scale=scale, seed=7)

    def observe(updates) -> None:
        for update in updates:
            instance = mirror.relation(update.relation)
            prepared = instance.prepare(update.row)
            if update.kind == "insert":
                instance.insert(prepared)
            else:
                instance.delete(prepared)

    router = build_topology(
        mirror, workload.access_schema, shards=shards, write_observer=observe
    )
    dependencies: set[str] = set()
    for query in queries:
        prepared, _ = router.prepare(query)
        dependencies.update(prepared.dependencies)
    relation = sorted(
        d for d in dependencies if len(mirror.relation(d)) >= batch_size
    )
    if not relation:
        return 0
    victims = sorted(mirror.relation(relation[0]).rows)[:batch_size]
    batch = [Update.delete(relation[0], row) for row in victims]
    batch += [Update.insert(relation[0], row) for row in victims[: batch_size // 2]]
    report = router.apply_updates(batch)
    for query in queries:
        served = router.execute(query).rows
        reference = evaluate(query, mirror).rows
        if served != reference:
            raise AssertionError(
                f"federated rows diverged from the mirrored reference after a "
                f"routed batch ({len(served)} vs {len(reference)} rows) for:\n{query}"
            )
    return report.applied


def _bench_replicated(workload, queries, expected, single_qps, *, scale: int,
                      shards: int, repeats: int) -> dict:
    """Replicated topology: healthy throughput, then one replica killed.

    Measures what replication costs on the hot path (lockstep writes are
    free on reads; the extra cost is cloning at build time) and what a dead
    replica costs once failover reads kick in.  Rows are asserted identical
    to the reference before either number is taken, and again with the
    replica dead — a failover read that served a wrong row would fail the
    bench, not just skew it.
    """
    database = workload.database(scale=scale, seed=7)
    router = build_topology(
        database, workload.access_schema, shards=shards, replicas=2,
        result_cache_size=0,
    )
    for query in queries:
        rows = router.execute(query).rows
        if rows != expected[id(query)]:
            raise AssertionError(
                f"replicated rows differ from the reference for:\n{query}"
            )
    healthy_qps = _throughput(router, queries, repeats)

    injector = ShardFaultInjector(seed=7)
    try:
        injector.kill(router.shards[0].replicas[0])
        for query in queries:
            rows = router.execute(query).rows
            if rows != expected[id(query)]:
                raise AssertionError(
                    f"failover rows differ from the reference for:\n{query}"
                )
        degraded_qps = _throughput(router, queries, repeats)
    finally:
        injector.uninstall()

    replication = router.replication_stats()
    return {
        "replicas": 2,
        "shards": shards,
        "qps": round(healthy_qps, 2),
        "ratio": round(healthy_qps / single_qps, 3) if single_qps else None,
        "degraded_qps": round(degraded_qps, 2),
        "degraded_ratio": (
            round(degraded_qps / healthy_qps, 3) if healthy_qps else None
        ),
        "replication": replication,
    }


def bench_workload(name: str, *, scale: int, query_count: int, repeats: int,
                   shard_counts: tuple[int, ...]) -> dict:
    workload = WORKLOADS[name]
    database = workload.database(scale=scale, seed=7)
    queries = select_covered_queries(
        workload, count=query_count, seed=7, database=database
    )
    if not queries:
        return {"workload": name, "skipped": "no covered queries generated"}

    single = BoundedEngine(
        database, workload.access_schema, check_constraints=False, result_cache_size=0
    )
    expected = {id(q): evaluate(q, database).rows for q in queries}
    for query in queries:
        if single.execute(query).rows != expected[id(query)]:
            raise AssertionError(f"{name}: single-engine mismatch for\n{query}")

    routers = {}
    for shards in shard_counts:
        router = build_topology(
            database, workload.access_schema, shards=shards, result_cache_size=0
        )
        for query in queries:
            rows = router.execute(query).rows
            if rows != expected[id(query)]:
                raise AssertionError(
                    f"{name}: federated rows ({shards} shards) differ from the "
                    f"reference ({len(rows)} vs {len(expected[id(query)])}) for:\n{query}"
                )
        routers[shards] = router

    single_qps = _throughput(single, queries, repeats)
    per_topology = {}
    for shards, router in routers.items():
        qps = _throughput(router, queries, repeats)
        scatter = router.metrics.snapshot()
        scatter.pop("shard_latency", None)  # per-shard quantiles stay in soak reports
        per_topology[str(shards)] = {
            "qps": round(qps, 2),
            "ratio": round(qps / single_qps, 3) if single_qps else None,
            "backends": [shard.kind for shard in router.shards],
            "scatter_gather": scatter,
        }

    writes_applied = _check_write_identity(
        workload, queries, scale=scale, shards=max(shard_counts), batch_size=8
    )
    replicated = _bench_replicated(
        workload, queries, expected, single_qps,
        scale=scale, shards=min(shard_counts), repeats=repeats,
    )

    top = per_topology[str(max(shard_counts))]
    return {
        "workload": name,
        "scale": scale,
        "queries": len(queries),
        "single_qps": round(single_qps, 2),
        "topologies": per_topology,
        "federated_qps": top["qps"],
        "federated_ratio": top["ratio"],
        "replicated": replicated,
        "write_identity_updates": writes_applied,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small scale / few repeats (CI mode)")
    parser.add_argument("--scale", type=int, default=None, help="workload scale")
    parser.add_argument("--queries", type=int, default=None,
                        help="covered queries per workload")
    parser.add_argument("--repeats", type=int, default=None,
                        help="passes over the query set")
    parser.add_argument("--shards", type=int, nargs="+", default=None,
                        help="shard counts to measure (default: 2 4, quick: 2 3)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report to this path")
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (100 if args.quick else 200)
    query_count = args.queries if args.queries is not None else (3 if args.quick else 5)
    repeats = args.repeats if args.repeats is not None else (5 if args.quick else 20)
    shard_counts = tuple(args.shards) if args.shards else ((2, 3) if args.quick else (2, 4))

    results = []
    for name in sorted(WORKLOADS):
        result = bench_workload(
            name, scale=scale, query_count=query_count, repeats=repeats,
            shard_counts=shard_counts,
        )
        results.append(result)
        if "skipped" in result:
            print(f"{name}: skipped ({result['skipped']})")
            continue
        per = ", ".join(
            f"{shards}sh {data['qps']:.1f} q/s ({data['ratio']:.2f}x)"
            for shards, data in result["topologies"].items()
        )
        print(
            f"{name}: single {result['single_qps']:.1f} q/s | {per} | "
            f"rows identical, {result['write_identity_updates']} routed updates verified"
        )
        replicated = result["replicated"]
        replication = replicated["replication"]
        print(
            f"{name}: replicated x{replicated['replicas']} "
            f"{replicated['qps']:.1f} q/s healthy, "
            f"{replicated['degraded_qps']:.1f} q/s with a replica killed "
            f"({replicated['degraded_ratio']}x) | "
            f"{replication['failovers']} failovers, "
            f"{replication['quarantines']} quarantines, rows identical"
        )

    measured = [r for r in results if r.get("federated_ratio") is not None]
    mean_ratio = (
        round(sum(r["federated_ratio"] for r in measured) / len(measured), 3)
        if measured
        else None
    )
    report = {
        "benchmark": "federated",
        "mode": "quick" if args.quick else "full",
        "scale": scale,
        "repeats": repeats,
        "shard_counts": list(shard_counts),
        "workloads": results,
        "mean_federated_ratio": mean_ratio,
    }
    print(f"mean federated/single throughput ratio (at {max(shard_counts)} shards): {mean_ratio}x")

    if args.output is not None:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
