"""Tests for the SQLite backend (bounded evaluation on a real SQL engine)."""

import pytest

from repro.core.errors import StorageError
from repro.core.planner import plan_query
from repro.backends.sqlite import SQLiteBackend
from repro.evaluator.algebra import evaluate
from repro.workloads import facebook


@pytest.fixture
def backend(fb_database):
    with SQLiteBackend(fb_database) as backend:
        yield backend


class TestSetup:
    def test_base_tables_loaded(self, backend, fb_database):
        result = backend.run_sql('SELECT COUNT(*) FROM "dine"')
        assert result.rows == frozenset({(len(fb_database.relation("dine")),)})

    def test_index_tables_created(self, backend, fb_access):
        created = backend.create_index_tables(fb_access)
        assert len(created) == 4
        assert backend.index_size() > 0
        # creating again is a no-op
        assert backend.create_index_tables(fb_access) == {}

    def test_missing_index_table_rejected(self, backend, fb_q1, fb_access):
        plan = plan_query(fb_q1, fb_access)
        with pytest.raises(StorageError, match="has not been created"):
            backend.run_bounded_plan(plan)


class TestExecutionAgreement:
    def test_bounded_plan_matches_reference(self, backend, fb_q1, fb_access, fb_database):
        backend.create_index_tables(fb_access)
        plan = plan_query(fb_q1, fb_access)
        result = backend.run_bounded_plan(plan)
        assert result.rows == evaluate(fb_q1, fb_database).rows

    def test_bounded_plan_with_difference(self, backend, fb_q0_prime, fb_access, fb_database):
        backend.create_index_tables(fb_access)
        plan = plan_query(fb_q0_prime, fb_access)
        result = backend.run_bounded_plan(plan)
        assert result.rows == evaluate(fb_q0_prime, fb_database).rows

    def test_original_query_matches_reference(self, backend, fb_q0, fb_database):
        result = backend.run_query(fb_q0)
        assert result.rows == evaluate(fb_q0, fb_database).rows

    def test_bounded_and_original_agree(self, backend, fb_q1, fb_access):
        backend.create_index_tables(fb_access)
        bounded = backend.run_bounded_plan(plan_query(fb_q1, fb_access))
        original = backend.run_query(fb_q1)
        assert bounded.rows == original.rows


class TestMaintenance:
    def test_apply_insert_refreshes_index_tables(self, backend, fb_access, fb_database):
        backend.create_index_tables(fb_access)
        q1 = facebook.query_q1()
        plan = plan_query(q1, fb_access)
        before = backend.run_bounded_plan(plan).rows
        backend.apply_insert("cafe", ("c_sql", "nyc"))
        backend.apply_insert("friend", ("p0", "p_sql"))
        backend.apply_insert("dine", ("p_sql", "c_sql", "may", 2015))
        after = backend.run_bounded_plan(plan).rows
        assert ("c_sql",) in after
        assert before <= after

    def test_apply_insert_deduplicates_index_rows(self, backend, fb_access):
        backend.create_index_tables(fb_access)
        size_before = backend.index_size()
        # a duplicate of an existing cafe tuple adds nothing to the index tables
        existing = next(iter(backend.database.relation("cafe").rows))
        backend.apply_insert("cafe", existing)
        assert backend.index_size() == size_before
