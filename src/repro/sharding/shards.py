"""Shard backends: heterogeneous engines behind one fetch/write protocol.

A shard owns one disjoint fragment of the data and answers two things for
the router: *bounded fetches* (the scatter half of scatter/gather — one
``fetch(X ∈ keys, R, Y)`` over its fragment's constraint index, ≤ ``|keys| ·
N`` tuples by the access schema) and *batched writes* (the routed portion of
an update batch, applied through the shard's own maintenance path).  Each
shard also exposes its fragment's :class:`~repro.storage.counters.
VersionClock` so the router can snapshot-validate a merge: partials fetched
from different epochs of the same shard are never combined.

Two interchangeable backends implement the protocol behind the same
:class:`~repro.core.plan.BoundedPlan` boundary:

* :class:`EngineShard` — an in-memory :class:`~repro.core.engine.
  BoundedEngine`; fetches are :class:`~repro.storage.index.ConstraintIndex`
  lookups, writes go through the engine's batched ``apply_updates`` (one
  clock bump + one cache sweep per batch).
* :class:`SQLiteShard` — the fragment mirrored into SQLite via
  :class:`~repro.backends.sqlite.SQLiteBackend`; fetches run SQL over the
  materialized ``ind_…`` index tables (the paper's Fig. 4 C1 component),
  writes maintain base *and* index tables through ``apply_insert`` /
  ``apply_delete``.

One federated plan can therefore execute fetch steps on both kinds in the
same run — the heterogeneity ROADMAP item 1 asks for.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..backends.sqlite import SQLiteBackend
from ..core.access import AccessConstraint, AccessSchema
from ..core.engine import BoundedEngine
from ..core.errors import MaintenanceError, StorageError
from ..core.planstore import PlanStore, ResultCache
from ..discovery.maintenance import MaintenanceReport, Update
from ..storage.counters import AccessCounter
from ..storage.database import Database

Row = tuple


class Shard:
    """The protocol every shard backend implements (plus shared plumbing)."""

    kind: str = "abstract"

    def __init__(self, name: str, database: Database):
        self.name = name
        self.database = database

    # -- reads -------------------------------------------------------------------
    def fetch(
        self,
        constraint: AccessConstraint,
        base_relation: str,
        keys: Iterable[Sequence],
        counter: AccessCounter | None = None,
        predicate: Callable[[Row], bool] | None = None,
    ) -> frozenset[Row]:
        """Distinct index rows of ``constraint`` matching any key, this fragment only.

        ``predicate``, when given, is a row filter pushed down from a select
        step sitting directly on the fetch: the shard applies it *after* the
        index lookup (the tuples are still accessed and still counted — the
        access bound is about data touched, not data shipped) but *before*
        returning, so only matching rows cross the shard boundary and enter
        the router's merge.
        """
        raise NotImplementedError

    def relation_rows(self, relation: str) -> tuple[Row, ...]:
        """All rows of ``relation`` held by this fragment (federated fallback)."""
        return self.database.relation(relation).rows

    # -- writes ------------------------------------------------------------------
    def apply_updates(self, updates: Iterable[Update]) -> MaintenanceReport:
        """Apply the routed portion of a batch; one clock bump per call."""
        raise NotImplementedError

    # -- versioning ----------------------------------------------------------------
    def snapshot(self, relations: Iterable[str]) -> tuple[int, ...]:
        return self.database.clock.snapshot(relations)

    def validate(self, relations: Iterable[str], snapshot: tuple[int, ...]) -> bool:
        return self.database.clock.validate(relations, snapshot)

    # -- reporting ---------------------------------------------------------------
    def cache_counters(self) -> tuple[int, int]:
        """``(hits, misses)`` of this shard's fetch-partial cache (0 if none)."""
        return (0, 0)

    def stats(self) -> dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "tuples": self.database.size,
            "version": self.database.version,
        }


class EngineShard(Shard):
    """An in-memory shard: fetches via ``ConstraintIndex``, writes via the engine.

    Each engine shard keeps a small :class:`~repro.core.planstore.
    ResultCache` of *fetch partials* — the ``(constraint, key-set)`` →
    row-set pairs its index lookups produce — stamped with the shard's
    per-relation clock version and swept by routed writes.  The router's
    result cache serves whole federated results; this one serves the
    scatter's building blocks, so two different queries sharing a fetch
    step (or one query re-executed after an unrelated relation changed)
    skip the index walk.  Hits replay the exact access accounting of the
    lookups they stand in for (the bound is about tuples *touched*, and a
    cached partial stands for the same touched tuples), so ``P(D_Q)``
    reporting is identical with or without the cache.
    """

    kind = "memory"

    def __init__(
        self,
        name: str,
        database: Database,
        access_schema: AccessSchema,
        *,
        plan_store: PlanStore | None = None,
        fetch_cache_size: int = 128,
    ):
        super().__init__(name, database)
        self.engine = BoundedEngine(
            database,
            access_schema,
            check_constraints=False,
            plan_store=plan_store,
            # The router keeps the (cross-shard) result cache; the shard-local
            # cache below holds fetch *partials*, not query results.
            result_cache_size=0,
        )
        self.fetch_cache = ResultCache(fetch_cache_size)
        #: per-entry ``(index_probes, tuples_fetched)`` so cache hits replay
        #: the miss path's accounting exactly (fetched ≥ |rows|: a tuple
        #: reached through two keys is counted per lookup)
        self._fetch_costs: dict = {}

    def fetch(
        self,
        constraint: AccessConstraint,
        base_relation: str,
        keys: Iterable[Sequence],
        counter: AccessCounter | None = None,
        predicate: Callable[[Row], bool] | None = None,
    ) -> frozenset[Row]:
        keys = [tuple(key) for key in keys]
        cache_key = None
        if predicate is None and self.fetch_cache.capacity > 0:
            # Predicated fetches bypass the cache: the pushed-down predicate
            # is a compiled closure with no stable identity to key on.
            cache_key = (constraint, base_relation, frozenset(keys))
            stamp = self.database.clock.snapshot((base_relation,))
            entry = self.fetch_cache.get(cache_key, stamp)
            if entry is not None:
                cost = self._fetch_costs.get(cache_key)
                if cost is not None:
                    if counter is not None:
                        counter.record_fetch_many(base_relation, cost[0], cost[1])
                    return entry.rows
        indexes = self.engine.indexes
        index = indexes.get(constraint)
        if index is None:
            index = indexes.find(base_relation, constraint.lhs, constraint.rhs)
        if index is None:
            raise StorageError(
                f"shard {self.name!r} has no index for constraint {constraint} "
                f"(base relation {base_relation!r})"
            )
        local = AccessCounter()
        rows: set[Row] = set()
        for key in keys:
            rows.update(index.lookup(key, local))
        if counter is not None:
            counter.merge(local)
        frozen = frozenset(rows)
        if cache_key is not None:
            self.fetch_cache.put(
                cache_key,
                rows=frozen,
                columns=(),
                dependencies=(base_relation,),
                snapshot=self.database.clock.snapshot((base_relation,)),
            )
            self._fetch_costs[cache_key] = (local.index_probes, local.fetched)
        if predicate is not None:
            frozen = frozenset(filter(predicate, frozen))
        return frozen

    def apply_updates(self, updates: Iterable[Update]) -> MaintenanceReport:
        try:
            report = self.engine.apply_updates(updates)
        except MaintenanceError as error:
            # A torn batch leaves shard state suspect: sweep every partial
            # rather than reason about which prefix survived.
            self.fetch_cache.invalidate(None)
            self._fetch_costs.clear()
            raise error
        if report.touched_relations:
            self.fetch_cache.invalidate(sorted(report.touched_relations))
            self._prune_costs()
        return report

    def _prune_costs(self) -> None:
        if len(self._fetch_costs) > 4 * self.fetch_cache.capacity:
            live = self.fetch_cache._entries
            self._fetch_costs = {
                key: cost for key, cost in self._fetch_costs.items() if key in live
            }

    def cache_counters(self) -> tuple[int, int]:
        return (self.fetch_cache.hits, self.fetch_cache.misses)


class SQLiteShard(Shard):
    """A SQLite-mirrored shard: fetches via SQL over the ``ind_…`` index tables.

    The fragment is kept twice — as a :class:`Database` (the version clock
    and the rows the federated fallback gathers) and as its SQLite mirror.
    The write path maintains both in lockstep through the backend's
    ``apply_insert``/``apply_delete``, which is exactly the mirror write path
    this PR's satellite bugfixes harden.
    """

    kind = "sqlite"

    def __init__(self, name: str, database: Database, access_schema: AccessSchema):
        super().__init__(name, database)
        self.access_schema = access_schema
        self.backend = SQLiteBackend(database)
        self.backend.create_index_tables(access_schema)

    def fetch(
        self,
        constraint: AccessConstraint,
        base_relation: str,
        keys: Iterable[Sequence],
        counter: AccessCounter | None = None,
        predicate: Callable[[Row], bool] | None = None,
    ) -> frozenset[Row]:
        rows = self.backend.fetch_index(constraint, keys, base_relation=base_relation)
        if counter is not None:
            counter.record_fetch(base_relation, len(rows))
        if predicate is not None:
            rows = frozenset(filter(predicate, rows))
        return rows

    def apply_updates(self, updates: Iterable[Update]) -> MaintenanceReport:
        report = MaintenanceReport()
        for update in updates:
            relation = self.database.relation(update.relation)
            prepared = relation.prepare(update.row)
            if update.kind == "insert":
                if relation.insert(prepared):
                    self.backend.apply_insert(update.relation, prepared)
                    report.applied += 1
                    report.touched_relations.add(update.relation)
                else:
                    report.skipped += 1
            else:
                if relation.delete(prepared):
                    self.backend.apply_delete(update.relation, prepared)
                    report.applied += 1
                    report.touched_relations.add(update.relation)
                else:
                    report.skipped += 1
        if report.touched_relations:
            report.version = self.database.clock.bump(sorted(report.touched_relations))
        return report

    def close(self) -> None:
        self.backend.close()
