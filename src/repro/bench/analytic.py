"""Hand-authored analytic queries for the cold-path benchmark.

The random generator of :mod:`repro.bench.experiments` produces *point*
queries: every relation occurrence is pinned by constant selections, so the
covered plans fetch a handful of tuples and execution cost is dominated by
per-step overhead.  Those are the right workload for the plan/result caches,
but they say nothing about the cost of actually *running* a plan — the cold
path a serving tier pays on every cache miss.

The queries below are still covered, bounded queries over the bundled
workloads, but they traverse the high-fan-out access constraints (districts
→ accidents, airports → flights → planes, …), so their plans carry access
bounds in the tens of thousands and their executions process thousands of
rows through fetch, selection, product and verification-join kernels.  They
are the workload where the executor mode choice matters; the cold-path
benchmark cross-checks row and columnar results for identity before timing
either.
"""

from __future__ import annotations

from ..core.query import Comparison, Constant, Query, eq, relation
from ..core.schema import DatabaseSchema
from ..workloads.base import WorkloadSpec


def _airca(schema: DatabaseSchema) -> list[Query]:
    airports = relation(schema, "airports")
    flights = relation(schema, "flights")
    carriers = relation(schema, "carriers")
    planes = relation(schema, "planes")
    # Aircraft models operated out of one state's airports: airports(state)
    # -> flights(origin -> airline_id) -> planes(airline_id -> tail_num),
    # filtered on build year.  Bound ≈ 40 airports × 28 airlines × 60 tails.
    fleet = (
        airports.join(flights, eq(airports["airport_id"], flights["origin"]))
        .join(planes, eq(flights["airline_id"], planes["airline_id"]))
        .select(eq(airports["state"], "AK"))
        .select(Comparison(planes["year_built"], ">=", Constant(1990)))
        .project([planes["model"], planes["year_built"]])
    )
    # Carriers serving one state, with their country: the same origin chain
    # ending at the carriers dimension.
    serving = (
        airports.join(flights, eq(airports["airport_id"], flights["origin"]))
        .join(carriers, eq(flights["airline_id"], carriers["airline_id"]))
        .select(eq(airports["state"], "AK"))
        .project([carriers["carrier_name"], carriers["country"]])
    )
    return [fleet, serving]


def _mcbm(schema: DatabaseSchema) -> list[Query]:
    cells = relation(schema, "cells")
    # Cell capacity audit for one region: cells(region -> cell_id) then the
    # per-cell detail fetch.  MCBM's access schema keys all its large
    # relations on subscriber/caller ids that no constraint fans out to, so
    # this is the largest covered scan the schema admits — the cold-path
    # benchmark reports its (modest) speedup honestly rather than skipping
    # the workload.
    capacity = (
        cells.select(eq(cells["region"], "region_1"))
        .select(Comparison(cells["capacity_class"], ">=", Constant(2)))
        .project([cells["cell_id"], cells["capacity_class"]])
    )
    return [capacity]


def _tfacc(schema: DatabaseSchema) -> list[Query]:
    districts = relation(schema, "districts")
    accidents = relation(schema, "accidents")
    roads = relation(schema, "roads")
    # Severe accidents of one region: districts(region -> district) crossed
    # with the year domain feeds accidents((district, year) -> accident_id),
    # then the per-accident detail fetch and a non-fetchable casualty filter.
    severe = (
        districts.join(accidents, eq(districts["district"], accidents["district"]))
        .select(eq(districts["region"], "east"))
        .select(eq(accidents["year"], 2003))
        .select(Comparison(accidents["num_casualties"], ">=", Constant(2)))
        .project(
            [
                accidents["accident_id"],
                accidents["severity"],
                accidents["num_casualties"],
            ]
        )
    )
    # Fast roads of one region: districts(region) -> roads(district ->
    # road_id) -> road details, filtered on speed limit.
    fast_roads = (
        districts.join(roads, eq(districts["district"], roads["district"]))
        .select(eq(districts["region"], "east"))
        .select(Comparison(roads["speed_limit"], ">=", Constant(40)))
        .project([roads["road_id"], roads["road_class"], roads["speed_limit"]])
    )
    return [severe, fast_roads]


_BUILDERS = {
    "AIRCA": _airca,
    "MCBM": _mcbm,
    "TFACC": _tfacc,
}


def analytic_queries(workload: WorkloadSpec) -> list[Query]:
    """The analytic (execution-heavy) covered queries of one workload.

    Returns an empty list for workloads without bundled analytic queries.
    """
    builder = _BUILDERS.get(workload.name)
    if builder is None:
        return []
    return builder(DatabaseSchema(workload.schema))
