"""Unit tests for the RA query AST."""

import pytest

from repro.core.errors import QueryError
from repro.core.query import (
    And,
    Comparison,
    Constant,
    Difference,
    Join,
    Product,
    Projection,
    Relation,
    Rename,
    Selection,
    Union,
    conjunction,
    eq,
    format_query,
    queries_equal,
)
from repro.core.schema import Attribute


@pytest.fixture
def friend():
    return Relation("friend", ["pid", "fid"])


@pytest.fixture
def dine():
    return Relation("dine", ["pid", "cid", "month", "year"])


class TestPredicates:
    def test_eq_coerces_constants(self, friend):
        atom = eq(friend["pid"], "p0")
        assert isinstance(atom.right, Constant)
        assert atom.is_equality

    def test_comparison_rejects_bad_operator(self, friend):
        with pytest.raises(QueryError):
            Comparison(friend["pid"], "~", Constant(1))

    def test_comparison_evaluate(self):
        assert Comparison(Constant(1), "<", Constant(2)).evaluate(1, 2)
        assert Comparison(Constant(1), "!=", Constant(2)).evaluate(1, 2)
        assert not Comparison(Constant(1), ">=", Constant(2)).evaluate(1, 2)

    def test_and_flattens_atoms(self, friend, dine):
        condition = And([eq(friend["pid"], "p0"), eq(dine["month"], "may")])
        assert condition.atom_count == 2
        assert len(list(condition.conjuncts())) == 2

    def test_and_requires_conjuncts(self):
        with pytest.raises(QueryError):
            And([])

    def test_conjunction_helper(self, friend):
        assert conjunction([]) is None
        single = eq(friend["pid"], 1)
        assert conjunction([single]) is single
        assert isinstance(conjunction([single, single]), And)

    def test_predicate_attributes(self, friend, dine):
        condition = And([eq(friend["fid"], dine["pid"]), eq(dine["year"], 2015)])
        assert condition.attributes() == {
            Attribute("friend", "fid"),
            Attribute("dine", "pid"),
            Attribute("dine", "year"),
        }


class TestRelationNode:
    def test_output_attributes(self, friend):
        assert friend.output_attributes() == (
            Attribute("friend", "pid"),
            Attribute("friend", "fid"),
        )

    def test_getitem_unknown(self, friend):
        with pytest.raises(QueryError):
            friend["city"]

    def test_base_defaults_to_name(self, friend):
        assert friend.base == "friend"
        renamed = Relation("friend2", ["pid", "fid"], base="friend")
        assert renamed.base == "friend"

    def test_empty_attributes_rejected(self):
        with pytest.raises(QueryError):
            Relation("r", [])


class TestOperators:
    def test_selection_validates_attributes(self, friend, dine):
        with pytest.raises(QueryError, match="unknown attribute"):
            friend.select(eq(dine["cid"], 1))

    def test_projection_by_name_and_attribute(self, dine):
        by_attr = dine.project([dine["cid"]])
        by_name = dine.project(["cid"])
        assert by_attr.output_attributes() == by_name.output_attributes()

    def test_projection_unknown_attribute(self, dine):
        with pytest.raises(QueryError):
            dine.project(["city"])

    def test_projection_requires_attributes(self, dine):
        with pytest.raises(QueryError):
            Projection(dine, [])

    def test_product_rejects_overlap(self, dine):
        other = Relation("dine", ["pid", "cid", "month", "year"])
        with pytest.raises(QueryError, match="share attributes"):
            dine.product(other)

    def test_join_with_condition(self, friend, dine):
        joined = friend.join(dine, eq(friend["fid"], dine["pid"]))
        assert joined.arity() == 6

    def test_natural_join_uses_shared_names(self, friend):
        other = Relation("dine2", ["pid", "cid"], base="dine")
        joined = Join(friend, other)
        atoms = list(joined.condition.atoms())
        assert len(atoms) == 1
        assert {atoms[0].left, atoms[0].right} == {
            Attribute("friend", "pid"),
            Attribute("dine2", "pid"),
        }

    def test_natural_join_without_shared_names_fails(self, friend):
        other = Relation("cafe", ["cid", "city"])
        with pytest.raises(QueryError, match="shared attribute"):
            Join(friend, other)

    def test_union_difference_arity_check(self, friend, dine):
        one = friend.project(["pid"])
        two = dine.project(["pid", "cid"])
        with pytest.raises(QueryError):
            Union(one, two)
        with pytest.raises(QueryError):
            Difference(one, two)

    def test_rename_changes_qualifier(self, friend):
        renamed = Rename(friend.project(["fid"]), "buddies")
        assert renamed.output_attributes() == (Attribute("buddies", "fid"),)

    def test_attribute_resolution_ambiguity(self, friend, dine):
        query = friend.join(dine, eq(friend["fid"], dine["pid"]))
        with pytest.raises(QueryError, match="ambiguous"):
            query.attribute("pid")
        assert query.attribute("cid") == Attribute("dine", "cid")
        with pytest.raises(QueryError, match="no output attribute"):
            query.attribute("city")


class TestQueryStructure:
    def test_size_counts_nodes_and_atoms(self, friend, dine):
        query = (
            friend.join(dine, eq(friend["fid"], dine["pid"]))
            .select(eq(friend["pid"], "p0"))
            .project([dine["cid"]])
        )
        # nodes: friend, dine, join, select, project = 5; atoms: 1 (join) + 1 (select)
        assert query.size == 7

    def test_subqueries_postorder(self, friend, dine):
        query = friend.join(dine, eq(friend["fid"], dine["pid"]))
        nodes = list(query.subqueries())
        assert nodes[0] is friend
        assert nodes[1] is dine
        assert nodes[-1] is query

    def test_relations_iteration(self, friend, dine):
        query = friend.join(dine, eq(friend["fid"], dine["pid"]))
        assert [r.name for r in query.relations()] == ["friend", "dine"]

    def test_is_spc(self, friend, dine):
        spc = friend.join(dine, eq(friend["fid"], dine["pid"]))
        assert spc.is_spc()
        assert not spc.project(["cid"]).union(dine.project(["cid"])).is_spc()

    def test_format_query_contains_operators(self, friend, dine):
        query = (
            friend.join(dine, eq(friend["fid"], dine["pid"]))
            .select(eq(friend["pid"], "p0"))
            .project([dine["cid"]])
        )
        rendered = format_query(query)
        assert "π" in rendered and "σ" in rendered and "⋈" in rendered

    def test_queries_equal_structural(self, friend, dine):
        one = friend.select(eq(friend["pid"], "p0"))
        two = friend.select(eq(friend["pid"], "p0"))
        three = friend.select(eq(friend["pid"], "p1"))
        assert queries_equal(one, two)
        assert not queries_equal(one, three)
        assert not queries_equal(one, friend)
