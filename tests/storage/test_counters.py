"""Unit tests for access counters."""

from repro.storage.counters import AccessCounter


class TestAccessCounter:
    def test_record_fetch(self):
        counter = AccessCounter()
        counter.record_fetch("friend", 5)
        counter.record_fetch("dine", 3)
        assert counter.fetched == 8
        assert counter.index_probes == 2
        assert counter.total == 8
        assert counter.per_relation == {"friend": 5, "dine": 3}

    def test_record_scan(self):
        counter = AccessCounter()
        counter.record_scan("cafe", 100)
        assert counter.scanned == 100
        assert counter.fetched == 0
        assert counter.total == 100

    def test_reset(self):
        counter = AccessCounter()
        counter.record_fetch("r", 1)
        counter.record_scan("r", 2)
        counter.reset()
        assert counter.total == 0
        assert counter.per_relation == {}
        assert counter.index_probes == 0

    def test_merge(self):
        a = AccessCounter()
        b = AccessCounter()
        a.record_fetch("r", 2)
        b.record_fetch("r", 3)
        b.record_scan("s", 10)
        a.merge(b)
        assert a.fetched == 5
        assert a.scanned == 10
        assert a.per_relation == {"r": 5, "s": 10}

    def test_ratio(self):
        counter = AccessCounter()
        counter.record_fetch("r", 5)
        assert counter.ratio(100) == 0.05
        assert counter.ratio(0) == 0.0
