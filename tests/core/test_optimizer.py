"""Unit tests for the peephole plan optimizer."""

import pytest

from repro.core.optimizer import optimize_plan
from repro.core.plan import (
    ColumnPredicate,
    ColumnRef,
    ConstOp,
    HashJoinOp,
    PlanBuilder,
    ProductOp,
    ProjectOp,
    RenameOp,
    SelectOp,
    UnionOp,
)
from repro.core.planner import plan_query
from repro.evaluator.algebra import evaluate
from repro.evaluator.executor import PlanExecutor, execute_plan


class TestPeepholeRules:
    def test_select_select_fusion(self, fb_access):
        builder = PlanBuilder(fb_access)
        t0 = builder.add(ConstOp(value=1, column="x"), ["x"])
        t1 = builder.add(SelectOp(predicates=(ColumnPredicate("x", ">=", 1),), inputs=(t0,)), ["x"])
        t2 = builder.add(SelectOp(predicates=(ColumnPredicate("x", "<=", 1),), inputs=(t1,)), ["x"])
        optimized = optimize_plan(builder.build(t2))
        selects = [s for s in optimized.steps if isinstance(s.op, SelectOp)]
        assert len(selects) == 1
        assert len(selects[0].op.predicates) == 2

    def test_project_project_fusion(self, fb_access):
        builder = PlanBuilder(fb_access)
        t0 = builder.add(ConstOp(value=1, column="x"), ["x"])
        t1 = builder.add(
            ProjectOp(columns=("x",), inputs=(t0,), output_names=("y",)), ["y"]
        )
        t2 = builder.add(
            ProjectOp(columns=("y",), inputs=(t1,), output_names=("z",)), ["z"]
        )
        optimized = optimize_plan(builder.build(t2))
        projects = [s for s in optimized.steps if isinstance(s.op, ProjectOp)]
        assert len(projects) == 1
        assert projects[0].op.columns == ("x",)
        assert projects[0].op.output_names == ("z",)

    def test_project_over_rename_pushdown(self, fb_access):
        builder = PlanBuilder(fb_access)
        t0 = builder.add(ConstOp(value=1, column="x"), ["x"])
        t1 = builder.add(RenameOp(mapping={"x": "y"}, inputs=(t0,)), ["y"])
        t2 = builder.add(
            ProjectOp(columns=("y",), inputs=(t1,), output_names=("z",)), ["z"]
        )
        optimized = optimize_plan(builder.build(t2))
        assert not any(isinstance(s.op, RenameOp) for s in optimized.steps)

    def test_rename_collision_blocks_pushdown(self, fb_database, fb_indexes, fb_access):
        """ρ{a→b} over columns (b, a) makes 'b' ambiguous; pushdown must not fire.

        The executor resolves column names positionally (first match wins), so
        π_b after the rename reads the *original* ``b``.  A name-based inverse
        would wrongly pick ``a``; the optimizer has to keep the plan as-is.
        """
        builder = PlanBuilder(fb_access)
        t0 = builder.add(ConstOp(value="B", column="b"), ["b"])
        t1 = builder.add(ConstOp(value="A", column="a"), ["a"])
        t2 = builder.add(ProductOp(inputs=(t0, t1)), ["b", "a"])
        t3 = builder.add(RenameOp(mapping={"a": "b"}, inputs=(t2,)), ["b", "b"])
        t4 = builder.add(ProjectOp(columns=("b",), inputs=(t3,)), ["b"])
        plan = builder.build(t4)
        optimized = optimize_plan(plan)
        expected = execute_plan(plan, fb_database, fb_indexes).rows
        assert execute_plan(optimized, fb_database, fb_indexes).rows == expected == {("B",)}

    def test_duplicate_columns_block_identity_elimination(
        self, fb_database, fb_indexes, fb_access
    ):
        """π[b,b] over duplicated column names is not the identity."""
        builder = PlanBuilder(fb_access)
        t0 = builder.add(ConstOp(value="B", column="b"), ["b"])
        t1 = builder.add(ConstOp(value="A", column="a"), ["a"])
        t2 = builder.add(ProductOp(inputs=(t0, t1)), ["b", "a"])
        t3 = builder.add(RenameOp(mapping={"a": "b"}, inputs=(t2,)), ["b", "b"])
        t4 = builder.add(ProjectOp(columns=("b", "b"), inputs=(t3,)), ["b", "b"])
        plan = builder.build(t4)
        optimized = optimize_plan(plan)
        expected = execute_plan(plan, fb_database, fb_indexes).rows
        assert execute_plan(optimized, fb_database, fb_indexes).rows == expected == {("B", "B")}

    def test_select_over_product_becomes_hash_join(self, fb_database, fb_indexes, fb_access):
        builder = PlanBuilder(fb_access)
        t0 = builder.add(ConstOp(value=1, column="x"), ["x"])
        t1 = builder.add(ConstOp(value=1, column="y"), ["y"])
        t2 = builder.add(ProductOp(inputs=(t0, t1)), ["x", "y"])
        t3 = builder.add(
            SelectOp(
                predicates=(
                    ColumnPredicate("x", "=", ColumnRef("y")),
                    ColumnPredicate("x", ">=", 0),
                ),
                inputs=(t2,),
            ),
            ["x", "y"],
        )
        plan = builder.build(t3)
        optimized = optimize_plan(plan)
        joins = [s for s in optimized.steps if isinstance(s.op, HashJoinOp)]
        assert len(joins) == 1
        assert joins[0].op.pairs == (("x", "y"),)
        assert joins[0].op.residual == (ColumnPredicate("x", ">=", 0),)
        assert not any(isinstance(s.op, ProductOp) for s in optimized.steps)
        assert (
            execute_plan(optimized, fb_database, fb_indexes).rows
            == execute_plan(plan, fb_database, fb_indexes).rows
            == {(1, 1)}
        )

    def test_common_subplans_deduplicated(self, fb_access):
        builder = PlanBuilder(fb_access)
        t0 = builder.add(ConstOp(value="p0", column="x"), ["x"])
        t1 = builder.add(ConstOp(value="p0", column="x"), ["x"])
        t2 = builder.add(UnionOp(inputs=(t0, t1)), ["x"])
        optimized = optimize_plan(builder.build(t2))
        consts = [s for s in optimized.steps if isinstance(s.op, ConstOp)]
        assert len(consts) == 1

    def test_dead_steps_eliminated(self, fb_access):
        builder = PlanBuilder(fb_access)
        t0 = builder.add(ConstOp(value=1, column="x"), ["x"])
        builder.add(ConstOp(value=2, column="unused"), ["unused"])
        plan = builder.build(t0)
        optimized = optimize_plan(plan)
        assert len(optimized) == 1
        assert optimized.steps[0].op.value == 1


class TestOptimizedPlansOnQueries:
    def test_shrinks_canonical_plans(self, fb_q1, fb_access):
        plan = plan_query(fb_q1, fb_access)
        optimized = optimize_plan(plan)
        assert len(optimized) < len(plan)
        assert any(isinstance(s.op, HashJoinOp) for s in optimized.steps)
        assert optimized.is_bounded

    def test_rows_identical_and_access_bounded(
        self, fb_q1, fb_access, fb_database, fb_indexes
    ):
        plan = plan_query(fb_q1, fb_access)
        optimized = optimize_plan(plan)
        executor = PlanExecutor(fb_database, fb_indexes)
        original = executor.execute(plan)
        rewritten = executor.execute(optimized)
        assert rewritten.rows == original.rows == evaluate(fb_q1, fb_database).rows
        assert rewritten.columns == original.columns
        assert rewritten.counter.scanned == 0
        assert optimized.access_bound() <= plan.access_bound()

    def test_rewritten_difference_query(
        self, fb_q0_prime, fb_access, fb_database, fb_indexes
    ):
        plan = plan_query(fb_q0_prime, fb_access)
        optimized = optimize_plan(plan)
        assert (
            execute_plan(optimized, fb_database, fb_indexes).rows
            == evaluate(fb_q0_prime, fb_database).rows
        )

    def test_idempotent(self, fb_q1, fb_access):
        plan = plan_query(fb_q1, fb_access)
        once = optimize_plan(plan)
        twice = optimize_plan(once)
        assert len(twice) == len(once)
        assert twice.is_bounded
