"""Smoke tests that keep the example scripts runnable.

Each example's ``main()`` is executed end to end (with output captured by
pytest); failures here mean the documented entry points drifted from the API.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "graph_search", "airline_analytics", "workload_discovery"],
)
def test_example_runs(name, capsys):
    module = _load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_experiment_report_quick(capsys, monkeypatch):
    """The report example runs end to end in --quick mode on one workload."""
    module = _load_example("experiment_report")
    monkeypatch.setattr(
        sys,
        "argv",
        ["experiment_report.py", "--quick", "--scale", "80", "--queries", "10",
         "--workloads", "AIRCA"],
    )
    module.main()
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "Exp-2" in out
