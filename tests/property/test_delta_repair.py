"""Property: repaired cache entries are row-identical to recomputation.

Random interleavings of reads and mixed insert/delete write batches run
against a :class:`~repro.core.engine.BoundedEngine` (and, in the second
class, a :class:`~repro.sharding.router.ShardRouter` federation) with delta
repair on.  Every read — whether served from a repaired entry, a re-stamped
entry, or a fresh execution — must equal the reference evaluator over the
current data, and the difference-rewritten query must never be served from a
repaired entry at all (its plan is structurally non-derivable).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import BoundedEngine
from repro.discovery.maintenance import Update
from repro.evaluator.algebra import evaluate
from repro.sharding import build_topology
from repro.workloads import facebook

MONTHS = ("may", "jun")
YEARS = (2015, 2016)
CITIES = ("nyc", "sf")

#: op codes: read q1 / read q0 / single insert / single delete / mixed batch
READ_Q1, READ_Q0, INSERT, DELETE, BATCH = range(5)

operations = st.lists(
    st.tuples(
        st.sampled_from([READ_Q1, READ_Q0, INSERT, DELETE, BATCH]),
        st.integers(min_value=0, max_value=10**6),
    ),
    min_size=6,
    max_size=14,
)


def _make_insert(relation: str, arg: int, fresh: int) -> Update:
    if relation == "friend":
        return Update.insert("friend", (f"p{arg % 6}", f"nf{fresh}"))
    if relation == "dine":
        return Update.insert(
            "dine",
            (
                f"nf{arg % max(1, fresh)}" if arg % 2 else f"p{arg % 6}",
                f"nc{arg % 4}",
                MONTHS[arg % len(MONTHS)],
                YEARS[arg % len(YEARS)],
            ),
        )
    return Update.insert("cafe", (f"nc{arg % 4}", CITIES[arg % len(CITIES)]))


def _make_delete(database, relation: str, arg: int) -> Update | None:
    rows = sorted(database.relation(relation).rows)
    if not rows:
        return None
    return Update.delete(relation, rows[arg % len(rows)])


def _updates_for(database, op: int, arg: int, fresh: int) -> list[Update]:
    relations = ("friend", "dine", "cafe")
    if op == INSERT:
        return [_make_insert(relations[arg % 3], arg, fresh)]
    if op == DELETE:
        victim = _make_delete(database, relations[arg % 3], arg)
        return [victim] if victim is not None else []
    # BATCH: a mixed insert/delete batch across relations
    batch = [
        _make_insert(relations[arg % 3], arg, fresh),
        _make_insert(relations[(arg + 1) % 3], arg // 3, fresh + 1),
    ]
    victim = _make_delete(database, relations[(arg + 2) % 3], arg // 2)
    if victim is not None:
        batch.append(victim)
    return batch


class TestEngineRepairProperty:
    @given(st.integers(min_value=0, max_value=50), operations)
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_reads_always_match_reference_under_interleaved_writes(self, seed, ops):
        database = facebook.generate(scale=15, seed=seed)
        access = facebook.access_schema(database.schema)
        engine = BoundedEngine(database, access, check_constraints=False)
        q1 = facebook.query_q1()
        q0 = facebook.query_q0()
        engine.execute(q1)  # warm the cache so writes have entries to settle
        engine.execute(q0)
        fresh = 0
        for op, arg in ops:
            if op == READ_Q1 or op == READ_Q0:
                query = q1 if op == READ_Q1 else q0
                result = engine.execute(query)
                assert result.rows == evaluate(query, database).rows
                if op == READ_Q0 and result.result_cached:
                    # q0's guard-difference plan is never derivable: a served
                    # cached entry can only come from a no-write window.
                    assert engine.cache_stats()["result_cache"]["repaired"] == 0 or (
                        engine.cache_stats()["result_cache"]["repair_fallback_reasons"]
                    )
            else:
                updates = _updates_for(database, op, arg, fresh)
                fresh += len(updates)
                if updates:
                    engine.apply_updates(updates)
        # Terminal read: whatever mixture of repairs/restamps/invalidations
        # happened, both queries still answer exactly.
        assert engine.execute(q1).rows == evaluate(q1, database).rows
        assert engine.execute(q0).rows == evaluate(q0, database).rows

    @given(st.integers(min_value=0, max_value=50), operations)
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_repaired_serves_equal_full_recomputation(self, seed, ops):
        """The sharper form: compare a repairing engine against a twin with
        repair disabled on the same database — byte-identical serving."""
        database = facebook.generate(scale=15, seed=seed)
        access = facebook.access_schema(database.schema)
        repairing = BoundedEngine(database, access, check_constraints=False)
        recomputing = BoundedEngine(database, access, check_constraints=False, delta_repair=False)
        q1 = facebook.query_q1()
        repairing.execute(q1)
        fresh = 0
        for op, arg in ops:
            if op in (READ_Q1, READ_Q0):
                assert repairing.execute(q1).rows == recomputing.execute(q1).rows
            else:
                updates = _updates_for(database, op, arg, fresh)
                fresh += len(updates)
                if not updates:
                    continue
                # Apply through the repairing engine; hand the twin the same
                # already-applied state (it shares the database, so only its
                # indexes need the writes that actually landed).
                report = repairing.apply_updates(updates)
                for update in report.applied_updates:
                    if update.kind == "insert":
                        recomputing.indexes.apply_insert(update.relation, update.row)
                    else:
                        recomputing.indexes.apply_delete(
                            update.relation,
                            update.row,
                            database.relation(update.relation),
                        )
        assert repairing.execute(q1).rows == recomputing.execute(q1).rows
        assert repairing.execute(q1).rows == evaluate(q1, database).rows


class TestRouterRepairProperty:
    @given(st.integers(min_value=0, max_value=25), operations)
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_federated_reads_match_reference_under_routed_writes(self, seed, ops):
        database = facebook.generate(scale=12, seed=seed)
        access = facebook.access_schema(database.schema)

        def mirror(updates):
            for update in updates:
                instance = database.relation(update.relation)
                prepared = instance.prepare(update.row)
                if update.kind == "insert":
                    instance.insert(prepared)
                else:
                    instance.delete(prepared)

        router = build_topology(database, access, shards=2, write_observer=mirror)
        q1 = facebook.query_q1()
        router.execute(q1)
        fresh = 0
        for op, arg in ops:
            if op in (READ_Q1, READ_Q0):
                result = router.execute(q1)
                assert result.rows == evaluate(q1, database).rows
            else:
                updates = _updates_for(database, op, arg, fresh)
                fresh += len(updates)
                if updates:
                    router.apply_updates(updates)
        assert router.execute(q1).rows == evaluate(q1, database).rows
