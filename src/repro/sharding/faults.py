"""Deterministic fault injection at the shard-fetch seam.

The serving tier's :class:`~repro.serving.faults.FaultInjector` perturbs
*engine-internal* seams (executor, fallback, storage writes); it cannot
express the failure modes a federation actually meets — a shard that is
slow, dead, returns stale epoch tokens, or tears a routed write batch.
This module wraps the three calls the router (or a
:class:`~repro.sharding.replica.ReplicaSet`) makes into a shard —

* ``fetch`` — the scatter half of scatter/gather; faults here are what
  failover reads must absorb,
* ``apply_updates`` — the routed write portion; faults here are what
  replica quarantine + catch-up must absorb,
* ``snapshot`` — the epoch token; staleness here is what the merge-time
  snapshot validation must catch

— following the same instance-attribute-only discipline as the serving
injector: wrappers replace attributes on concrete shard *instances* (never
classes or modules) and ``uninstall()`` restores every original, so an
injector mounts inside a test or soak run and tears down without trace.
All randomness comes from per-site ``random.Random`` streams derived from
one seed, so fault schedules are exactly reproducible and independent
across sites.

Failure semantics, chosen to match the contracts the federation already
promises:

* **fetch / snapshot errors** raise :class:`~repro.core.errors.
  TransientFault` *before* the underlying call runs, so a failed-then-
  failed-over fetch never double-counts accessed tuples.
* **write errors** (``error_rate`` / ``fail_every``) also fire before the
  mutation — the injected mode is "this portion did not happen at all",
  the clean-miss divergence a lagging replica exhibits.
* **torn writes** apply a strict prefix of the batch through the real
  write path, then raise :class:`~repro.core.errors.MaintenanceError`
  carrying the partial report — the mid-batch abort contract of
  :func:`~repro.discovery.maintenance.apply_updates`.
* **lost writes** silently swallow the batch and return an empty report —
  the one failure mode *no* exception surfaces, detectable only by
  snapshot validation on a later read (the replica-divergence scenario).
* **stale snapshots** return the snapshot a previous call returned for the
  same relation tuple — a shard reporting an old epoch, which the router's
  post-merge validation must refuse to serve through.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

from ..core.errors import MaintenanceError, TransientFault
from ..discovery.maintenance import MaintenanceReport
from .shards import Shard


@dataclass(frozen=True)
class ShardFaultSpec:
    """What to inject at one shard site.

    ``latency`` (+ uniform ``latency_jitter``) is slept before the call;
    ``error_rate`` raises a :class:`TransientFault` with that probability
    and ``fail_every`` deterministically fails every Nth call (counted from
    1) — both before the underlying call runs.  The remaining modes are
    seam-specific: ``stale_snapshot_rate`` only affects ``snapshot`` sites,
    ``torn_write_every`` / ``lost_write_every`` only affect write sites.
    An injected failure still pays the injected latency, like a real
    slow-then-dead dependency.
    """

    latency: float = 0.0
    latency_jitter: float = 0.0
    error_rate: float = 0.0
    fail_every: int | None = None
    #: probability a ``snapshot`` call returns the previous epoch token
    stale_snapshot_rate: float = 0.0
    #: every Nth write batch applies a strict prefix, then aborts
    torn_write_every: int | None = None
    #: every Nth write batch is silently swallowed (no error, no mutation)
    lost_write_every: int | None = None

    @property
    def active(self) -> bool:
        return (
            self.latency > 0.0
            or self.latency_jitter > 0.0
            or self.error_rate > 0.0
            or self.fail_every is not None
            or self.stale_snapshot_rate > 0.0
            or self.torn_write_every is not None
            or self.lost_write_every is not None
        )


#: the spec :meth:`ShardFaultInjector.kill` arms: every call fails
KILLED = ShardFaultSpec(fail_every=1)


class ShardFaultInjector:
    """Wraps shard seams at named sites and perturbs calls deterministically.

    Sites are named ``{shard.name}.fetch`` / ``.write`` / ``.snapshot`` by
    :meth:`install_shard`; ``configure(site, spec)`` arms a site (before or
    after installation).  One injector owns every site of one federation.
    """

    def __init__(self, seed: int = 0, sleeper: Callable[[float], None] = time.sleep):
        self.seed = seed
        self.sleeper = sleeper
        self._specs: dict[str, ShardFaultSpec] = {}
        self._rngs: dict[str, random.Random] = {}
        self._calls: dict[str, int] = {}
        #: per-site count of faults actually injected (errors, torn, lost, stale)
        self.injected: dict[str, int] = {}
        self._installed: list[tuple[object, str, object]] = []
        self._wrapped_sites: set[str] = set()
        #: last clean snapshot returned, per (site, relations) — stale mode replays it
        self._snapshots: dict[tuple[str, tuple[str, ...]], tuple[int, ...]] = {}

    # -- configuration ---------------------------------------------------------
    def configure(self, site: str, spec: ShardFaultSpec) -> None:
        """Arm ``site`` with ``spec`` (a default/empty spec disarms it)."""
        if spec.active:
            self._specs[site] = spec
            self._rngs.setdefault(site, random.Random((self.seed, site).__repr__()))
        else:
            self._specs.pop(site, None)

    def calls(self, site: str) -> int:
        return self._calls.get(site, 0)

    # -- the perturbations -----------------------------------------------------
    def _tick(self, site: str) -> tuple[ShardFaultSpec | None, int, random.Random | None]:
        spec = self._specs.get(site)
        if spec is None:
            return None, 0, None
        count = self._calls.get(site, 0) + 1
        self._calls[site] = count
        rng = self._rngs[site]
        delay = spec.latency
        if spec.latency_jitter > 0.0:
            delay += rng.uniform(0.0, spec.latency_jitter)
        if delay > 0.0:
            self.sleeper(delay)
        return spec, count, rng

    def _count_injection(self, site: str) -> None:
        self.injected[site] = self.injected.get(site, 0) + 1

    def _raise(self, site: str, detail: str) -> None:
        self._count_injection(site)
        raise TransientFault(f"injected at {site!r}: {detail}")

    def _basic_faults(
        self, site: str, spec: ShardFaultSpec, count: int, rng: random.Random
    ) -> None:
        if spec.fail_every is not None and count % spec.fail_every == 0:
            self._raise(site, f"deterministic shard fault (call #{count})")
        if spec.error_rate > 0.0 and rng.random() < spec.error_rate:
            self._raise(site, f"random shard fault (call #{count})")

    # -- seam installers -------------------------------------------------------
    def _install_attr(self, obj: object, attr: str, wrapper: Callable) -> None:
        original = getattr(obj, attr)
        was_instance_attr = attr in getattr(obj, "__dict__", {})
        self._installed.append((obj, attr, original if was_instance_attr else None))
        wrapper.__wrapped__ = original
        setattr(obj, attr, wrapper)

    def install_shard(self, shard: Shard) -> None:
        """Wrap ``shard``'s fetch / write / snapshot seams (idempotent).

        Installation arms nothing by itself — sites fire only once
        ``configure`` gives them an active spec, so a soak can wrap every
        shard up front and arm scenarios mid-run.
        """
        if shard.name in self._wrapped_sites:
            return
        self._wrapped_sites.add(shard.name)
        fetch_site = f"{shard.name}.fetch"
        write_site = f"{shard.name}.write"
        snapshot_site = f"{shard.name}.snapshot"

        original_fetch = shard.fetch

        def faulty_fetch(*args, **kwargs):
            spec, count, rng = self._tick(fetch_site)
            if spec is not None:
                self._basic_faults(fetch_site, spec, count, rng)
            return original_fetch(*args, **kwargs)

        self._install_attr(shard, "fetch", faulty_fetch)

        original_apply = shard.apply_updates

        def faulty_apply(updates):
            updates = list(updates)
            spec, count, rng = self._tick(write_site)
            if spec is not None:
                self._basic_faults(write_site, spec, count, rng)
                if (
                    spec.lost_write_every is not None
                    and count % spec.lost_write_every == 0
                ):
                    # The silent failure mode: claim success, mutate nothing.
                    self._count_injection(write_site)
                    return MaintenanceReport()
                if (
                    spec.torn_write_every is not None
                    and count % spec.torn_write_every == 0
                    and len(updates) > 1
                ):
                    self._count_injection(write_site)
                    prefix = updates[: len(updates) // 2]
                    report = original_apply(prefix)
                    report.failed = True
                    report.failed_update = updates[len(prefix)]
                    report.error = f"injected at {write_site!r}: torn write"
                    raise MaintenanceError(
                        f"injected at {write_site!r}: batch torn after "
                        f"{len(prefix)} of {len(updates)} updates",
                        report=report,
                    )
            return original_apply(updates)

        self._install_attr(shard, "apply_updates", faulty_apply)

        original_snapshot = shard.snapshot

        def faulty_snapshot(relations):
            relations = tuple(relations)
            spec, count, rng = self._tick(snapshot_site)
            stale_key = (snapshot_site, relations)
            if (
                spec is not None
                and spec.stale_snapshot_rate > 0.0
                and rng.random() < spec.stale_snapshot_rate
                and stale_key in self._snapshots
            ):
                self._count_injection(snapshot_site)
                return self._snapshots[stale_key]
            if spec is not None:
                self._basic_faults(snapshot_site, spec, count, rng)
            token = original_snapshot(relations)
            self._snapshots[stale_key] = token
            return token

        self._install_attr(shard, "snapshot", faulty_snapshot)

    def kill(self, shard: Shard) -> None:
        """Make ``shard`` fail every fetch and write from now on (dead node)."""
        self.install_shard(shard)
        self.configure(f"{shard.name}.fetch", KILLED)
        self.configure(f"{shard.name}.write", KILLED)

    def uninstall(self) -> None:
        """Restore every wrapped seam to its original callable."""
        while self._installed:
            obj, attr, original = self._installed.pop()
            if original is None:
                delattr(obj, attr)
            else:
                setattr(obj, attr, original)
        self._wrapped_sites.clear()

    def __enter__(self) -> "ShardFaultInjector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- reporting -------------------------------------------------------------
    def stats(self) -> dict[str, dict[str, int]]:
        return {
            site: {
                "calls": self._calls.get(site, 0),
                "injected": self.injected.get(site, 0),
            }
            for site in sorted(self._specs)
        }
