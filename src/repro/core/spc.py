"""SPC analysis: max SPC sub-queries, equality atoms, and unification.

Covered queries (Section 3) are defined per *max SPC sub-query*: a maximal
subtree of the query tree that uses only selection, projection, product,
join and renaming.  For each such sub-query ``Qs`` the analysis needs

* ``Σ_Qs`` — the equality atoms derivable from its selection conditions by
  transitivity of equality (implemented with a union-find over terms),
* ``X_Qs`` — the attributes occurring in selection conditions or in the
  output of ``Qs`` (the attributes whose values are needed to answer it),
* ``X_Qs^C`` — the attributes made equal to a constant by ``Σ_Qs``,
* the unification function ``ρ_U`` renaming equal attributes identically, and
* the induced FDs ``Σ_{Qs,A}`` obtained from the access constraints.

These are exactly the ingredients of Lemma 4 and algorithm ``CovChk``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .access import AccessConstraint, AccessSchema
from .errors import QueryError
from .fd import FDSet, FunctionalDependency
from .query import (
    Comparison,
    Constant,
    Difference,
    Join,
    Product,
    Projection,
    Query,
    Relation,
    Rename,
    Selection,
    Union,
)
from .schema import Attribute


# ---------------------------------------------------------------------------
# Max SPC sub-queries
# ---------------------------------------------------------------------------

_SPC_NODES = (Relation, Selection, Projection, Product, Join, Rename)


def is_spc_node(node: Query) -> bool:
    """Whether the node's operator itself is an SPC operator."""
    return isinstance(node, _SPC_NODES)


def max_spc_subqueries(query: Query) -> list[Query]:
    """All max SPC sub-queries of ``query``, in pre-order.

    A sub-query ``Qs`` is a max SPC sub-query when its whole subtree is SPC
    and it is not properly contained in another SPC sub-query — i.e. either
    it is the root, or the subtree of its parent is not entirely SPC.  The
    computation is two linear passes over the query tree.
    """
    spc_subtree: dict[int, bool] = {}

    def mark(node: Query) -> bool:
        child_results = [mark(child) for child in node.children]
        result = is_spc_node(node) and all(child_results)
        spc_subtree[id(node)] = result
        return result

    mark(query)

    result: list[Query] = []

    def collect(node: Query, parent_subtree_spc: bool) -> None:
        if spc_subtree[id(node)]:
            if not parent_subtree_spc:
                result.append(node)
            # Everything below an SPC subtree belongs to this max sub-query.
            return
        for child in node.children:
            collect(child, False)

    collect(query, False)
    return result


def is_normal_form(query: Query) -> bool:
    """Whether union/difference only appear *above* SPC operators.

    The paper's normal form pushes set difference (and union) to the top
    level over max SPC sub-queries.  Queries violating this (e.g. a join over
    a union) are treated conservatively as not covered, which preserves the
    soundness direction of Theorem 2(2).
    """
    for node in query.subqueries():
        if is_spc_node(node):
            if not all(is_spc_node(descendant) for descendant in node.subqueries()):
                return False
    return True


# ---------------------------------------------------------------------------
# Union-find over terms
# ---------------------------------------------------------------------------

class _UnionFind:
    """Union-find over hashable items with path compression."""

    def __init__(self) -> None:
        self._parent: dict[object, object] = {}

    def add(self, item: object) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: object) -> object:
        self.add(item)
        root = item
        while self._parent[root] is not root:
            root = self._parent[root]
        while self._parent[item] is not root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: object, right: object) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root is not right_root:
            self._parent[left_root] = right_root

    def items(self) -> Iterator[object]:
        return iter(self._parent)

    def groups(self) -> dict[object, set[object]]:
        result: dict[object, set[object]] = {}
        for item in self._parent:
            result.setdefault(self.find(item), set()).add(item)
        return result


# ---------------------------------------------------------------------------
# SPC analysis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class UnsatisfiableInfo:
    """Evidence that an SPC sub-query is unsatisfiable (two distinct constants equated)."""

    attribute: Attribute | None
    constants: tuple[object, object]


class SPCAnalysis:
    """Equality and attribute analysis of a single (max) SPC sub-query.

    The analysis is purely syntactic: it never touches data, matching the
    paper's requirement that coverage checking be independent of ``|D|``.
    """

    def __init__(self, subquery: Query):
        if not subquery.is_spc():
            raise QueryError("SPCAnalysis requires an SPC query (no union / difference)")
        self.query = subquery
        self._uf = _UnionFind()
        self._condition_attributes: set[Attribute] = set()
        self._projection_attributes: set[Attribute] = set()
        self._equality_atoms: list[Comparison] = []
        self._collect()
        self._canonical: dict[Attribute, str] = {}
        self._constants: dict[object, object] = {}
        self.unsatisfiable: UnsatisfiableInfo | None = None
        self._build_unification()

    # -- construction ---------------------------------------------------------
    def _collect(self) -> None:
        for node in self.query.subqueries():
            if isinstance(node, Projection):
                # Intermediate projections are part of the attributes the
                # evaluation plan needs, so they are treated as needed too
                # (a conservative superset of the paper's X_Q, which assumes a
                # single top-level projection).
                self._projection_attributes.update(node.attributes)
                for attribute in node.attributes:
                    self._uf.add(attribute)
            condition = getattr(node, "condition", None)
            if condition is None:
                continue
            for atom in condition.atoms():
                for term in (atom.left, atom.right):
                    if isinstance(term, Attribute):
                        self._condition_attributes.add(term)
                        self._uf.add(term)
                if atom.is_equality:
                    self._equality_atoms.append(atom)
                    self._uf.union(atom.left, atom.right)
        for attribute in self.query.output_attributes():
            self._uf.add(attribute)

    def _build_unification(self) -> None:
        groups = self._uf.groups()
        for root, members in groups.items():
            attributes = sorted(
                (m for m in members if isinstance(m, Attribute)),
                key=lambda a: (a.relation, a.name),
            )
            constants = [m.value for m in members if isinstance(m, Constant)]
            if len(set(map(repr, constants))) > 1:
                first, second = sorted(set(map(repr, constants)))[:2]
                self.unsatisfiable = UnsatisfiableInfo(
                    attributes[0] if attributes else None, (first, second)
                )
            canonical = (
                f"{attributes[0].relation}.{attributes[0].name}"
                if attributes
                else f"const:{constants[0]!r}"
            )
            for member in members:
                if isinstance(member, Attribute):
                    self._canonical[member] = canonical
            if constants:
                self._constants[canonical] = constants[0]

    # -- Σ_Q --------------------------------------------------------------------
    @property
    def equality_atoms(self) -> tuple[Comparison, ...]:
        """The equality atoms collected from the selection conditions."""
        return tuple(self._equality_atoms)

    def entails_equal(self, left: Attribute, right: Attribute) -> bool:
        """Whether ``Σ_Q ⊢ left = right``."""
        return self._uf.find(left) == self._uf.find(right)

    def constant_for(self, attribute: Attribute) -> object | None:
        """The constant ``c`` with ``Σ_Q ⊢ attribute = c``, or ``None``."""
        token = self.unify(attribute)
        if token in self._constants:
            return self._constants[token]
        return None

    # -- ρ_U ---------------------------------------------------------------------
    def unify(self, attribute: Attribute) -> str:
        """``ρ_U(attribute)`` — the canonical name of the attribute's equality class."""
        if attribute in self._canonical:
            return self._canonical[attribute]
        # Attributes never mentioned in a condition are their own class.
        return f"{attribute.relation}.{attribute.name}"

    def unify_all(self, attributes: Iterable[Attribute]) -> frozenset[str]:
        """``ρ_U(X)`` for a set of attributes ``X``."""
        return frozenset(self.unify(a) for a in attributes)

    # -- attribute sets -----------------------------------------------------------
    @property
    def relations(self) -> tuple[Relation, ...]:
        return tuple(self.query.relations())

    @property
    def output_attributes(self) -> tuple[Attribute, ...]:
        return self.query.output_attributes()

    @property
    def needed_attributes(self) -> frozenset[Attribute]:
        """``X_Q``: attributes in the selection conditions or the output of ``Qs``.

        Attributes of intermediate projections are included as well so that a
        canonical plan can replay the original query tree over the fetched
        partial relations.
        """
        return (
            frozenset(self._condition_attributes)
            | frozenset(self._projection_attributes)
            | frozenset(self.query.output_attributes())
        )

    @property
    def constant_attributes(self) -> frozenset[Attribute]:
        """``X_Q^C``: needed attributes whose value is fixed by a constant."""
        return frozenset(
            a for a in self.needed_attributes if self.constant_for(a) is not None
        )

    @property
    def unified_needed(self) -> frozenset[str]:
        """``X̂_Q = ρ_U(X_Q)``."""
        return self.unify_all(self.needed_attributes)

    @property
    def unified_constant(self) -> frozenset[str]:
        """``X̂_Q^C = ρ_U(X_Q^C)``."""
        return self.unify_all(self.constant_attributes)

    def relation_needed_attributes(self, relation: Relation | str) -> frozenset[Attribute]:
        """``X^S_Q``: attributes of relation occurrence ``S`` that are in ``X_Q``."""
        name = relation.name if isinstance(relation, Relation) else relation
        return frozenset(a for a in self.needed_attributes if a.relation == name)

    # -- induced FDs (Σ_{Q,A}) ------------------------------------------------------
    def relevant_constraints(self, access_schema: AccessSchema) -> tuple[AccessConstraint, ...]:
        """Actualized constraints whose relation occurs in this sub-query (``A_Qs``)."""
        names = {r.name for r in self.relations}
        return tuple(c for c in access_schema if c.relation in names)

    def induced_fds(self, access_schema: AccessSchema) -> FDSet:
        """``Σ_{Qs,A}``: the induced FDs of this sub-query and the access schema.

        For each actualized constraint ``S(X -> Y, N)`` on a relation ``S``
        occurring in the sub-query, the induced FD is
        ``ρ_U(S[X]) -> ρ_U(S[Y])`` over unified attribute names.
        """
        fds = FDSet()
        for constraint in self.relevant_constraints(access_schema):
            lhs = self.unify_all(Attribute(constraint.relation, a) for a in constraint.lhs)
            rhs = self.unify_all(Attribute(constraint.relation, a) for a in constraint.rhs)
            fds.add(FunctionalDependency(frozenset(lhs), frozenset(rhs)))
        return fds

    def induced_fd_for(self, constraint: AccessConstraint) -> FunctionalDependency:
        """The single induced FD of one actualized constraint."""
        lhs = self.unify_all(Attribute(constraint.relation, a) for a in constraint.lhs)
        rhs = self.unify_all(Attribute(constraint.relation, a) for a in constraint.rhs)
        return FunctionalDependency(frozenset(lhs), frozenset(rhs))
