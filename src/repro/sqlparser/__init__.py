"""A hand-written parser for the SQL subset used by the examples and workloads.

Supports ``SELECT [DISTINCT] … FROM … [JOIN … ON …] [WHERE …]`` blocks
combined with ``UNION`` and ``EXCEPT``, and translates them into the RA query
AST of :mod:`repro.core.query`.
"""

from .ast import (
    ColumnExpr,
    ComparisonExpr,
    JoinClause,
    LiteralExpr,
    SelectStatement,
    SetOperation,
    TableRef,
)
from .lexer import Token, TokenType, tokenize
from .parser import parse_sql, parse_statement, to_query

__all__ = [
    "ColumnExpr",
    "ComparisonExpr",
    "JoinClause",
    "LiteralExpr",
    "SelectStatement",
    "SetOperation",
    "TableRef",
    "Token",
    "TokenType",
    "parse_sql",
    "parse_statement",
    "to_query",
    "tokenize",
]
