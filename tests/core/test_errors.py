"""Unit tests for the exception hierarchy."""

import pytest

from repro.core.access import AccessConstraint
from repro.core.errors import (
    AccessConstraintError,
    ConstraintViolation,
    DiscoveryError,
    NotCoveredError,
    ParseError,
    PlanError,
    QueryError,
    ReproError,
    SchemaError,
    StorageError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            SchemaError,
            QueryError,
            AccessConstraintError,
            NotCoveredError,
            PlanError,
            ParseError,
            StorageError,
            DiscoveryError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_catching_base_class(self):
        with pytest.raises(ReproError):
            raise QueryError("boom")


class TestParseError:
    def test_position_rendered_as_line_and_column(self):
        error = ParseError("unexpected token", position=12, text="SELECT *\nFROM x")
        assert "line 2" in str(error)
        assert error.position == 12

    def test_without_position(self):
        error = ParseError("oops")
        assert str(error) == "oops"


class TestConstraintViolation:
    def test_message_contains_constraint_and_count(self):
        constraint = AccessConstraint.of("friend", "pid", "fid", 2)
        violation = ConstraintViolation(constraint, ("p0",), 5)
        assert "friend" in str(violation)
        assert "5" in str(violation)
        assert violation.count == 5
        assert violation.constraint is constraint
