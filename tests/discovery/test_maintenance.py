"""Unit tests for incremental maintenance of ⟨A, I_A⟩ (Proposition 12)."""

import pytest

from repro.core.access import AccessConstraint, AccessSchema
from repro.discovery.maintenance import Update, apply_updates, maintain_constraints
from repro.storage.database import Database
from repro.storage.index import IndexSet
from repro.workloads import facebook


@pytest.fixture
def db(fb_schema):
    database = Database(fb_schema)
    database.insert_many("friend", [("p0", "f1"), ("p0", "f2")])
    database.insert_many("dine", [("f1", "c1", "may", 2015)])
    database.insert_many("cafe", [("c1", "nyc")])
    return database


@pytest.fixture
def indexes(db, fb_access):
    return IndexSet.build(db, fb_access)


class TestUpdate:
    def test_constructors(self):
        insert = Update.insert("friend", ("p0", "f9"))
        delete = Update.delete("friend", ("p0", "f9"))
        assert insert.kind == "insert"
        assert delete.kind == "delete"
        assert insert.row == ("p0", "f9")


class TestApplyUpdates:
    def test_insert_updates_database_and_indexes(self, db, indexes, fb_access):
        psi1 = next(c for c in fb_access if c.name == "psi1")
        report = apply_updates(
            db, indexes, fb_access, [Update.insert("friend", ("p0", "f3"))]
        )
        assert report.applied == 1
        assert ("p0", "f3") in db.relation("friend")
        assert ("f3", "p0") in indexes.index_for(psi1).lookup(("p0",))
        assert report.work_units > 0

    def test_duplicate_insert_skipped(self, db, indexes, fb_access):
        report = apply_updates(
            db, indexes, fb_access, [Update.insert("friend", ("p0", "f1"))]
        )
        assert report.applied == 0
        assert report.skipped == 1

    def test_delete_updates_indexes(self, db, indexes, fb_access):
        psi1 = next(c for c in fb_access if c.name == "psi1")
        report = apply_updates(
            db, indexes, fb_access, [Update.delete("friend", ("p0", "f1"))]
        )
        assert report.applied == 1
        assert ("f1", "p0") not in indexes.index_for(psi1).lookup(("p0",))

    def test_delete_missing_row_skipped(self, db, indexes, fb_access):
        report = apply_updates(
            db, indexes, fb_access, [Update.delete("friend", ("p9", "f9"))]
        )
        assert report.skipped == 1

    def test_violation_reported(self, fb_schema):
        tight = AccessSchema(
            [AccessConstraint.of("friend", "pid", "fid", 1, name="tight")],
            schema=fb_schema,
        )
        database = Database(fb_schema)
        database.insert("friend", ("p0", "f1"))
        indexes = IndexSet.build(database, tight)
        report = apply_updates(
            database, indexes, tight, [Update.insert("friend", ("p0", "f2"))]
        )
        assert len(report.violated) == 1

    def test_queries_stay_correct_after_updates(self, fb_database, fb_access):
        from repro.core.planner import plan_query
        from repro.evaluator.algebra import evaluate
        from repro.evaluator.executor import execute_plan

        indexes = IndexSet.build(fb_database, fb_access)
        updates = [
            Update.insert("cafe", ("c_up", "nyc")),
            Update.insert("friend", ("p0", "p_up")),
            Update.insert("dine", ("p_up", "c_up", "may", 2015)),
            Update.delete("cafe", next(iter(fb_database.relation("cafe").rows))),
        ]
        apply_updates(fb_database, indexes, fb_access, updates)
        q1 = facebook.query_q1()
        plan = plan_query(q1, fb_access)
        assert execute_plan(plan, fb_database, indexes).rows == evaluate(q1, fb_database).rows


class TestBatchVersioning:
    def test_batch_costs_one_version_bump(self, db, indexes, fb_access):
        base = db.version
        report = apply_updates(
            db,
            indexes,
            fb_access,
            [
                Update.insert("friend", ("p0", "f3")),
                Update.insert("friend", ("p0", "f4")),
                Update.insert("cafe", ("c2", "sf")),
            ],
        )
        assert report.applied == 3
        assert report.touched_relations == {"friend", "cafe"}
        assert db.version == base + 1  # one tick for the whole batch
        assert report.version == db.version
        assert db.relation_version("friend") == db.version
        assert db.relation_version("cafe") == db.version
        assert db.relation_version("dine") < db.version

    def test_skipped_updates_do_not_touch(self, db, indexes, fb_access):
        base = db.version
        report = apply_updates(
            db,
            indexes,
            fb_access,
            [
                Update.insert("friend", ("p0", "f1")),  # duplicate
                Update.delete("dine", ("zz", "zz", "zz", 0)),  # missing
            ],
        )
        assert report.applied == 0
        assert report.touched_relations == set()
        assert report.version is None
        assert db.version == base

    def test_bump_clock_false_leaves_clock_alone(self, db, indexes, fb_access):
        base = db.version
        report = apply_updates(
            db,
            indexes,
            fb_access,
            [Update.insert("friend", ("p0", "f5"))],
            bump_clock=False,
        )
        assert report.applied == 1
        assert report.touched_relations == {"friend"}
        assert report.version is None
        assert db.version == base


class TestEngineBatchUpdates:
    def test_engine_batch_sweeps_caches_once_and_stays_correct(
        self, fb_database, fb_access
    ):
        from repro.core.engine import BoundedEngine
        from repro.evaluator.algebra import evaluate

        engine = BoundedEngine(fb_database, fb_access, delta_repair=False)
        q1 = facebook.query_q1()
        engine.execute(q1)
        assert engine.execute(q1).result_cached
        base_version = fb_database.version
        report = engine.apply_updates(
            [
                Update.insert("cafe", ("c_b", "nyc")),
                Update.insert("friend", ("p0", "p_b")),
                Update.insert("dine", ("p_b", "c_b", "may", 2015)),
            ]
        )
        assert report.applied == 3
        assert report.applied_updates[0].row == ("c_b", "nyc")
        assert fb_database.version == base_version + 1  # one bump for the batch
        assert report.version == fb_database.version
        assert engine.cache_stats()["plan_store"]["sweeps"] == 1  # one sweep too
        result = engine.execute(q1)
        assert not result.cached
        assert ("c_b",) in result.rows
        assert result.rows == evaluate(q1, fb_database).rows

    def test_engine_batch_repairs_cached_result_with_delta_maintenance(
        self, fb_database, fb_access
    ):
        from repro.core.engine import BoundedEngine
        from repro.evaluator.algebra import evaluate

        engine = BoundedEngine(fb_database, fb_access)  # delta repair default
        q1 = facebook.query_q1()
        engine.execute(q1)
        assert engine.execute(q1).result_cached
        base_version = fb_database.version
        report = engine.apply_updates(
            [
                Update.insert("cafe", ("c_b", "nyc")),
                Update.insert("friend", ("p0", "p_b")),
                Update.insert("dine", ("p_b", "c_b", "may", 2015)),
            ]
        )
        assert report.applied == 3
        assert fb_database.version == base_version + 1  # one bump for the batch
        # one derivation pass for the whole batch, not one per update
        stats = engine.cache_stats()["result_cache"]
        assert stats["repaired"] == 1
        assert engine.cache_stats()["plan_store"]["sweeps"] == 0
        result = engine.execute(q1)
        assert result.cached and result.result_cached
        assert ("c_b",) in result.rows
        assert result.rows == evaluate(q1, fb_database).rows

    def test_engine_batch_on_unrelated_relation_keeps_hot_entries(self, hot_cold_setup):
        from repro.core.engine import BoundedEngine

        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access)
        engine.execute(hot_query)
        report = engine.apply_updates(
            [Update.insert("cold", ("y", 1)), Update.delete("cold", ("x", 9))]
        )
        assert report.touched_relations == {"cold"}
        repeat = engine.execute(hot_query)
        assert repeat.cached
        assert repeat.result_cached
        assert engine.cache_stats()["plan_store"]["invalidated"] == 0

    def test_engine_batch_of_noops_sweeps_nothing(self, fb_database, fb_access):
        from repro.core.engine import BoundedEngine

        engine = BoundedEngine(fb_database, fb_access)
        q1 = facebook.query_q1()
        engine.execute(q1)
        existing = next(iter(fb_database.relation("cafe").rows))
        report = engine.apply_updates([Update.insert("cafe", existing)])
        assert report.applied == 0
        assert engine.cache_stats()["plan_store"]["sweeps"] == 0
        assert engine.execute(q1).result_cached


class TestMaintainConstraints:
    def test_no_violation_returns_same_schema(self, db, indexes, fb_access):
        schema, report = maintain_constraints(
            db, indexes, fb_access, [Update.insert("friend", ("p1", "f1"))]
        )
        assert schema is fb_access
        assert not report.adjusted

    def test_bound_raised_when_outgrown(self, fb_schema):
        tight = AccessSchema(
            [AccessConstraint.of("friend", "pid", "fid", 2, name="tight")],
            schema=fb_schema,
        )
        database = Database(fb_schema)
        database.insert_many("friend", [("p0", "f1"), ("p0", "f2")])
        indexes = IndexSet.build(database, tight)
        updates = [Update.insert("friend", ("p0", "f3"))]
        adjusted, report = maintain_constraints(database, indexes, tight, updates)
        new_constraint = next(iter(adjusted))
        assert new_constraint.bound >= 3
        assert report.adjusted
        assert database.satisfies_schema(adjusted)

    def test_work_independent_of_database_size(self, fb_access):
        """Proposition 12: maintenance work depends on |ΔD| and A only."""
        small = facebook.generate(scale=30, seed=2)
        large = facebook.generate(scale=150, seed=2)
        updates = [Update.insert("friend", (f"px{i}", f"fy{i}")) for i in range(20)]
        small_report = apply_updates(
            small, IndexSet.build(small, fb_access), fb_access, updates
        )
        large_report = apply_updates(
            large, IndexSet.build(large, fb_access), fb_access, updates
        )
        assert small_report.work_units == large_report.work_units
