"""Documentation checks: docstring coverage + relative-link integrity.

Stdlib only (the CI image has no pydocstyle).  Two passes:

1. **Docstrings** — every module, public class, and public function/method
   under ``src/repro/core/`` must carry a docstring.  "Public" means the
   name has no leading underscore and, for methods, the enclosing class is
   public too.  One carve-out, mirroring interrogate's
   ``--ignore-property-decorators``: a ``@property`` (or
   ``@cached_property``) getter whose body is a single ``return`` is a
   named attribute, not behaviour — the class docstring documents it.
2. **Links** — every relative Markdown link or image in ``README.md`` and
   ``docs/**/*.md`` (and ``benchmarks/README.md``) must resolve to a file
   or directory in the repo.  External links (``http://``, ``https://``,
   ``mailto:``) and intra-page anchors (``#...``) are skipped; an anchor
   suffix on a relative link (``file.md#section``) is stripped before the
   existence check.

Exit code 1 with one ``path:line: message`` per problem; 0 when clean.

Run from the repo root (as CI does)::

    python scripts/check_docs.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCSTRING_ROOTS = [REPO / "src" / "repro" / "core"]
MARKDOWN_FILES = [REPO / "README.md", REPO / "benchmarks" / "README.md"]
MARKDOWN_GLOBS = [(REPO / "docs", "**/*.md")]

#: inline Markdown links/images: [text](target) / ![alt](target) — tolerates
#: one level of nested parentheses in the target, strips a trailing title.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?[^()]*)\)")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_trivial_property(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """A ``@property``/``@cached_property`` getter that just returns a value."""
    names = set()
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name):
            names.add(decorator.id)
        elif isinstance(decorator, ast.Attribute):
            names.add(decorator.attr)
    if not names & {"property", "cached_property"}:
        return False
    return len(node.body) == 1 and isinstance(node.body[0], ast.Return)


def _check_docstrings(path: Path, problems: list[str]) -> None:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    rel = path.relative_to(REPO)
    if ast.get_docstring(tree) is None:
        problems.append(f"{rel}:1: module is missing a docstring")

    def visit(node: ast.AST, inside_public_class: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if (
                    _is_public(child.name)
                    and ast.get_docstring(child) is None
                    and not _is_trivial_property(child)
                ):
                    kind = "method" if inside_public_class else "function"
                    problems.append(
                        f"{rel}:{child.lineno}: public {kind} "
                        f"'{child.name}' is missing a docstring"
                    )
                # Nested defs are implementation detail: don't descend.
            elif isinstance(child, ast.ClassDef):
                public = _is_public(child.name)
                if public and ast.get_docstring(child) is None:
                    problems.append(
                        f"{rel}:{child.lineno}: public class "
                        f"'{child.name}' is missing a docstring"
                    )
                if public:
                    visit(child, inside_public_class=True)

    visit(tree, inside_public_class=False)


def _iter_links(text: str):
    """Yield ``(lineno, target)`` for inline links outside code fences."""
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


def _check_links(path: Path, problems: list[str]) -> None:
    rel = path.relative_to(REPO)
    for lineno, target in _iter_links(path.read_text(encoding="utf-8")):
        target = target.split('"')[0].strip()  # drop an optional link title
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]  # strip an anchor suffix
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        try:
            resolved.relative_to(REPO)
        except ValueError:
            problems.append(
                f"{rel}:{lineno}: link target escapes the repo: {target}"
            )
            continue
        if not resolved.exists():
            problems.append(
                f"{rel}:{lineno}: broken relative link: {target}"
            )


def main() -> int:
    """Run both passes over the configured roots; print problems, exit 1 on any."""
    problems: list[str] = []

    for root in DOCSTRING_ROOTS:
        for path in sorted(root.rglob("*.py")):
            _check_docstrings(path, problems)

    markdown = [p for p in MARKDOWN_FILES if p.exists()]
    for base, pattern in MARKDOWN_GLOBS:
        if base.exists():
            markdown.extend(sorted(base.glob(pattern)))
    for path in markdown:
        _check_links(path, problems)

    for problem in problems:
        print(problem)
    checked = sum(1 for root in DOCSTRING_ROOTS for _ in root.rglob("*.py"))
    print(
        f"checked {checked} modules for docstrings, "
        f"{len(markdown)} markdown files for links: "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
