"""Tests for the random RA query generator."""

import pytest

from repro.core.coverage import check_coverage
from repro.core.query import Difference, Union
from repro.core.spc import max_spc_subqueries
from repro.evaluator.algebra import evaluate
from repro.workloads import WORKLOADS, RandomQueryGenerator
from repro.workloads.generator import QueryParameters


@pytest.fixture(scope="module")
def airca_generator():
    workload = WORKLOADS["AIRCA"]
    return RandomQueryGenerator(workload, seed=123, sample_scale=40)


class TestGeneration:
    def test_generated_query_is_well_formed(self, airca_generator):
        query = airca_generator.generate(n_sel=4, n_join=2, n_unidiff=0)
        assert query.size > 0
        assert query.arity() >= 1
        # normalization must succeed (distinct occurrence names)
        names = [r.name for r in query.relations()]
        assert len(names) == len(set(names))

    def test_join_count_respected(self, airca_generator):
        for n_join in (0, 1, 3):
            query = airca_generator.generate(n_sel=4, n_join=n_join, n_unidiff=0)
            relations = list(query.relations())
            assert len(relations) <= n_join + 1

    def test_unidiff_creates_set_operators(self, airca_generator):
        query = airca_generator.generate(n_sel=4, n_join=1, n_unidiff=2)
        set_nodes = [
            node for node in query.subqueries() if isinstance(node, (Union, Difference))
        ]
        assert len(set_nodes) == 2
        assert len(max_spc_subqueries(query)) == 3

    def test_selection_atoms_count(self, airca_generator):
        query = airca_generator.generate(n_sel=6, n_join=1, n_unidiff=0)
        # the block has one selection node with exactly n_sel atoms
        conditions = [
            node.condition.atom_count
            for node in query.subqueries()
            if type(node).__name__ == "Selection"
        ]
        assert sum(conditions) == 6

    def test_determinism_per_seed(self):
        workload = WORKLOADS["TFACC"]
        a = RandomQueryGenerator(workload, seed=5, sample_scale=30).generate_batch(5)
        b = RandomQueryGenerator(workload, seed=5, sample_scale=30).generate_batch(5)
        assert [p for p, _ in a] == [p for p, _ in b]
        assert [q.size for _, q in a] == [q.size for _, q in b]

    def test_batch_parameters_in_range(self, airca_generator):
        batch = airca_generator.generate_batch(
            10, sel_range=(4, 9), join_range=(0, 5), unidiff_range=(0, 5)
        )
        for parameters, _ in batch:
            assert isinstance(parameters, QueryParameters)
            assert 4 <= parameters.n_sel <= 9
            assert 0 <= parameters.n_join <= 5
            assert 0 <= parameters.n_unidiff <= 5


class TestGeneratedQueriesUsable:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_queries_checkable_and_evaluable(self, name):
        workload = WORKLOADS[name]
        database = workload.database(scale=40, seed=1)
        generator = RandomQueryGenerator(workload, database=database, seed=7)
        some_covered = False
        for _, query in generator.generate_batch(15):
            result = check_coverage(query, workload.access_schema)
            some_covered = some_covered or result.is_covered
            # reference evaluation must not crash, whatever was generated
            evaluate(query, database)
        assert some_covered, "expected at least one covered query out of 15"

    def test_constants_come_from_data(self, airca_generator):
        """Selection constants are sampled from the generated instance's values."""
        query = airca_generator.generate(n_sel=5, n_join=0, n_unidiff=0)
        from repro.core.query import Constant

        constants = [
            term.value
            for node in query.subqueries()
            if hasattr(node, "condition")
            for atom in node.condition.atoms()
            for term in (atom.left, atom.right)
            if isinstance(term, Constant)
        ]
        assert constants
