"""The running example of the paper (Example 1): Facebook-style Graph Search.

Three relations — ``friend(pid, fid)``, ``dine(pid, cid, month, year)`` and
``cafe(cid, city)`` — together with the access constraints ψ1–ψ4.  The data
generator produces a social graph whose fan-outs respect the constraints
(at most ``max_friends`` friends per person, at most 31 restaurants per
person per month), so that ``D |= A_0`` at every scale.
"""

from __future__ import annotations

import random

from ..core.access import AccessConstraint, AccessSchema
from ..core.query import Query, Relation, conjunction, eq
from ..core.schema import DatabaseSchema
from ..storage.database import Database
from .base import WorkloadSpec

MONTHS = (
    "jan", "feb", "mar", "apr", "may", "jun",
    "jul", "aug", "sep", "oct", "nov", "dec",
)
CITIES = ("nyc", "boston", "chicago", "seattle", "austin", "denver", "miami", "la")


def schema() -> DatabaseSchema:
    """The relational schema of Example 1."""
    return DatabaseSchema.from_dict(
        {
            "friend": ["pid", "fid"],
            "dine": ["pid", "cid", "month", "year"],
            "cafe": ["cid", "city"],
        }
    )


def access_schema(database_schema: DatabaseSchema | None = None) -> AccessSchema:
    """The access schema ``A_0 = {ψ1, ψ2, ψ3, ψ4}`` of Example 1."""
    database_schema = database_schema or schema()
    return AccessSchema(
        [
            AccessConstraint.of("friend", "pid", "fid", 5000, name="psi1"),
            AccessConstraint.of("dine", ["pid", "year", "month"], "cid", 31, name="psi2"),
            AccessConstraint.of("dine", ["pid", "cid"], ["pid", "cid"], 1, name="psi3"),
            AccessConstraint.of("cafe", "cid", "city", 1, name="psi4"),
        ],
        schema=database_schema,
    )


def generate(scale: int = 200, seed: int = 0, *, max_friends: int = 40) -> Database:
    """A synthetic social graph with ``scale`` people, satisfying ``A_0``.

    ``max_friends`` caps the friend fan-out (well below ψ1's 5000 so tests
    stay fast); each person dines at a handful of cafes per month, far below
    ψ2's limit of 31.
    """
    rng = random.Random(seed)
    database = Database(schema())

    people = [f"p{i}" for i in range(scale)]
    n_cafes = max(10, scale // 4)
    cafes = [f"c{i}" for i in range(n_cafes)]
    years = (2013, 2014, 2015)

    for cid in cafes:
        database.insert("cafe", (cid, rng.choice(CITIES)))

    for pid in people:
        friend_count = rng.randint(1, min(max_friends, max(1, scale - 1)))
        for fid in rng.sample(people, min(friend_count, len(people))):
            if fid != pid:
                database.insert("friend", (pid, fid))

    for pid in people:
        for year in years:
            for month in rng.sample(MONTHS, rng.randint(1, 4)):
                for cid in rng.sample(cafes, rng.randint(1, 3)):
                    database.insert("dine", (pid, cid, month, year))

    return database


# ---------------------------------------------------------------------------
# The queries of Example 1
# ---------------------------------------------------------------------------

def query_q1(person: str = "p0", month: str = "may", year: int = 2015, city: str = "nyc") -> Query:
    """``Q1``: restaurants in ``city`` where friends of ``person`` dined in ``month``/``year``."""
    s = schema()
    friend = Relation.from_schema(s, "friend")
    dine = Relation.from_schema(s, "dine")
    cafe = Relation.from_schema(s, "cafe")
    return (
        friend.join(dine, eq(friend["fid"], dine["pid"]))
        .select(
            conjunction(
                [eq(friend["pid"], person), eq(dine["month"], month), eq(dine["year"], year)]
            )
        )
        .join(cafe, eq(dine["cid"], cafe["cid"]))
        .select(eq(cafe["city"], city))
        .project([dine["cid"]])
    )


def query_q2(person: str = "p0") -> Query:
    """``Q2``: every restaurant where ``person`` has dined (not covered by ``A_0``)."""
    s = schema()
    dine = Relation("dine_q2", s["dine"].attributes, base="dine")
    return dine.select(eq(dine["pid"], person)).project([dine["cid"]])


def query_q0(person: str = "p0", month: str = "may", year: int = 2015, city: str = "nyc") -> Query:
    """``Q0 = Q1 − Q2``: the Graph Search query as originally written (not covered)."""
    return query_q1(person, month, year, city).difference(query_q2(person))


def query_q3(person: str = "p0", month: str = "may", year: int = 2015, city: str = "nyc") -> Query:
    """``Q3``: the guarded version of ``Q2`` — ``Q1``'s answers that ``person`` has visited."""
    s = schema()
    friend = Relation("friend_g", s["friend"].attributes, base="friend")
    dine = Relation("dine_g", s["dine"].attributes, base="dine")
    cafe = Relation("cafe_g", s["cafe"].attributes, base="cafe")
    check = Relation("dine_chk", s["dine"].attributes, base="dine")
    inner_q1 = (
        friend.join(dine, eq(friend["fid"], dine["pid"]))
        .select(
            conjunction(
                [eq(friend["pid"], person), eq(dine["month"], month), eq(dine["year"], year)]
            )
        )
        .join(cafe, eq(dine["cid"], cafe["cid"]))
        .select(eq(cafe["city"], city))
        .project([dine["cid"]])
    )
    return (
        inner_q1.join(check, eq(dine["cid"], check["cid"]))
        .select(eq(check["pid"], person))
        .project([dine["cid"]])
    )


def query_q0_prime(
    person: str = "p0", month: str = "may", year: int = 2015, city: str = "nyc"
) -> Query:
    """``Q0' = Q1 − Q3``: the covered, A-equivalent rewriting of ``Q0``."""
    return query_q1(person, month, year, city).difference(query_q3(person, month, year, city))


JOIN_EDGES = (
    (("friend", "fid"), ("dine", "pid")),
    (("friend", "pid"), ("dine", "pid")),
    (("dine", "cid"), ("cafe", "cid")),
)

WORKLOAD = WorkloadSpec(
    name="facebook",
    schema=schema(),
    access_schema=access_schema(),
    generate=generate,
    join_edges=JOIN_EDGES,
    description="Graph-Search running example of the paper (friend/dine/cafe)",
    default_scale=200,
)
