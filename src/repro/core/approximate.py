"""Approximate answers for queries that are not boundedly evaluable.

The paper's conclusion lists, as future work, computing *approximate* answers
with accuracy guarantees for queries that are not boundedly evaluable, while
still accessing only a small fraction of the data.  This module implements a
first version of that idea on top of covered queries:

every max SPC sub-query of ``Q`` that is covered is answered exactly by its
bounded plan; uncovered sub-queries are treated as *unknown* and the
union/difference skeleton above them is evaluated with interval semantics —
each node carries a set of **certain** answers (a lower bound of ``Q(D)``)
and, when known, a set of **possible** answers (an upper bound):

* covered SPC sub-query: ``certain = possible =`` its bounded answer;
* uncovered SPC sub-query: ``certain = ∅``, ``possible`` unknown;
* ``L ∪ R``: certain = certainL ∪ certainR; possible known iff both are;
* ``L − R``: certain = certainL − possibleR (∅ if possibleR unknown);
  possible = possibleL − certainR (unknown if possibleL is).

The result is sound: ``certain ⊆ Q(D)`` and, when the upper bound is known,
``Q(D) ⊆ possible`` — on every database satisfying the access schema.  The
engine tries exact bounded evaluation (including A-equivalent rewrites) first
and only then falls back to this approximation, so the answer degrades
gracefully instead of forcing a full scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..evaluator.algebra import ResultSet
from ..evaluator.executor import PlanExecutor
from ..storage.counters import AccessCounter
from ..storage.database import Database
from ..storage.index import IndexSet
from .access import AccessSchema
from .coverage import CoverageResult, check_coverage
from .errors import PlanError
from .normalize import normalize
from .planner import generate_plan
from .query import Difference, Query, Union
from .rewrite import find_covered_rewrite
from .spc import max_spc_subqueries


@dataclass
class ApproximateResult:
    """A two-sided approximation of ``Q(D)`` computed with bounded access.

    ``certain`` is always a subset of the true answer.  ``possible`` is a
    superset when ``upper_known`` is true, and ``None`` otherwise (some
    positive part of the query could not be bounded at all).  ``exact`` is
    true when the two coincide, i.e. the query was answered exactly.
    """

    certain: frozenset[tuple]
    possible: frozenset[tuple] | None
    exact: bool
    counter: AccessCounter
    columns: tuple[str, ...] = ()
    subquery_status: Mapping[int, bool] | None = None

    @property
    def upper_known(self) -> bool:
        return self.possible is not None

    def precision_interval(self) -> tuple[int, int | None]:
        """(|certain|, |possible| or None) — the size envelope of the true answer."""
        return len(self.certain), None if self.possible is None else len(self.possible)


@dataclass
class _Interval:
    certain: frozenset[tuple]
    possible: frozenset[tuple] | None  # None = unknown / unbounded


def _combine_union(left: _Interval, right: _Interval) -> _Interval:
    possible = (
        left.possible | right.possible
        if left.possible is not None and right.possible is not None
        else None
    )
    return _Interval(left.certain | right.certain, possible)


def _combine_difference(left: _Interval, right: _Interval) -> _Interval:
    certain = (
        left.certain - right.possible if right.possible is not None else frozenset()
    )
    possible = left.possible - right.certain if left.possible is not None else None
    return _Interval(certain, possible)


class ApproximateEvaluator:
    """Evaluates non-covered queries approximately, accessing data via indexes only."""

    def __init__(self, database: Database, access_schema: AccessSchema, indexes: IndexSet):
        self.database = database
        self.access_schema = access_schema
        self.indexes = indexes
        self._executor = PlanExecutor(database, indexes)

    def evaluate(self, query: Query, *, allow_rewrite: bool = True) -> ApproximateResult:
        """Approximate ``Q(D)`` with bounded data access.

        If the query (or an A-equivalent rewrite of it) is covered, the exact
        bounded answer is returned with ``exact=True``.
        """
        counter = AccessCounter()

        target = query
        coverage = check_coverage(query, self.access_schema)
        if not coverage.is_covered and allow_rewrite:
            verdict = find_covered_rewrite(query, self.access_schema)
            if verdict.bounded and verdict.witness is not None:
                target = verdict.witness
                coverage = check_coverage(target, self.access_schema)

        if coverage.is_covered:
            plan = generate_plan(coverage)
            execution = self._executor.execute(plan, counter)
            return ApproximateResult(
                certain=execution.rows,
                possible=execution.rows,
                exact=True,
                counter=counter,
                columns=execution.columns,
            )

        normalized = normalize(target)
        statuses: dict[int, bool] = {}
        interval = self._approximate(normalized.query, counter, statuses)
        exact = (
            interval.possible is not None and interval.possible == interval.certain
        )
        columns = tuple(str(a) for a in normalized.query.output_attributes())
        return ApproximateResult(
            certain=interval.certain,
            possible=interval.possible,
            exact=exact,
            counter=counter,
            columns=columns,
            subquery_status=statuses,
        )

    # ------------------------------------------------------------------
    def _approximate(
        self, node: Query, counter: AccessCounter, statuses: dict[int, bool]
    ) -> _Interval:
        if isinstance(node, Union):
            left = self._approximate(node.left, counter, statuses)
            right = self._approximate(node.right, counter, statuses)
            return _combine_union(left, right)
        if isinstance(node, Difference):
            left = self._approximate(node.left, counter, statuses)
            right = self._approximate(node.right, counter, statuses)
            return _combine_difference(left, right)
        # An SPC subtree (or a non-normal-form construct treated as a unit).
        return self._spc_interval(node, counter, statuses)

    def _spc_interval(
        self, node: Query, counter: AccessCounter, statuses: dict[int, bool]
    ) -> _Interval:
        coverage = check_coverage(node, self.access_schema)
        statuses[id(node)] = coverage.is_covered
        if not coverage.is_covered:
            return _Interval(frozenset(), None)
        try:
            plan = generate_plan(coverage)
            execution = self._executor.execute(plan, counter)
        except PlanError:
            return _Interval(frozenset(), None)
        return _Interval(execution.rows, execution.rows)


def approximate_answer(
    query: Query,
    database: Database,
    access_schema: AccessSchema,
    indexes: IndexSet | None = None,
) -> ApproximateResult:
    """Convenience wrapper around :class:`ApproximateEvaluator`."""
    if indexes is None:
        indexes = IndexSet.build(database, access_schema, check=False)
    return ApproximateEvaluator(database, access_schema, indexes).evaluate(query)
