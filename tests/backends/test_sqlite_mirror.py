"""SQLite mirror write-path: delete support, insert dedupe, randomized drift check.

The mirror's contract is lockstep with its :class:`~repro.storage.database.
Database`: after any interleaving of inserts and deletes routed through both,
the SQLite base tables hold exactly the relation instances' rows, the index
tables hold exactly the constraint projections, and bounded-plan SQL and
conventional SQL both agree row-for-row with the in-memory reference.  These
tests pin the two write-path fixes (``apply_delete`` existing at all, and
``apply_insert`` deduplicating base rows under set semantics) and then hammer
the whole contract with a seeded randomized op sequence.
"""

import random

import pytest

from repro.backends.sqlite import SQLiteBackend
from repro.core.engine import BoundedEngine
from repro.core.errors import StorageError
from repro.core.planner import plan_query
from repro.evaluator.algebra import evaluate
from repro.workloads import facebook

#: ψ3's index table: dine([pid, cid] → [pid, cid]); its columns are a proper
#: subset of dine's, so several base rows can share one index row.
PSI3_TABLE = "ind_dine_cid_pid__cid_pid"


@pytest.fixture
def backend(fb_database, fb_access):
    with SQLiteBackend(fb_database) as backend:
        backend.create_index_tables(fb_access)
        yield backend


def _count(backend, table: str) -> int:
    result = backend.run_sql(f'SELECT COUNT(*) FROM "{table}"')
    return next(iter(result.rows))[0]


class TestApplyDelete:
    def test_removes_base_row(self, backend):
        row = next(iter(backend.database.relation("cafe").rows))
        before = _count(backend, "cafe")
        backend.apply_delete("cafe", row)
        assert _count(backend, "cafe") == before - 1

    def test_absent_row_is_a_noop(self, backend):
        before = _count(backend, "friend")
        index_before = backend.index_size()
        backend.apply_delete("friend", ("ghost", "ghost"))
        assert _count(backend, "friend") == before
        assert backend.index_size() == index_before

    def test_shared_index_row_outlives_first_base_row(self, backend):
        # Two dine rows differing only in month project to ONE ψ3 index row.
        first = ("p_share", "c_share", "may", 2015)
        second = ("p_share", "c_share", "jun", 2015)
        backend.apply_insert("dine", first)
        backend.apply_insert("dine", second)
        shared = backend.run_sql(
            f'SELECT * FROM "{PSI3_TABLE}" WHERE "pid" = \'p_share\''
        )
        assert len(shared.rows) == 1

        # Deleting one base row must keep the index row: the other still
        # projects to it — dropping it would lose bounded-plan answers.
        backend.apply_delete("dine", first)
        assert len(
            backend.run_sql(
                f'SELECT * FROM "{PSI3_TABLE}" WHERE "pid" = \'p_share\''
            ).rows
        ) == 1
        # Deleting the last projecting base row finally drops the index row.
        backend.apply_delete("dine", second)
        assert (
            backend.run_sql(
                f'SELECT * FROM "{PSI3_TABLE}" WHERE "pid" = \'p_share\''
            ).rows
            == frozenset()
        )


class TestApplyInsertDedupe:
    def test_duplicate_insert_does_not_grow_base_table(self, backend):
        existing = next(iter(backend.database.relation("friend").rows))
        before = _count(backend, "friend")
        backend.apply_insert("friend", existing)
        assert _count(backend, "friend") == before

    def test_delete_after_duplicate_insert_leaves_no_copy(self, backend):
        # The pre-fix behaviour left TWO SQLite copies after a duplicate
        # insert, so one delete still left a phantom row behind.
        existing = next(iter(backend.database.relation("cafe").rows))
        backend.apply_insert("cafe", existing)
        backend.apply_delete("cafe", existing)
        conditions = " AND ".join(
            f'"{a}" = ?' for a in backend.database.schema["cafe"].attributes
        )
        cursor = backend.connection.cursor()
        cursor.execute(f'SELECT COUNT(*) FROM "cafe" WHERE {conditions}', existing)
        assert cursor.fetchone()[0] == 0


class TestFetchIndex:
    def test_matches_manual_projection(self, backend, fb_access, fb_database):
        psi1 = next(c for c in fb_access if c.name == "psi1")
        rows = backend.fetch_index(psi1, [("p0",)])
        expected = {
            (row[1], row[0])  # index columns are sorted(lhs|rhs) = (fid, pid)
            for row in fb_database.relation("friend").rows
            if row[0] == "p0"
        }
        assert rows == frozenset(expected)

    def test_multiple_keys_union(self, backend, fb_access):
        psi4 = next(c for c in fb_access if c.name == "psi4")
        one = backend.fetch_index(psi4, [("c0",)])
        two = backend.fetch_index(psi4, [("c1",)])
        both = backend.fetch_index(psi4, [("c0",), ("c1",)])
        assert both == one | two

    def test_missing_table_raises(self, fb_database, fb_access):
        with SQLiteBackend(fb_database) as bare:
            psi1 = next(c for c in fb_access if c.name == "psi1")
            with pytest.raises(StorageError, match="has not been created"):
                bare.fetch_index(psi1, [("p0",)])


class TestRandomizedMirrorCrossCheck:
    """Identical op sequences through engine and mirror; full agreement after every step."""

    def test_mixed_insert_delete_sequence_stays_in_lockstep(self):
        database = facebook.generate(scale=20, seed=3)
        access = facebook.access_schema(database.schema)
        engine = BoundedEngine(database, access, check_constraints=False)
        rng = random.Random(97)
        queries = [facebook.query_q1(), facebook.query_q0_prime()]
        plans = [plan_query(query, access) for query in queries]
        ghosts = {
            "friend": ("ghost", "ghost"),
            "dine": ("ghost", "ghostc", "jan", 1999),
            "cafe": ("ghostc", "nowhere"),
        }

        with SQLiteBackend(database) as backend:
            backend.create_index_tables(access)
            removed: dict[str, list[tuple]] = {n: [] for n in database.relation_names()}

            def apply(kind: str, relation: str, row: tuple) -> None:
                # One op, two substrates: Database+IndexSet via the engine,
                # SQLite base+index tables via the mirror.
                if kind == "insert":
                    engine.apply_insert(relation, row)
                    backend.apply_insert(relation, row)
                else:
                    engine.apply_delete(relation, row)
                    backend.apply_delete(relation, row)

            for step in range(60):
                relation = rng.choice(database.relation_names())
                instance = database.relation(relation)
                roll = rng.random()
                if roll < 0.35 and len(instance) > 0:
                    row = rng.choice(sorted(instance.rows))
                    removed[relation].append(row)
                    apply("delete", relation, row)
                elif roll < 0.60 and removed[relation]:
                    apply("insert", relation, removed[relation].pop())
                elif roll < 0.80 and len(instance) > 0:
                    apply("insert", relation, rng.choice(sorted(instance.rows)))  # duplicate
                else:
                    apply("delete", relation, ghosts[relation])  # absent

                # Base tables mirror the relation instances exactly.
                for name in database.relation_names():
                    assert _count(backend, name) == len(database.relation(name)), (
                        f"step {step}: base table {name} drifted"
                    )
                # Index tables hold exactly the constraint projections.
                for table, constraint in backend._index_constraints.items():
                    columns = sorted(constraint.lhs | constraint.rhs)
                    schema = database.schema[constraint.relation]
                    positions = schema.positions(columns)
                    expected = {
                        tuple(row[p] for p in positions)
                        for row in database.relation(constraint.relation).rows
                    }
                    actual = backend.run_sql(f'SELECT * FROM "{table}"').rows
                    assert actual == frozenset(expected), (
                        f"step {step}: index table {table} drifted"
                    )
                # Bounded-plan SQL, conventional SQL, the engine, and the
                # reference evaluator all agree row-for-row.
                for query, plan in zip(queries, plans):
                    reference = evaluate(query, database).rows
                    assert backend.run_bounded_plan(plan).rows == reference, (
                        f"step {step}: bounded plan diverged"
                    )
                    assert backend.run_query(query).rows == reference, (
                        f"step {step}: conventional SQL diverged"
                    )
                    assert engine.execute(query).rows == reference, (
                        f"step {step}: engine diverged"
                    )
