"""Epoch-guarded online migration of a key range between shards.

Rebalancing must serve correct reads *throughout* — the reason it is
affordable at all is the paper's boundedness: the rows in a key range of
one relation are a bounded, enumerable set, not a table scan.  The
protocol mirrors a routed write batch's epoch discipline:

1. **Copy** — the source shard's rows of the relation whose partition-key
   value falls in ``[lo, hi)`` are inserted into the destination through
   its own write path (indexes maintained).  During this window the rows
   exist on both shards; that is safe because fetch merges are set unions
   (broadcast fetches dedup the double presence) and routed fetches still
   consult the *pre-flip* map, which sends the range's keys to the source.
2. **Verify** — the source's epoch is re-validated against the snapshot
   taken before the copy.  If a routed write landed on the source
   mid-copy, the copied rows may be a torn mixture, so the copy is undone
   on the destination and the whole step retries; after
   ``max_snapshot_retries`` failures a
   :class:`~repro.core.errors.TransientFault` propagates (never a torn
   layout) — exactly the merge contract.
3. **Flip** — one :meth:`~repro.sharding.partition.PartitionOverlay.
   add_override` entry atomically (single-threaded serving loop; the flip
   is one Python operation between requests) redirects the range's keys to
   the destination for fetch routing *and* write routing.
4. **Drop** — the source deletes its now-foreign copies.  Broadcast
   fetches during this tail window still union both fragments, which is
   again dedup-safe.

The router-level clock is bumped over the relation afterwards: contents
did not change, but the serving tier's lock-free validation treats layout
changes conservatively, like any routed batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ReproError, StorageError, TransientFault
from ..discovery.maintenance import Update


@dataclass
class RebalanceReport:
    """Outcome of one key-range migration."""

    relation: str
    lo: object
    hi: object
    src: str
    dst: str
    rows_moved: int = 0
    retries: int = 0
    #: destination-side inserts undone because the source epoch moved mid-copy
    rows_undone: int = 0
    completed: bool = False
    notes: list[str] = field(default_factory=list)

    def snapshot(self) -> dict[str, object]:
        return {
            "relation": self.relation,
            "range": [repr(self.lo), repr(self.hi)],
            "src": self.src,
            "dst": self.dst,
            "rows_moved": self.rows_moved,
            "retries": self.retries,
            "rows_undone": self.rows_undone,
            "completed": self.completed,
        }


def rebalance_key_range(
    router,
    relation: str,
    key_range: tuple,
    src: int,
    dst: int,
) -> RebalanceReport:
    """Migrate ``relation``'s keys in ``[lo, hi)`` from shard ``src`` to ``dst``.

    ``router`` is a :class:`~repro.sharding.router.ShardRouter` whose
    partitioner is (or has been wrapped into) a
    :class:`~repro.sharding.partition.PartitionOverlay`.  Reads stay correct
    at every intermediate state; the partition map flips only after the copy
    is verified against an unmoved source epoch.
    """
    lo, hi = key_range
    if src == dst:
        raise StorageError("rebalance source and destination must differ")
    for index in (src, dst):
        if not (0 <= index < len(router.shards)):
            raise StorageError(
                f"rebalance shard index {index} out of range for "
                f"{len(router.shards)} shards"
            )
    overlay = router.partitioner
    if not hasattr(overlay, "add_override"):
        raise StorageError(
            "rebalance needs a PartitionOverlay partitioner (the router "
            "installs one at construction)"
        )
    src_shard, dst_shard = router.shards[src], router.shards[dst]
    position = overlay._positions[relation]
    report = RebalanceReport(
        relation=relation, lo=lo, hi=hi, src=src_shard.name, dst=dst_shard.name
    )

    for _attempt in range(router.max_snapshot_retries + 1):
        epoch = src_shard.snapshot((relation,))
        moving: list[tuple] = []
        for row in src_shard.relation_rows(relation):
            value = row[position]
            try:
                in_range = lo <= value < hi
            except TypeError:
                continue
            if in_range:
                moving.append(row)
        if not moving:
            # Nothing to copy: flip immediately (still guarded — an empty
            # range is trivially epoch-consistent) so future writes route
            # to the destination.
            overlay.add_override(relation, lo, hi, src, dst)
            report.completed = True
            break
        try:
            dst_shard.apply_updates([Update.insert(relation, row) for row in moving])
        except ReproError as error:
            # A faulting destination may have applied a prefix; undo it
            # (deleting a never-copied row is a harmless skip) so no stale
            # copy can leak into a later broadcast merge, then surface the
            # fault — the flip never happened, reads stay on the source.
            try:
                dst_shard.apply_updates(
                    [Update.delete(relation, row) for row in moving]
                )
            except ReproError:
                pass
            router.metrics.rebalance_aborts += 1
            raise TransientFault(
                f"rebalance of {relation!r} aborted: destination "
                f"{dst_shard.name!r} failed the copy ({error})"
            ) from error
        if src_shard.validate((relation,), epoch):
            overlay.add_override(relation, lo, hi, src, dst)
            src_shard.apply_updates([Update.delete(relation, row) for row in moving])
            report.rows_moved = len(moving)
            report.completed = True
            break
        # A write raced the copy; the copied rows may span epochs.  Undo on
        # the destination (fragments are disjoint, so every copied row is
        # ours to remove) and retry against the new epoch.
        dst_shard.apply_updates([Update.delete(relation, row) for row in moving])
        report.rows_undone += len(moving)
        report.retries += 1
        router.metrics.snapshot_retries += 1

    if not report.completed:
        router.metrics.rebalance_aborts += 1
        raise TransientFault(
            f"rebalance of {relation!r} {lo!r}..{hi!r} abandoned after "
            f"{report.retries} retries: source epoch kept moving; retry later"
        )

    router.metrics.rebalances += 1
    router.metrics.rebalance_rows_moved += report.rows_moved
    # Layout changed: settle the router's serving clock and caches like a
    # routed batch would.  Result-cache entries keyed by per-shard snapshots
    # are already unservable (the copy/drop bumped shard clocks); the sweep
    # keeps memory honest and the counters visible.
    router.clock.bump((relation,))
    router._discard_compiled(router.plan_cache.invalidate((relation,)))
    router.result_cache.invalidate((relation,))
    return report
