"""Figure 5(c,g,k): impact of the number of joins (#-join ∈ [0, 5]).

More joins mean more fetching steps for the bounded plans (slower, more data)
while the conventional baseline degrades much faster — in the paper it fails
to finish with ≥2 joins.  The series reports evalQP time, evalDBMS time and
P(D_Q) per #-join value.
"""

from repro.bench.experiments import join_experiment


def test_fig5_join_sweep(benchmark, workload, bench_scale):
    table = benchmark.pedantic(
        join_experiment,
        kwargs={
            "workload": workload,
            "values": (0, 1, 2, 3, 4, 5),
            "seed": 17,
            "scale": bench_scale // 2,
            "queries_per_value": 3,
            "include_baseline": True,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(table.render())

    populated = [row for row in table.rows if row["queries"]]
    assert populated, "no covered queries generated in the #-join sweep"
    # bounded plans keep accessing a small fraction of the data at every join count
    for row in populated:
        assert row["P_DQ"] < 0.6
