"""Unit tests for the SQL tokenizer."""

import pytest

from repro.core.errors import ParseError
from repro.sqlparser.lexer import Token, TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text) if t.type is not TokenType.EOF]


class TestTokenize:
    def test_keywords_and_identifiers(self):
        tokens = kinds("SELECT cid FROM cafe")
        assert tokens == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.IDENTIFIER, "cid"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.IDENTIFIER, "cafe"),
        ]

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].type is TokenType.KEYWORD
        assert tokenize("SeLeCt")[0].type is TokenType.KEYWORD

    def test_string_literal(self):
        tokens = kinds("WHERE city = 'new york'")
        assert (TokenType.STRING, "new york") in tokens

    def test_string_literal_with_escaped_quote(self):
        tokens = kinds("name = 'o''hare'")
        assert (TokenType.STRING, "o'hare") in tokens

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated string"):
            tokenize("WHERE city = 'nyc")

    def test_quoted_identifier(self):
        tokens = kinds('SELECT "weird name" FROM t')
        assert (TokenType.IDENTIFIER, "weird name") in tokens

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(ParseError):
            tokenize('SELECT "name FROM t')

    def test_numbers_integer_and_float(self):
        tokens = kinds("year = 2015 AND score = 2.5")
        assert (TokenType.NUMBER, "2015") in tokens
        assert (TokenType.NUMBER, "2.5") in tokens

    def test_qualified_column_is_not_a_float(self):
        tokens = kinds("d.cid = 1")
        values = [v for _, v in tokens]
        assert values == ["d", ".", "cid", "=", "1"]

    def test_operators(self):
        tokens = kinds("a <= 1 AND b <> 2 AND c != 3 AND d >= 4")
        operators = [v for t, v in tokens if t is TokenType.OPERATOR]
        assert operators == ["<=", "<>", "!=", ">="]

    def test_comments_skipped(self):
        tokens = kinds("SELECT cid -- the id\nFROM cafe")
        assert (TokenType.IDENTIFIER, "cafe") in tokens
        assert all("the id" not in v for _, v in tokens)

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("SELECT @ FROM t")

    def test_eof_token_present(self):
        tokens = tokenize("SELECT x FROM t")
        assert tokens[-1].type is TokenType.EOF

    def test_token_matches_helper(self):
        token = Token(TokenType.KEYWORD, "Select", 0)
        assert token.matches(TokenType.KEYWORD, "select")
        assert not token.matches(TokenType.IDENTIFIER, "select")
        assert token.matches(TokenType.KEYWORD)
