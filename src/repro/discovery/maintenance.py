"""Incremental maintenance of access schemas and their indexes (Proposition 12).

In response to a batch of updates ``ΔD`` (tuple insertions and deletions),
both the constraints ``A`` and the indexes ``I_A`` can be maintained in
``O(N_A · |ΔD|)`` time, where ``N_A = Σ N`` over the constraints — i.e. the
cost depends on the access schema and the update size only, never on ``|D|``
or ``|I_A|``.

Two flavours are provided:

* :func:`apply_updates` — maintain the *indexes* (and the stored relations)
  for a fixed access schema; constraints whose bound would be violated by an
  insertion are reported.
* :func:`maintain_constraints` — additionally *adjust* the bounds of
  policy-style constraints that the updates outgrow (e.g. Facebook raising
  the friend limit), returning a new access schema.

Both report the relations a batch actually modified and settle the
database's version clock **once per batch** — so downstream caches pay one
version bump and one targeted invalidation sweep per batch instead of one
per row.  When the database is served by a
:class:`~repro.core.engine.BoundedEngine`, route batches through
:meth:`~repro.core.engine.BoundedEngine.apply_updates` so the engine can
also sweep its plan store and result cache granularly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal, Sequence

from ..core.access import AccessConstraint, AccessSchema
from ..core.errors import MaintenanceError
from ..storage.database import Database
from ..storage.index import IndexSet


@dataclass(frozen=True)
class Update:
    """One tuple insertion or deletion."""

    relation: str
    row: tuple
    kind: Literal["insert", "delete"] = "insert"

    @classmethod
    def insert(cls, relation: str, row: Sequence) -> "Update":
        return cls(relation, tuple(row), "insert")

    @classmethod
    def delete(cls, relation: str, row: Sequence) -> "Update":
        return cls(relation, tuple(row), "delete")


@dataclass
class MaintenanceReport:
    """Outcome of maintaining ``⟨A, I_A⟩`` under a batch of updates."""

    applied: int = 0
    skipped: int = 0
    #: constraints whose bound was exceeded by some insertion (before adjustment)
    violated: list[AccessConstraint] = field(default_factory=list)
    #: old -> new constraint for bounds that were raised by maintain_constraints
    adjusted: dict[AccessConstraint, AccessConstraint] = field(default_factory=dict)
    #: work performed, measured in index-entry touches (for the Prop. 12 benchmark)
    work_units: int = 0
    #: relations whose data the batch actually changed (skipped updates excluded)
    touched_relations: set[str] = field(default_factory=set)
    #: the updates that actually changed data, in application order — the
    #: write delta the cache-repair path derives patches from (skipped
    #: duplicates/missing rows excluded, like ``touched_relations``)
    applied_updates: list[Update] = field(default_factory=list)
    #: the database's global data version after the batch (None if nothing changed)
    version: int | None = None
    #: True when the batch aborted part-way (see :class:`MaintenanceError`)
    failed: bool = False
    #: the update being applied when the batch aborted
    failed_update: Update | None = None
    #: rendered cause of the abort (``None`` for a fully-applied batch)
    error: str | None = None


def apply_updates(
    database: Database,
    indexes: IndexSet,
    access_schema: AccessSchema,
    updates: Iterable[Update],
    *,
    bump_clock: bool = True,
) -> MaintenanceReport:
    """Apply ``ΔD`` to the database and incrementally maintain the indexes.

    Each update touches only the index entries of the constraints on its
    relation, so the total work is ``O(N_A · |ΔD|)`` — independent of ``|D|``.
    Insertions that would break a constraint's bound are still applied (the
    data now simply violates that constraint) but recorded in the report.

    The whole batch costs **one** version-clock bump stamping every touched
    relation (``bump_clock=False`` leaves settling the clock to the caller —
    used by :meth:`repro.core.engine.BoundedEngine.apply_updates`, which
    combines the bump with one targeted cache sweep).

    **Partial failures.** If applying some update raises (bad row, storage
    fault, …), the batch aborts at that update: rows applied before it are
    kept (each row is stored and indexed atomically, so storage and ``I_A``
    stay consistent), and a :class:`~repro.core.errors.MaintenanceError` is
    raised carrying the partial report.  The version clock is still settled
    over the *partially*-touched relation set before the error propagates
    (when ``bump_clock`` is set), so caches keyed by relation versions can
    never keep serving pre-batch rows for relations the aborted batch did
    mutate.
    """
    report = MaintenanceReport()
    try:
        _apply_update_loop(database, indexes, access_schema, updates, report)
    except Exception as error:
        report.failed = True
        report.error = f"{type(error).__name__}: {error}"
        if bump_clock and report.touched_relations:
            report.version = database.clock.bump(sorted(report.touched_relations))
        raise MaintenanceError(
            f"update batch aborted after {report.applied} applied updates "
            f"({report.error}); touched relations "
            f"{sorted(report.touched_relations)} need cache settlement",
            report=report,
        ) from error
    if bump_clock and report.touched_relations:
        report.version = database.clock.bump(sorted(report.touched_relations))
    return report


def _apply_update_loop(
    database: Database,
    indexes: IndexSet,
    access_schema: AccessSchema,
    updates: Iterable[Update],
    report: MaintenanceReport,
) -> None:
    """The per-update body of :func:`apply_updates`, mutating ``report`` in place.

    Kept separate so the partial-failure path of :func:`apply_updates` always
    sees the exact progress made: ``report`` is updated *before* each step
    that can fail, and ``failed_update`` is stamped on the way out.
    """
    update: Update | None = None
    try:
        for update in updates:
            _apply_one_update(database, indexes, access_schema, update, report)
    except Exception:
        report.failed_update = update
        raise


def _apply_one_update(
    database: Database,
    indexes: IndexSet,
    access_schema: AccessSchema,
    update: Update,
    report: MaintenanceReport,
) -> None:
    relation = database.relation(update.relation)
    constraints = access_schema.for_relation(update.relation)
    # Charge the per-update maintenance budget up front: even a duplicate
    # insert / missing delete costs the index probes needed to find out,
    # and Proposition 12's O(N_A·|ΔD|) bound is about attempted updates.
    report.work_units += sum(c.bound for c in constraints)
    if update.kind == "insert":
        if not relation.insert(update.row):
            report.skipped += 1
            return
        indexes.apply_insert(update.relation, update.row)
        report.applied += 1
        report.touched_relations.add(update.relation)
        report.applied_updates.append(update)
        for constraint in constraints:
            index = indexes.get(constraint)
            if index is None:
                continue
            key = tuple(update.row[relation.schema.position(a)] for a in sorted(constraint.lhs))
            group = index.lookup(key)
            distinct_rhs = {
                tuple(v[index.columns.index(a)] for a in sorted(constraint.rhs))
                for v in group
            }
            if len(distinct_rhs) > constraint.bound and constraint not in report.violated:
                report.violated.append(constraint)
    else:
        if not relation.delete(update.row):
            report.skipped += 1
            return
        indexes.apply_delete(update.relation, update.row, relation)
        report.applied += 1
        report.touched_relations.add(update.relation)
        report.applied_updates.append(update)


def maintain_constraints(
    database: Database,
    indexes: IndexSet,
    access_schema: AccessSchema,
    updates: Iterable[Update],
    *,
    headroom: float = 1.0,
) -> tuple[AccessSchema, MaintenanceReport]:
    """Apply updates and raise the bounds of constraints the data has outgrown.

    Returns the (possibly) adjusted access schema and the maintenance report.
    ``headroom`` multiplies the new observed bound, mirroring how policy-style
    constraints are renegotiated rather than dropped.
    """
    report = apply_updates(database, indexes, access_schema, updates)
    if not report.violated:
        return access_schema, report

    adjusted = AccessSchema(schema=access_schema.schema)
    for constraint in access_schema:
        if constraint in report.violated:
            relation = database.relation(constraint.relation)
            observed = relation.group_max_multiplicity(
                sorted(constraint.lhs), sorted(constraint.rhs)
            )
            new_bound = max(constraint.bound, int(round(observed * headroom)))
            replacement = AccessConstraint(
                constraint.relation,
                constraint.lhs,
                constraint.rhs,
                new_bound,
                constraint.name,
            )
            adjusted.add(replacement)
            report.adjusted[constraint] = replacement
        else:
            adjusted.add(constraint)
    return adjusted, report
