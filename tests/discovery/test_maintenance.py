"""Unit tests for incremental maintenance of ⟨A, I_A⟩ (Proposition 12)."""

import pytest

from repro.core.access import AccessConstraint, AccessSchema
from repro.discovery.maintenance import Update, apply_updates, maintain_constraints
from repro.storage.database import Database
from repro.storage.index import IndexSet
from repro.workloads import facebook


@pytest.fixture
def db(fb_schema):
    database = Database(fb_schema)
    database.insert_many("friend", [("p0", "f1"), ("p0", "f2")])
    database.insert_many("dine", [("f1", "c1", "may", 2015)])
    database.insert_many("cafe", [("c1", "nyc")])
    return database


@pytest.fixture
def indexes(db, fb_access):
    return IndexSet.build(db, fb_access)


class TestUpdate:
    def test_constructors(self):
        insert = Update.insert("friend", ("p0", "f9"))
        delete = Update.delete("friend", ("p0", "f9"))
        assert insert.kind == "insert"
        assert delete.kind == "delete"
        assert insert.row == ("p0", "f9")


class TestApplyUpdates:
    def test_insert_updates_database_and_indexes(self, db, indexes, fb_access):
        psi1 = next(c for c in fb_access if c.name == "psi1")
        report = apply_updates(
            db, indexes, fb_access, [Update.insert("friend", ("p0", "f3"))]
        )
        assert report.applied == 1
        assert ("p0", "f3") in db.relation("friend")
        assert ("f3", "p0") in indexes.index_for(psi1).lookup(("p0",))
        assert report.work_units > 0

    def test_duplicate_insert_skipped(self, db, indexes, fb_access):
        report = apply_updates(
            db, indexes, fb_access, [Update.insert("friend", ("p0", "f1"))]
        )
        assert report.applied == 0
        assert report.skipped == 1

    def test_delete_updates_indexes(self, db, indexes, fb_access):
        psi1 = next(c for c in fb_access if c.name == "psi1")
        report = apply_updates(
            db, indexes, fb_access, [Update.delete("friend", ("p0", "f1"))]
        )
        assert report.applied == 1
        assert ("f1", "p0") not in indexes.index_for(psi1).lookup(("p0",))

    def test_delete_missing_row_skipped(self, db, indexes, fb_access):
        report = apply_updates(
            db, indexes, fb_access, [Update.delete("friend", ("p9", "f9"))]
        )
        assert report.skipped == 1

    def test_violation_reported(self, fb_schema):
        tight = AccessSchema(
            [AccessConstraint.of("friend", "pid", "fid", 1, name="tight")],
            schema=fb_schema,
        )
        database = Database(fb_schema)
        database.insert("friend", ("p0", "f1"))
        indexes = IndexSet.build(database, tight)
        report = apply_updates(
            database, indexes, tight, [Update.insert("friend", ("p0", "f2"))]
        )
        assert len(report.violated) == 1

    def test_queries_stay_correct_after_updates(self, fb_database, fb_access):
        from repro.core.planner import plan_query
        from repro.evaluator.algebra import evaluate
        from repro.evaluator.executor import execute_plan

        indexes = IndexSet.build(fb_database, fb_access)
        updates = [
            Update.insert("cafe", ("c_up", "nyc")),
            Update.insert("friend", ("p0", "p_up")),
            Update.insert("dine", ("p_up", "c_up", "may", 2015)),
            Update.delete("cafe", next(iter(fb_database.relation("cafe").rows))),
        ]
        apply_updates(fb_database, indexes, fb_access, updates)
        q1 = facebook.query_q1()
        plan = plan_query(q1, fb_access)
        assert execute_plan(plan, fb_database, indexes).rows == evaluate(q1, fb_database).rows


class TestMaintainConstraints:
    def test_no_violation_returns_same_schema(self, db, indexes, fb_access):
        schema, report = maintain_constraints(
            db, indexes, fb_access, [Update.insert("friend", ("p1", "f1"))]
        )
        assert schema is fb_access
        assert not report.adjusted

    def test_bound_raised_when_outgrown(self, fb_schema):
        tight = AccessSchema(
            [AccessConstraint.of("friend", "pid", "fid", 2, name="tight")],
            schema=fb_schema,
        )
        database = Database(fb_schema)
        database.insert_many("friend", [("p0", "f1"), ("p0", "f2")])
        indexes = IndexSet.build(database, tight)
        updates = [Update.insert("friend", ("p0", "f3"))]
        adjusted, report = maintain_constraints(database, indexes, tight, updates)
        new_constraint = next(iter(adjusted))
        assert new_constraint.bound >= 3
        assert report.adjusted
        assert database.satisfies_schema(adjusted)

    def test_work_independent_of_database_size(self, fb_access):
        """Proposition 12: maintenance work depends on |ΔD| and A only."""
        small = facebook.generate(scale=30, seed=2)
        large = facebook.generate(scale=150, seed=2)
        updates = [Update.insert("friend", (f"px{i}", f"fy{i}")) for i in range(20)]
        small_report = apply_updates(
            small, IndexSet.build(small, fb_access), fb_access, updates
        )
        large_report = apply_updates(
            large, IndexSet.build(large, fb_access), fb_access, updates
        )
        assert small_report.work_units == large_report.work_units
