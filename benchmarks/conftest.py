"""Shared fixtures for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper's
evaluation (Section 8).  The fixtures here prepare workload instances,
constraint indexes and covered query sets once per session so that the
benchmarks measure the operations of interest (CovChk, QPlan, minA, plan
execution, baseline evaluation, maintenance) rather than setup cost.

Scales are chosen so the whole suite completes in a few minutes on a laptop;
pass ``--paper-scale`` for larger instances closer to the shape of the
published figures (slower).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # allow running without an editable install
    sys.path.insert(0, str(SRC))

from repro.bench.experiments import select_covered_queries  # noqa: E402
from repro.storage.index import IndexSet  # noqa: E402
from repro.workloads import WORKLOADS, RandomQueryGenerator  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the benchmarks at larger (slower) scales closer to the paper's setup",
    )


@pytest.fixture(scope="session")
def bench_scale(request) -> int:
    """Base workload scale (number of generator entities)."""
    return 600 if request.config.getoption("--paper-scale") else 220


@pytest.fixture(scope="session", params=sorted(WORKLOADS), ids=sorted(WORKLOADS))
def workload(request):
    """Parametrize benchmarks over the three experiment workloads."""
    return WORKLOADS[request.param]


@pytest.fixture(scope="session")
def prepared(workload, bench_scale):
    """A generated instance, its indexes, and a handful of covered queries."""
    database = workload.database(scale=bench_scale, seed=7)
    indexes = IndexSet.build(database, workload.access_schema, check=False)
    queries = select_covered_queries(
        workload, count=5, seed=7, database=database
    )
    return {
        "workload": workload,
        "database": database,
        "indexes": indexes,
        "queries": queries,
    }


@pytest.fixture(scope="session")
def query_batch(workload):
    """100 random queries per workload, as in the paper's query generator."""
    generator = RandomQueryGenerator(workload, seed=11)
    return [query for _, query in generator.generate_batch(100)]
