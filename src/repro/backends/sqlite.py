"""Running bounded evaluation on top of SQLite (the Section 7 framework, Fig. 4).

The paper implements its framework on MySQL and PostgreSQL; neither is
available offline, so this backend plays the same role with SQLite (bundled
with Python):

* base relations are loaded as ordinary tables;
* the index relations ``T_XY = π_XY(D_R)`` of an access schema are created as
  tables with an index on ``X`` (component C1 of Fig. 4);
* a bounded plan is executed by running its ``Plan2SQL`` translation, which
  only touches the index tables (components C5–C6);
* the conventional baseline runs the original query's SQL over the base
  tables.

This keeps the comparison honest: both sides run on the same SQL engine.
"""

from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.access import AccessConstraint, AccessSchema
from ..core.errors import StorageError
from ..core.plan import BoundedPlan
from ..core.plan2sql import (
    index_table_ddl,
    index_table_name,
    plan_to_sql,
    query_to_sql,
    quote_identifier,
)
from ..core.query import Query
from ..storage.database import Database


@dataclass
class SQLRunResult:
    """Rows and wall-clock time of one SQL execution."""

    rows: frozenset[tuple]
    elapsed: float
    sql: str


class SQLiteBackend:
    """An in-memory SQLite database mirroring a :class:`~repro.storage.database.Database`."""

    def __init__(self, database: Database):
        self.database = database
        self.connection = sqlite3.connect(":memory:")
        self._index_constraints: dict[str, AccessConstraint] = {}
        self._load_relations()

    # -- setup -------------------------------------------------------------------
    def _load_relations(self) -> None:
        cursor = self.connection.cursor()
        for relation in self.database:
            columns = ", ".join(quote_identifier(a) for a in relation.schema.attributes)
            cursor.execute(f"CREATE TABLE {quote_identifier(relation.schema.name)} ({columns})")
            placeholders = ", ".join("?" for _ in relation.schema.attributes)
            cursor.executemany(
                f"INSERT INTO {quote_identifier(relation.schema.name)} VALUES ({placeholders})",
                relation.rows,
            )
        self.connection.commit()

    def create_index_tables(self, access_schema: AccessSchema) -> dict[str, AccessConstraint]:
        """Materialize the index relations ``I_A`` for every constraint (component C1)."""
        cursor = self.connection.cursor()
        created: dict[str, AccessConstraint] = {}
        for constraint in access_schema:
            table = index_table_name(constraint)
            if table in self._index_constraints:
                continue
            for statement in index_table_ddl(constraint):
                cursor.execute(statement)
            self._index_constraints[table] = constraint
            created[table] = constraint
        self.connection.commit()
        return created

    def index_size(self) -> int:
        """Total number of rows across all materialized index tables."""
        cursor = self.connection.cursor()
        total = 0
        for table in self._index_constraints:
            cursor.execute(f"SELECT COUNT(*) FROM {quote_identifier(table)}")
            total += cursor.fetchone()[0]
        return total

    # -- execution -------------------------------------------------------------------
    def run_sql(self, sql: str) -> SQLRunResult:
        cursor = self.connection.cursor()
        started = time.perf_counter()
        cursor.execute(sql)
        rows = frozenset(tuple(row) for row in cursor.fetchall())
        elapsed = time.perf_counter() - started
        return SQLRunResult(rows=rows, elapsed=elapsed, sql=sql)

    def run_bounded_plan(self, plan: BoundedPlan) -> SQLRunResult:
        """Execute a bounded plan via its ``Plan2SQL`` translation (components C5–C6).

        The index tables needed by the plan must have been created first; a
        missing table raises :class:`StorageError` with the offending name.
        """
        translation = plan_to_sql(plan)
        for table in translation.index_tables:
            if table not in self._index_constraints:
                raise StorageError(
                    f"index table {table!r} has not been created; call "
                    "create_index_tables() with the plan's access schema first"
                )
        return self.run_sql(translation.sql)

    def run_query(self, query: Query) -> SQLRunResult:
        """Execute the original RA query over the base tables (the DBMS baseline)."""
        return self.run_sql(query_to_sql(query))

    def fetch_index(
        self,
        constraint: AccessConstraint,
        keys: Iterable[Sequence],
        *,
        base_relation: str | None = None,
    ) -> frozenset[tuple]:
        """``fetch(X ∈ keys, R, Y)`` over the index table of ``constraint``.

        Returns the distinct index rows (aligned with ``sorted(lhs | rhs)``)
        matching any of the given ``X``-values — the per-shard half of a
        federated scatter/gather fetch (see :mod:`repro.sharding`).  A
        constraint with an empty LHS returns the whole index table.
        """
        table = index_table_name(constraint, base_relation)
        if table not in self._index_constraints:
            raise StorageError(
                f"index table {table!r} has not been created; call "
                "create_index_tables() with the plan's access schema first"
            )
        cursor = self.connection.cursor()
        columns = sorted(constraint.lhs | constraint.rhs)
        select_list = ", ".join(quote_identifier(c) for c in columns)
        rows: set[tuple] = set()
        lhs = sorted(constraint.lhs)
        if not lhs:
            cursor.execute(f"SELECT DISTINCT {select_list} FROM {quote_identifier(table)}")
            rows.update(tuple(r) for r in cursor.fetchall())
            return frozenset(rows)
        conditions = " AND ".join(f"{quote_identifier(c)} = ?" for c in lhs)
        sql = (
            f"SELECT DISTINCT {select_list} FROM {quote_identifier(table)} "
            f"WHERE {conditions}"
        )
        for key in keys:
            cursor.execute(sql, tuple(key))
            rows.update(tuple(r) for r in cursor.fetchall())
        return frozenset(rows)

    # -- maintenance ---------------------------------------------------------------------
    def apply_insert(self, relation: str, row: Sequence) -> None:
        """Insert a tuple into a base table and refresh affected index tables.

        Base tables mirror the set semantics of
        :class:`~repro.storage.relation.RelationInstance`: re-inserting a row
        that is already present is a no-op, exactly like the index-table path
        below — an unconditional ``INSERT`` would duplicate the row in SQLite
        while the mirrored :class:`~repro.storage.database.Database` keeps one
        copy, skewing conventional-baseline timings and any ``COUNT``.
        """
        schema = self.database.schema[relation]
        cursor = self.connection.cursor()
        values = tuple(row)
        base_conditions = " AND ".join(
            f"{quote_identifier(a)} = ?" for a in schema.attributes
        )
        cursor.execute(
            f"SELECT 1 FROM {quote_identifier(relation)} WHERE {base_conditions} LIMIT 1",
            values,
        )
        if cursor.fetchone() is not None:
            return
        placeholders = ", ".join("?" for _ in schema.attributes)
        cursor.execute(
            f"INSERT INTO {quote_identifier(relation)} VALUES ({placeholders})", values
        )
        for table, constraint in self._index_constraints.items():
            if constraint.relation != relation:
                continue
            columns = sorted(constraint.lhs | constraint.rhs)
            positions = schema.positions(columns)
            projected = tuple(values[p] for p in positions)
            column_list = ", ".join(quote_identifier(c) for c in columns)
            conditions = " AND ".join(f"{quote_identifier(c)} = ?" for c in columns)
            cursor.execute(
                f"SELECT 1 FROM {quote_identifier(table)} WHERE {conditions}", projected
            )
            if cursor.fetchone() is None:
                placeholders = ", ".join("?" for _ in columns)
                cursor.execute(
                    f"INSERT INTO {quote_identifier(table)} ({column_list}) VALUES ({placeholders})",
                    projected,
                )
        self.connection.commit()

    def apply_delete(self, relation: str, row: Sequence) -> None:
        """Delete a tuple from a base table and refresh affected index tables.

        The counterpart :meth:`apply_insert` always had — without it, a
        delete routed through the engine left the SQLite mirror silently
        drifted from the :class:`~repro.storage.database.Database`.  An index
        row ``π_XY(t)`` is dropped only when no *remaining* base row still
        projects to it (several base rows can share one index row when the
        constraint's attributes are a proper subset of the relation's).
        """
        schema = self.database.schema[relation]
        cursor = self.connection.cursor()
        values = tuple(row)
        base_conditions = " AND ".join(
            f"{quote_identifier(a)} = ?" for a in schema.attributes
        )
        cursor.execute(
            f"DELETE FROM {quote_identifier(relation)} WHERE {base_conditions}", values
        )
        for table, constraint in self._index_constraints.items():
            if constraint.relation != relation:
                continue
            columns = sorted(constraint.lhs | constraint.rhs)
            positions = schema.positions(columns)
            projected = tuple(values[p] for p in positions)
            conditions = " AND ".join(f"{quote_identifier(c)} = ?" for c in columns)
            cursor.execute(
                f"SELECT 1 FROM {quote_identifier(relation)} WHERE {conditions} LIMIT 1",
                projected,
            )
            if cursor.fetchone() is None:
                cursor.execute(
                    f"DELETE FROM {quote_identifier(table)} WHERE {conditions}", projected
                )
        self.connection.commit()

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
