"""The hardened asyncio serving tier over the versioned bounded-evaluation core.

:class:`BoundedServer` is the "millions of users" front end of ROADMAP item 1:
an asyncio session layer where **concurrent readers validate lock-free
against the database's** :class:`~repro.storage.counters.VersionClock`
**snapshot** while **writes serialize** through the engine's batched
:meth:`~repro.core.engine.BoundedEngine.apply_updates` path — so no reader
ever observes a half-applied batch, and a write batch costs one version bump
plus one cache settlement no matter its size.  With the engine's delta
repair (the default) that settlement *patches* dependent cached results in
place instead of sweeping them; the per-write repair/invalidate outcomes are
surfaced on :class:`~repro.serving.metrics.ServingMetrics`
(``cache_repairs`` / ``cache_rows_patched`` / ``cache_repair_fallbacks`` /
``cache_invalidated``) so soak reports can attribute cache churn to writes.

What makes the tier *hardened* rather than hopeful is that the paper's
central guarantee — a covered query touches at most ``access_bound()``
tuples regardless of ``|D|`` — turns per-request cost into a number known
**before execution**.  Admission control can therefore be sound instead of
heuristic:

* **Bounded queue + load shedding** — requests beyond ``max_queue_depth``,
  or whose plan's ``access_bound()`` exceeds ``max_access_bound``, are shed
  immediately with :class:`~repro.core.errors.OverloadedError` instead of
  queueing unboundedly.
* **Per-request deadlines** — a request that expires in the queue or between
  retry attempts fails with
  :class:`~repro.core.errors.DeadlineExceededError`; queue time is never
  hidden inside service time.
* **Retries with decorrelated jitter + a global retry budget** — only
  :class:`~repro.core.errors.TransientFault` is retried, never beyond the
  deadline, and never beyond the budget's retry-to-request ratio.
* **A circuit breaker around the unbounded conventional fallback** —
  installed on the engine itself (``fallback_breaker``), so an
  uncovered-query stampede fails fast with
  :class:`~repro.core.errors.CircuitOpenError` instead of starving the
  covered hot path.

Every read walks the **graceful-degradation ladder** and records each rung
on its response: result-cache hit → bounded plan execution →
(breaker-permitting) conventional fallback → typed rejection.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from ..core.engine import BoundedEngine, EngineResult
from ..core.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    MaintenanceError,
    NotCoveredError,
    OverloadedError,
    ReproError,
    TransientFault,
)
from ..core.query import Query
from .metrics import ServingMetrics
from .policy import Backoff, CircuitBreaker, Deadline, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..discovery.maintenance import MaintenanceReport, Update


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of one :class:`BoundedServer`.

    ``max_access_bound`` is the per-request cost budget in tuples: covered
    queries whose plan's ``access_bound()`` exceeds it are shed at admission
    (``None`` disables the check).  ``default_timeout`` applies when a
    request carries no timeout of its own (``None``: no deadline).
    """

    max_queue_depth: int = 64
    workers: int = 4
    default_timeout: float | None = 2.0
    max_access_bound: int | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 3
    breaker_cooldown: float = 0.25
    seed: int = 0


@dataclass(frozen=True)
class ReadRequest:
    """Answer ``query``; ``timeout`` (seconds) overrides the server default."""

    query: Query
    timeout: float | None = None


@dataclass(frozen=True)
class WriteRequest:
    """Apply an update batch through the engine's maintenance path."""

    updates: tuple["Update", ...]
    timeout: float | None = None


@dataclass
class ServeResponse:
    """One request's outcome, including the degradation ladder it walked.

    ``ladder`` lists every rung attempted in order (e.g. ``("bounded:fault",
    "bounded")`` for a read that hit a transient fault and succeeded on
    retry); ``strategy`` is the terminal rung.  ``elapsed`` is engine
    *service* time summed over attempts — queue wait, retry sleeps, and any
    ``post_check`` audit are excluded, so latency quantiles measure the
    serving cost itself.  ``snapshot_valid`` reports
    the lock-free read validation: the dependency snapshot taken before
    execution still stood afterwards, i.e. the rows cannot be a torn read.
    For writes, ``report`` is the (possibly partial) maintenance report and
    ``ok`` is ``False`` when the batch aborted part-way — the applied prefix
    is kept and all caches were settled over it.
    """

    ok: bool
    strategy: str
    ladder: tuple[str, ...]
    rows: frozenset[tuple] = frozenset()
    columns: tuple[str, ...] = ()
    attempts: int = 1
    elapsed: float = 0.0
    snapshot_valid: bool = True
    error: ReproError | None = None
    report: "MaintenanceReport | None" = None


class BoundedServer:
    """Concurrent request serving over one :class:`BoundedEngine`.

    ``engine`` may be any object with the engine's serving surface —
    ``prepare`` / ``execute`` / ``apply_updates`` / ``cache_stats`` /
    ``clock`` / ``fallback_breaker``; in particular a
    :class:`~repro.sharding.router.ShardRouter` drops in unchanged, putting
    the whole admission/retry/degradation machinery in front of a federated
    shard topology.

    All engine calls run on the event-loop thread (the engine is not
    thread-safe); concurrency comes from interleaving requests at await
    points, which is exactly where the robustness machinery lives: queueing,
    retry sleeps, and deadline checks.  ``post_check`` (if given) is called
    synchronously as ``post_check(query, result)`` immediately after every
    successful read — with no awaits in between, so the database state it
    sees is precisely the state the rows were computed from; the
    fault-injection soak uses it to cross-check served rows against the
    uncached reference evaluator.
    """

    def __init__(
        self,
        engine: BoundedEngine,
        config: ServerConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        post_check: Callable[[Query, EngineResult], None] | None = None,
    ):
        self.engine = engine
        self.config = config if config is not None else ServerConfig()
        self.clock = clock
        self.post_check = post_check
        self.metrics = ServingMetrics()
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown=self.config.breaker_cooldown,
            clock=clock,
        )
        # Mount the breaker on the engine: the gate lives where the unbounded
        # work happens, so even direct engine callers are protected.
        engine.fallback_breaker = self.breaker
        self._budget = self.config.retry.budget()
        self._rng = random.Random(self.config.seed)
        self._queue: asyncio.Queue | None = None
        self._write_lock: asyncio.Lock | None = None
        self._workers: list[asyncio.Task] = []

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        if self._workers:
            return
        self._queue = asyncio.Queue()
        self._write_lock = asyncio.Lock()
        self._workers = [
            asyncio.create_task(self._worker(), name=f"bounded-serve-{i}")
            for i in range(max(1, self.config.workers))
        ]

    async def stop(self) -> None:
        if not self._workers:
            return
        assert self._queue is not None
        for _ in self._workers:
            self._queue.put_nowait(None)
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []

    async def __aenter__(self) -> "BoundedServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- admission -------------------------------------------------------------
    async def submit(self, request: ReadRequest | WriteRequest) -> ServeResponse:
        """Admit, queue, and serve one request.

        Raises :class:`OverloadedError` (queue full / cost budget),
        :class:`DeadlineExceededError`, :class:`CircuitOpenError`, or the
        terminal :class:`TransientFault` once retries are exhausted.
        """
        if self._queue is None:
            raise ReproError("server is not started; use `async with BoundedServer(...)`")
        self.metrics.submitted += 1
        if self._queue.qsize() >= self.config.max_queue_depth:
            self.metrics.shed("queue_full")
            raise OverloadedError(
                f"request queue is full ({self.config.max_queue_depth} deep); "
                "retry with backoff"
            )
        if isinstance(request, ReadRequest):
            self._admit_cost(request.query)
        timeout = (
            request.timeout if request.timeout is not None else self.config.default_timeout
        )
        deadline = Deadline.after(timeout, self.clock) if timeout is not None else None
        self.metrics.admitted += 1
        self._budget.record_attempt()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((request, deadline, future))
        self.metrics.enqueued()
        return await future

    def _admit_cost(self, query: Query) -> None:
        """Shed covered queries whose static cost bound exceeds the budget.

        This is the paper's guarantee put to operational use: for a covered
        query the plan's ``access_bound()`` caps data access *regardless of
        database size*, so the check is exact, not an estimate.  Uncovered
        queries have no bound; they pass here and face the fallback breaker
        instead.
        """
        budget = self.config.max_access_bound
        if budget is None:
            return
        prepared, _ = self.engine.prepare(query)
        if prepared.covered and prepared.plan is not None:
            bound = prepared.plan.access_bound()
            if bound > budget:
                self.metrics.shed("cost")
                raise OverloadedError(
                    f"query's access bound ({bound} tuples) exceeds the "
                    f"per-request budget ({budget}); narrow the query or "
                    "raise the budget"
                )

    # -- the serve loop ----------------------------------------------------------
    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            request, deadline, future = item
            self.metrics.dequeued()
            try:
                if future.done():  # caller vanished (cancelled) while queued
                    continue
                try:
                    response = await self._handle(request, deadline)
                except ReproError as error:
                    self.metrics.failed += 1
                    if not future.done():  # caller may have been cancelled mid-serve
                        future.set_exception(error)
                else:
                    self.metrics.completed += 1
                    if not future.done():
                        future.set_result(response)
            finally:
                self._queue.task_done()

    async def _handle(
        self, request: ReadRequest | WriteRequest, deadline: Deadline | None
    ) -> ServeResponse:
        if deadline is not None and deadline.expired:
            self.metrics.shed("deadline")
            raise DeadlineExceededError("deadline expired while queued")
        if isinstance(request, WriteRequest):
            return await self._serve_write(request, deadline)
        return await self._serve_read(request, deadline)

    # -- reads: the degradation ladder -------------------------------------------
    async def _serve_read(
        self, request: ReadRequest, deadline: Deadline | None
    ) -> ServeResponse:
        ladder: list[str] = []
        backoff = self.config.retry.backoff(self._rng)
        attempts = 0
        service = 0.0  # engine time across attempts; excludes sleeps + audits

        # Rungs 1+2: result cache, then bounded plan (engine folds the two;
        # the response distinguishes them via ``result_cached``).
        covered = True
        result: EngineResult | None = None
        while True:
            attempts += 1
            try:
                result, snapshot_valid, spent = self._execute_checked(
                    request.query, fallback=False
                )
                service += spent
            except NotCoveredError:
                covered = False
                ladder.append("uncovered")
                break
            except TransientFault as fault:
                ladder.append("bounded:fault")
                if not await self._retry_permitted(attempts, backoff, deadline):
                    self.metrics.finished("bounded_failed", service)
                    raise fault
                continue
            ladder.append("result_cache" if result.result_cached else "bounded")
            break

        # Rung 3: conventional fallback, gated by the engine-mounted breaker.
        if not covered:
            while True:
                attempts += 1
                if deadline is not None and deadline.expired:
                    self.metrics.shed("deadline")
                    raise DeadlineExceededError("deadline expired before fallback")
                try:
                    result, snapshot_valid, spent = self._execute_checked(
                        request.query, fallback=True
                    )
                    service += spent
                except CircuitOpenError:
                    # Rung 4: typed rejection — the ladder's floor.
                    ladder.append("rejected:breaker_open")
                    self.metrics.shed("breaker")
                    self.metrics.finished("rejected", service)
                    raise
                except TransientFault as fault:
                    ladder.append("fallback:fault")
                    if not await self._retry_permitted(attempts, backoff, deadline):
                        self.metrics.finished("fallback_failed", service)
                        raise fault
                    continue
                ladder.append("conventional")
                break

        assert result is not None
        strategy = ladder[-1]
        self.metrics.finished(strategy, service)
        return ServeResponse(
            ok=True,
            strategy=strategy,
            ladder=tuple(ladder),
            rows=result.rows,
            columns=result.columns,
            attempts=attempts,
            elapsed=service,
            snapshot_valid=snapshot_valid,
        )

    def _execute_checked(
        self, query: Query, *, fallback: bool
    ) -> tuple[EngineResult, bool, float]:
        """One engine execution, with lock-free snapshot validation around it.

        The dependency snapshot is captured immediately before execution and
        re-validated immediately after; in between there is no await, so on
        this single-threaded tier validation must hold — it is the invariant
        that turns "no reader observes a half-applied batch" from an
        architectural claim into a per-request check.  ``post_check`` (the
        soak's reference cross-check) runs in the same no-await window, but
        *after* the service-time measurement — the audit must not pollute the
        latency quantiles it exists to validate.
        """
        deps: Sequence[str] = ()
        if fallback is False:
            prepared, _ = self.engine.prepare(query)
            if prepared.covered:
                deps = prepared.dependencies
        clock = self.engine.clock
        started = self.clock()
        snapshot = clock.snapshot(deps)
        result = self.engine.execute(query, fallback=fallback)
        snapshot_valid = clock.validate(deps, snapshot)
        spent = self.clock() - started
        if self.post_check is not None:
            self.post_check(query, result)
        return result, snapshot_valid, spent

    async def _retry_permitted(
        self, attempts: int, backoff: Backoff, deadline: Deadline | None
    ) -> bool:
        """Whether a transient fault may be retried; sleeps the backoff if so."""
        if attempts >= self.config.retry.max_attempts:
            return False
        if not self._budget.try_spend():
            return False
        delay = backoff.next_delay()
        if deadline is not None and deadline.remaining() <= delay:
            return False
        self.metrics.retries += 1
        await asyncio.sleep(delay)
        return True

    # -- writes: serialized through the batched maintenance path -------------------
    async def _serve_write(
        self, request: WriteRequest, deadline: Deadline | None
    ) -> ServeResponse:
        assert self._write_lock is not None
        async with self._write_lock:
            started = self.clock()
            if deadline is not None and deadline.expired:
                self.metrics.shed("deadline")
                raise DeadlineExceededError("deadline expired waiting for the write lock")
            cache_before = self.engine.cache_stats()["result_cache"]
            try:
                report = self.engine.apply_updates(request.updates)
            except MaintenanceError as error:
                # The applied prefix is kept and the engine has already settled
                # the clock + caches over it (conservatively — failed batches
                # sweep, never repair), so readers can never see pre-batch
                # cached rows: surface the partial outcome.
                self.metrics.record_cache_maintenance(
                    cache_before, self.engine.cache_stats()["result_cache"]
                )
                self.metrics.write_failures += 1
                self.metrics.finished("write_failed", self.clock() - started)
                return ServeResponse(
                    ok=False,
                    strategy="write_failed",
                    ladder=("write:partial_failure",),
                    elapsed=self.clock() - started,
                    error=error,
                    report=error.report,
                )
            self.metrics.record_cache_maintenance(
                cache_before, self.engine.cache_stats()["result_cache"]
            )
            self.metrics.writes_applied += 1
            elapsed = self.clock() - started
            self.metrics.finished("write", elapsed)
            return ServeResponse(
                ok=True,
                strategy="write",
                ladder=("write",),
                elapsed=elapsed,
                report=report,
            )

    # -- reporting ---------------------------------------------------------------
    def stats(self) -> dict:
        """Serving metrics + breaker + engine cache stats, JSON-ready."""
        return {
            "serving": self.metrics.snapshot(),
            "breaker": self.breaker.stats(),
            "caches": self.engine.cache_stats(),
        }
