"""Airline analytics on the AIRCA workload, written in SQL.

Shows the intended "drop-in" usage of the framework (Section 7): analysts
write plain SQL; the engine parses it, checks coverage against the discovered
access constraints, and answers covered queries by touching a bounded number
of tuples — while uncovered queries transparently fall back to conventional
evaluation.

Run with:  python examples/airline_analytics.py
"""

from repro.core.engine import BoundedEngine
from repro.sqlparser import parse_sql
from repro.workloads import airca


QUERIES = {
    # Covered: keyed on origin airport + date, both constrained.
    "delayed flights out of AP003 on a given day": """
        SELECT f.flight_id, f.dest, f.dep_delay
        FROM flights f
        WHERE f.origin = 'AP003' AND f.flight_date = '2013-01-05'
    """,
    # Covered: airline lookup joined with its fleet (bounded fan-out).
    "fleet of one carrier": """
        SELECT c.carrier_name, p.tail_num, p.model
        FROM carriers c JOIN planes p ON c.airline_id = p.airline_id
        WHERE c.airline_id = 'AL01'
    """,
    # Covered: segments flown by a carrier in a year, with airport city.
    "segments of a carrier in 2014": """
        SELECT s.segment_id, a.city, s.passengers
        FROM segments s JOIN airports a ON s.origin = a.airport_id
        WHERE s.airline_id = 'AL02' AND s.year = 2014
    """,
    # NOT covered: no constraint bounds "all flights into a destination".
    "all flights into AP001 (unbounded)": """
        SELECT f.flight_id FROM flights f WHERE f.dest = 'AP001'
    """,
}


def main() -> None:
    schema = airca.schema()
    access = airca.access_schema()
    print("generating a synthetic AIRCA instance ...")
    database = airca.generate(scale=400, seed=7)
    engine = BoundedEngine(database, access)
    footprint = engine.index_footprint()
    print(
        f"|D| = {footprint['database_tuples']} tuples, "
        f"{footprint['constraints']} access constraints, "
        f"index footprint = {footprint['index_tuples']} tuples "
        f"(built in {footprint['build_seconds']:.2f}s)\n"
    )

    for title, sql in QUERIES.items():
        query = parse_sql(sql, schema)
        result = engine.execute(query)
        ratio = result.access_ratio(database.size)
        print(f"== {title}")
        print(f"   strategy: {result.strategy:12s}  rows: {len(result.rows):4d}  "
              f"accessed: {result.counter.total:6d} tuples  P(D_Q) = {ratio:.6f}")
        if result.plan is not None:
            print(f"   plan: {result.plan.length} steps, "
                  f"static access bound {result.plan.access_bound()}")
        if result.minimization is not None:
            print(f"   minA kept {len(result.minimization.selected)} of "
                  f"{len(access)} constraints (Σ N = {result.minimization.cost})")
        print()


if __name__ == "__main__":
    main()
