"""Tests shared by the three experiment workloads (AIRCA, TFACC, MCBM)."""

import pytest

from repro.core.coverage import check_coverage
from repro.workloads import WORKLOADS, airca, mcbm, tfacc


@pytest.fixture(params=sorted(WORKLOADS), ids=sorted(WORKLOADS))
def workload(request):
    return WORKLOADS[request.param]


class TestWorkloadSpecs:
    def test_registry_contents(self):
        assert set(WORKLOADS) == {"AIRCA", "TFACC", "MCBM"}

    def test_schema_and_constraints_consistent(self, workload):
        """Every constraint references a relation/attributes of the schema."""
        for constraint in workload.access_schema:
            constraint.validate(workload.schema)

    def test_join_edges_reference_schema(self, workload):
        for (left_rel, left_attr), (right_rel, right_attr) in workload.join_edges:
            assert left_attr in workload.schema[left_rel]
            assert right_attr in workload.schema[right_rel]

    def test_generated_data_satisfies_constraints(self, workload):
        database = workload.database(scale=60, seed=3)
        violations = database.violations(workload.access_schema)
        assert violations == [], f"violated: {[str(v) for v in violations]}"

    def test_generation_scales(self, workload):
        small = workload.database(scale=40, seed=0)
        large = workload.database(scale=160, seed=0)
        assert large.size > small.size
        assert small.size > 0

    def test_generation_deterministic(self, workload):
        a = workload.database(scale=50, seed=9)
        b = workload.database(scale=50, seed=9)
        assert a.size == b.size
        for name in a.relation_names():
            assert set(a.relation(name).rows) == set(b.relation(name).rows)

    def test_constraints_fraction(self, workload):
        half = workload.constraints_fraction(0.5)
        assert 0 < len(half) <= len(workload.access_schema)


class TestHeadlineConstraints:
    def test_airca_origin_airline_constraint(self):
        access = airca.access_schema()
        headline = next(c for c in access if c.name == "origin-airlines")
        assert headline.relation == "flights"
        assert headline.bound == 28

    def test_tfacc_force_daily_constraint(self):
        access = tfacc.access_schema()
        headline = next(c for c in access if c.name == "force-daily")
        assert headline.bound == 304
        assert headline.lhs == frozenset({"acc_date", "police_force"})

    def test_mcbm_caller_daily_constraint(self):
        access = mcbm.access_schema()
        headline = next(c for c in access if c.name == "caller-daily")
        assert headline.relation == "calls"

    def test_every_relation_has_a_key_constraint(self, workload):
        keyed = {c.relation for c in workload.access_schema if c.bound == 1 and c.lhs}
        # weather/usage style relations may use a non-key FD; require most relations keyed
        assert len(keyed) >= len(workload.schema) - 1


class TestCoverageOnWorkloads:
    def test_constant_key_lookups_are_covered(self, workload):
        """A point lookup on a key attribute is covered under each workload's schema."""
        from repro.core.query import Relation, eq

        # pick a key-like constraint (bound 1 with non-empty lhs of size 1)
        constraint = next(
            c for c in workload.access_schema if c.bound == 1 and len(c.lhs) == 1
        )
        relation = Relation.from_schema(workload.schema, constraint.relation)
        key_attr = next(iter(constraint.lhs))
        target_attr = next(iter(constraint.rhs - constraint.lhs), key_attr)
        query = relation.select(eq(relation[key_attr], "value")).project(
            [relation[target_attr]]
        )
        assert check_coverage(query, workload.access_schema).is_covered
