"""Peephole optimization of bounded plans.

``QPlan`` emits deliberately naive canonical plans: every join is a Cartesian
product followed by a selection, unit fetching plans are materialized even
when nothing consumes them, and the same fetch/project combination can appear
several times.  :func:`optimize_plan` rewrites such a plan into a cheaper but
semantically identical one:

* **hash-join fusion** — ``σ(T × T')`` whose condition equates columns across
  the two sides becomes a :class:`~repro.core.plan.HashJoinOp`, turning the
  ``O(|T|·|T'|)`` product into a hash lookup;
* **selection fusion** — stacked selections collapse into one predicate list;
* **projection pushdown** — stacked projections compose into a single
  projection, projections over renames are rewritten to project directly from
  the pre-rename step, and identity projections/renames disappear;
* **common-subplan deduplication** — structurally identical steps are
  hash-consed so shared work executes once;
* **dead-step elimination** — steps unreachable from the output are dropped.

Every rewrite is purely structural; the optimized plan stays a valid
:class:`~repro.core.plan.BoundedPlan` (``validate()`` is re-run on the
result), keeps the same access schema and occurrence mapping, and computes
row-for-row the same output as the input plan.

The optimizer also owns the **executor-mode choice**
(:func:`choose_executor_mode`): given a plan's static access bounds — the
same dataset-independent arithmetic that certifies boundedness — it decides
whether the plan should run on the row kernels (tiny/point plans, where
per-batch setup would dominate) or on the vectorized columnar kernels of
:mod:`repro.evaluator.columnar` (wide joins and large bounded fetches,
where tuple-at-a-time interpretation dominates).
"""

from __future__ import annotations

from dataclasses import replace

from .errors import PlanError
from .plan import (
    BoundedPlan,
    ColumnPredicate,
    ColumnRef,
    ConstOp,
    DifferenceOp,
    FetchOp,
    HashJoinOp,
    IntersectOp,
    PlanOp,
    PlanStep,
    ProductOp,
    ProjectOp,
    RenameOp,
    SelectOp,
    UnionOp,
    UnitOp,
)


def _op_key(op: PlanOp):
    """A hashable structural key for hash-consing, or ``None`` if unavailable."""
    if isinstance(op, ConstOp):
        return ("const", op.value, op.column)
    if isinstance(op, UnitOp):
        return ("unit",)
    if isinstance(op, FetchOp):
        return ("fetch", op.constraint, op.key_columns, op.inputs)
    if isinstance(op, ProjectOp):
        return ("proj", op.columns, op.output_names, op.inputs)
    if isinstance(op, SelectOp):
        return ("sel", op.predicates, op.inputs)
    if isinstance(op, RenameOp):
        return ("ren", tuple(sorted(op.mapping.items())), op.inputs)
    if isinstance(op, HashJoinOp):
        return ("hjoin", op.pairs, op.residual, op.inputs)
    if isinstance(op, ProductOp):
        return ("prod", op.inputs)
    if isinstance(op, UnionOp):
        return ("union", op.inputs)
    if isinstance(op, DifferenceOp):
        return ("diff", op.inputs)
    if isinstance(op, IntersectOp):
        return ("isect", op.inputs)
    return None  # pragma: no cover - future operators


class _PeepholeRewriter:
    """Forward emission pass with hash-consing, followed by dead-step sweep."""

    def __init__(self, plan: BoundedPlan):
        self.plan = plan
        self.ops: list[PlanOp] = []
        self.columns: list[tuple[str, ...]] = []
        self.comments: list[str] = []
        self._cse: dict = {}

    # -- emission -------------------------------------------------------------
    def _emit(self, op: PlanOp, columns: tuple[str, ...], comment: str) -> int:
        key = _op_key(op)
        if key is not None:
            try:
                cached = self._cse.get(key)
            except TypeError:  # unhashable constant somewhere in the op
                key = None
            else:
                if cached is not None:
                    return cached
        step_id = len(self.ops)
        self.ops.append(op)
        self.columns.append(tuple(columns))
        self.comments.append(comment)
        if key is not None:
            self._cse[key] = step_id
        return step_id

    def _emit_select(
        self,
        predicates: tuple[ColumnPredicate, ...],
        source: int,
        columns: tuple[str, ...],
        comment: str,
    ) -> int:
        if not predicates:
            return source
        inner = self.ops[source]
        if isinstance(inner, SelectOp):
            return self._emit_select(
                inner.predicates + predicates, inner.inputs[0], columns, comment
            )
        if isinstance(inner, ProductOp):
            fused = self._fuse_product(inner, predicates, columns, comment)
            if fused is not None:
                return fused
        if isinstance(inner, HashJoinOp):
            merged = self._merge_into_join(inner, predicates, columns, comment)
            if merged is not None:
                return merged
        return self._emit(SelectOp(predicates=predicates, inputs=(source,)), columns, comment)

    def _split_join_condition(
        self,
        predicates: tuple[ColumnPredicate, ...],
        left_columns: tuple[str, ...],
        right_columns: tuple[str, ...],
    ) -> tuple[list[tuple[str, str]], list[ColumnPredicate]] | None:
        """Partition predicates into cross-side equality pairs and a residual.

        Returns ``None`` when a column name appears on both sides, in which
        case name-based classification would be ambiguous and fusion is
        skipped.
        """
        left_set, right_set = set(left_columns), set(right_columns)
        if left_set & right_set:
            return None
        pairs: list[tuple[str, str]] = []
        residual: list[ColumnPredicate] = []
        for predicate in predicates:
            if predicate.op == "=" and isinstance(predicate.right, ColumnRef):
                left, right = predicate.left, predicate.right.column
                if left in left_set and right in right_set:
                    pairs.append((left, right))
                    continue
                if left in right_set and right in left_set:
                    pairs.append((right, left))
                    continue
            residual.append(predicate)
        return pairs, residual

    def _fuse_product(
        self,
        product: ProductOp,
        predicates: tuple[ColumnPredicate, ...],
        columns: tuple[str, ...],
        comment: str,
    ) -> int | None:
        left, right = product.inputs
        split = self._split_join_condition(
            predicates, self.columns[left], self.columns[right]
        )
        if split is None:
            return None
        pairs, residual = split
        if not pairs:
            return None
        op = HashJoinOp(
            pairs=tuple(pairs), residual=tuple(residual), inputs=(left, right)
        )
        return self._emit(op, columns, comment or "fused hash join")

    def _merge_into_join(
        self,
        join: HashJoinOp,
        predicates: tuple[ColumnPredicate, ...],
        columns: tuple[str, ...],
        comment: str,
    ) -> int | None:
        left, right = join.inputs
        split = self._split_join_condition(
            predicates, self.columns[left], self.columns[right]
        )
        if split is None:  # pragma: no cover - joins are only fused when unambiguous
            return None
        pairs, residual = split
        op = HashJoinOp(
            pairs=join.pairs + tuple(pairs),
            residual=join.residual + tuple(residual),
            inputs=join.inputs,
        )
        return self._emit(op, columns, comment or "fused hash join")

    def _emit_project(
        self,
        columns: tuple[str, ...],
        output_names: tuple[str, ...],
        source: int,
        comment: str,
    ) -> int:
        inner = self.ops[source]
        source_columns = self.columns[source]
        if isinstance(inner, ProjectOp):
            inner_names = (
                inner.output_names if inner.output_names is not None else inner.columns
            )
            origin: dict[str, str] = {}
            for name, col in zip(inner_names, inner.columns):
                origin.setdefault(name, col)
            if all(c in origin for c in columns):
                return self._emit_project(
                    tuple(origin[c] for c in columns),
                    output_names,
                    inner.inputs[0],
                    comment,
                )
        if isinstance(inner, RenameOp):
            # Push the projection below the rename only when every post-rename
            # column name is unique: the executor resolves names positionally
            # (first match wins), so a rename target colliding with a
            # pass-through column (or duplicated source names) would make the
            # name-based inverse pick a different column than execution would.
            pre_rename = self.columns[inner.inputs[0]]
            post_rename = tuple(inner.mapping.get(c, c) for c in pre_rename)
            if len(set(post_rename)) == len(post_rename) and all(
                c in post_rename for c in columns
            ):
                inverse = {new: old for new, old in zip(post_rename, pre_rename)}
                return self._emit_project(
                    tuple(inverse[c] for c in columns),
                    output_names,
                    inner.inputs[0],
                    comment,
                )
        if (
            columns == source_columns
            and output_names == source_columns
            and len(set(source_columns)) == len(source_columns)
        ):
            return source  # identity projection (unambiguous names only)
        names = None if output_names == columns else output_names
        return self._emit(
            ProjectOp(columns=columns, inputs=(source,), output_names=names),
            output_names,
            comment,
        )

    # -- the pass -------------------------------------------------------------
    def rewrite(self) -> tuple[dict[int, int], int]:
        remap: dict[int, int] = {}
        for step in self.plan.steps:
            op = step.op
            inputs = tuple(remap[i] for i in op.inputs)
            if isinstance(op, SelectOp):
                remap[step.id] = self._emit_select(
                    op.predicates, inputs[0], step.columns, step.comment
                )
            elif isinstance(op, ProjectOp):
                names = op.output_names if op.output_names is not None else op.columns
                remap[step.id] = self._emit_project(
                    op.columns, tuple(names), inputs[0], step.comment
                )
            elif isinstance(op, RenameOp):
                effective = {o: n for o, n in op.mapping.items() if o != n}
                if not effective:
                    remap[step.id] = inputs[0]
                else:
                    remap[step.id] = self._emit(
                        RenameOp(mapping=dict(op.mapping), inputs=inputs),
                        step.columns,
                        step.comment,
                    )
            else:
                remap[step.id] = self._emit(
                    replace(op, inputs=inputs), step.columns, step.comment
                )
        return remap, remap[self.plan.output]

    def sweep(self, output: int) -> tuple[list[PlanStep], dict[int, int], int]:
        """Drop steps unreachable from ``output`` and renumber the survivors."""
        reachable: set[int] = set()
        stack = [output]
        while stack:
            node = stack.pop()
            if node in reachable:
                continue
            reachable.add(node)
            stack.extend(self.ops[node].inputs)
        final: dict[int, int] = {}
        steps: list[PlanStep] = []
        for old_id in sorted(reachable):
            new_id = len(steps)
            final[old_id] = new_id
            op = self.ops[old_id]
            steps.append(
                PlanStep(
                    id=new_id,
                    op=replace(op, inputs=tuple(final[i] for i in op.inputs)),
                    columns=self.columns[old_id],
                    comment=self.comments[old_id],
                )
            )
        return steps, final, final[output]


#: static access bound at which a plan's fetch volume alone justifies
#: columnar batches, regardless of shape
COLUMNAR_BOUND_THRESHOLD = 4000


def choose_executor_mode(plan: BoundedPlan) -> str:
    """Pick ``"row"`` or ``"columnar"`` kernels for ``plan``, cost-based.

    The decision uses only the plan's static access bound (the paper's
    dataset-independent ``access_bound()`` arithmetic), so it is stable
    across executions and cacheable with the compiled plan.

    Point and small analytic plans stay on row kernels: their per-step row
    counts are a handful, so transposing into columns costs more than it
    saves.  Plans whose access bound reaches
    :data:`COLUMNAR_BOUND_THRESHOLD` go columnar — a bound that large only
    arises when candidate domains multiply through fetch chains, which is
    exactly where batch kernels win: candidate cross products stay virtual,
    verification joins become per-factor membership masks, and selection /
    projection / dedup run as C-level column operations instead of per-row
    set maintenance.  Measured on the bundled workloads, the crossover sits
    between the largest point-plan bounds (~700, row wins ~3×) and the
    smallest analytic bounds (~35k, columnar wins >50×).
    """
    try:
        bound = plan.access_bound()
    except PlanError:  # pragma: no cover - defensive: unknown future operator
        return "row"
    if bound >= COLUMNAR_BOUND_THRESHOLD:
        return "columnar"
    return "row"


def optimize_plan(plan: BoundedPlan) -> BoundedPlan:
    """Return an optimized, semantically equivalent copy of ``plan``."""
    rewriter = _PeepholeRewriter(plan)
    remap, output = rewriter.rewrite()
    steps, final, new_output = rewriter.sweep(output)

    def _surviving(mapping) -> dict[str, int]:
        return {
            key: final[remap[step_id]]
            for key, step_id in mapping.items()
            if remap[step_id] in final
        }

    optimized = BoundedPlan(
        steps=steps,
        output=new_output,
        access_schema=plan.access_schema,
        fetch_plans=_surviving(plan.fetch_plans),
        surrogates=_surviving(plan.surrogates),
        occurrences=dict(plan.occurrences),
    )
    optimized.validate()
    return optimized
