"""Seeded fault-injection soak: a randomized mixed read/write serving run.

The acceptance harness for the hardened tier.  One soak run drives a
:class:`~repro.serving.server.BoundedServer` over a generated workload
(:mod:`repro.workloads.generator`) with the
:class:`~repro.serving.faults.FaultInjector` armed at every seam, and checks
the robustness contract end to end:

* **No stale or torn reads, ever** — every served read is cross-checked
  row-for-row against the uncached reference evaluator
  (:func:`repro.evaluator.algebra.evaluate`) in the server's no-await
  ``post_check`` window, *including* reads right after mid-batch write
  failures; the lock-free snapshot validation must hold on every response.
* **Overload sheds, it does not queue unboundedly** — a submission burst
  beyond the queue depth must produce
  :class:`~repro.core.errors.OverloadedError` sheds.
* **Deadlines are honored** — already-expired requests fail with
  :class:`~repro.core.errors.DeadlineExceededError`.
* **The breaker isolates the unbounded fallback** — with the conventional
  path failing (100% injected faults + latency), the breaker must open,
  uncovered queries must degrade to typed rejections, and the covered p99
  must stay below the injected fallback latency floor.
* **Mid-batch write failures surface and settle** — some update batches
  abort part-way (deterministic every-Nth write fault); the partial prefix
  must be kept, reported, and invisible to the cross-check above.

Everything is derived from one seed, so a failing run is replayable bit for
bit.  Run it locally via ``python -m repro.cli soak`` (see README).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field

from ..bench.experiments import select_covered_queries
from ..core.engine import BoundedEngine
from ..core.errors import (
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    TransientFault,
)
from ..core.query import Query
from ..discovery.maintenance import Update
from ..evaluator.algebra import evaluate
from ..workloads import WORKLOADS
from ..workloads.generator import RandomQueryGenerator
from .faults import FaultInjector, FaultSpec
from .server import BoundedServer, ReadRequest, ServerConfig, WriteRequest


@dataclass
class SoakConfig:
    """One soak run, fully determined by ``seed``.

    ``shards > 1`` serves through a federated
    :class:`~repro.sharding.router.ShardRouter` over a heterogeneous
    (memory/SQLite alternating) shard topology instead of a single engine.
    *Engine-seam* fault injection is disabled in sharded mode (those seams
    are engine-internal, and a partially-failed routed batch would leave
    the reference mirror ambiguous); sharded chaos instead targets the
    shard-fetch seam through the scenario flags below, which the replica
    layer must absorb without the mirror ever diverging:

    * ``kill_shard`` — mid-run, one replica of logical shard 0 goes dead
      (every fetch and write fails).  Reads must fail over to its sibling;
      the first routed write quarantines it; served rows stay
      row-identical to the reference throughout.
    * ``flaky_shard`` — mid-run, one replica turns intermittently faulty
      (fetch errors + latency, periodic torn writes) and its replica set
      serves stale epoch tokens with some probability.  Failover, torn-
      write quarantine, catch-up and re-admission all cycle under load.
    * ``rebalance`` — mid-run, a key range of one dependency relation
      migrates between logical shards under traffic, epoch-guarded.

    ``kill_shard``/``flaky_shard`` force ``replicas`` to at least 2 (a
    faulted *sole* replica would correctly fail its routed portion, but
    then the mirror could not tell which prefix applied — with a sibling,
    the set absorbs the fault and the routed batch stays atomic at the
    federation level).
    """

    workload: str = "AIRCA"
    scale: int = 120
    seed: int = 0
    shards: int = 1
    replicas: int = 1
    requests: int = 200
    write_ratio: float = 0.2
    covered_queries: int = 8
    uncovered_queries: int = 3
    batch_size: int = 6
    wave: int = 16
    faults: bool = True
    verify: bool = True
    queue_depth: int = 32
    workers: int = 4
    deadline: float = 10.0
    #: sharded chaos scenarios (need ``shards > 1``)
    kill_shard: bool = False
    flaky_shard: bool = False
    rebalance: bool = False
    #: injected fault intensities (only read when ``faults`` is set)
    executor_error_rate: float = 0.08
    executor_latency: float = 0.0005
    fallback_latency: float = 0.05
    storage_fail_every: int = 17
    #: flaky-shard intensities (only read when ``flaky_shard`` is set)
    flaky_error_rate: float = 0.3
    flaky_latency: float = 0.002
    flaky_torn_write_every: int = 5
    flaky_stale_snapshot_rate: float = 0.15


@dataclass
class SoakOutcome:
    """Tallies of one soak run (the JSON report adds stats snapshots)."""

    reads_served: int = 0
    reads_verified: int = 0
    mismatches: list[str] = field(default_factory=list)
    snapshot_violations: int = 0
    writes_ok: int = 0
    writes_partial: int = 0
    shed_overload: int = 0
    shed_deadline: int = 0
    rejected_breaker: int = 0
    failed_transient: int = 0
    other_errors: list[str] = field(default_factory=list)


def _uncovered_queries(workload, database, seed: int, count: int) -> list[Query]:
    """Generate queries the access schema does **not** cover (fallback traffic)."""
    from ..core.coverage import check_coverage

    generator = RandomQueryGenerator(workload, database=database, seed=seed)
    found: list[Query] = []
    attempts = 0
    while len(found) < count and attempts < 300:
        attempts += 1
        query = generator.generate(
            n_sel=generator.rng.randint(1, 3),
            n_join=generator.rng.randint(0, 2),
            n_unidiff=0,
        )
        if not check_coverage(query, workload.access_schema).is_covered:
            found.append(query)
    return found


class _WriteStream:
    """Deterministic mixed delete/re-insert batches over live relations.

    Deletes sample currently-present rows; re-inserts draw from the pool of
    rows this stream previously deleted — so batches are real data changes
    that never violate the access constraints (shrinking a relation cannot
    grow a group, and re-inserting a previously-present row cannot either).
    """

    def __init__(self, database, relations: list[str], rng: random.Random):
        self.database = database
        self.relations = [r for r in relations if len(database.relation(r)) > 0]
        self.rng = rng
        self._removed: dict[str, list[tuple]] = {name: [] for name in self.relations}

    def next_batch(self, size: int) -> tuple[Update, ...]:
        updates: list[Update] = []
        for _ in range(size):
            name = self.rng.choice(self.relations)
            removed = self._removed[name]
            instance = self.database.relation(name)
            if removed and (self.rng.random() < 0.5 or len(instance) == 0):
                updates.append(Update.insert(name, removed.pop()))
            elif len(instance) > 0:
                row = self.rng.choice(instance.rows)
                removed.append(row)
                updates.append(Update.delete(name, row))
        return tuple(updates)


def run_soak(config: SoakConfig) -> dict:
    """Run one seeded soak and return its JSON-ready report (see ``passed``)."""
    if config.workload not in WORKLOADS:
        raise ReproError(
            f"unknown workload {config.workload!r}; pick one of {sorted(WORKLOADS)}"
        )
    workload = WORKLOADS[config.workload]
    database = workload.database(scale=config.scale, seed=config.seed)
    sharded = config.shards > 1
    faults_active = config.faults and not sharded
    scenario_active = config.kill_shard or config.flaky_shard or config.rebalance
    if scenario_active and not sharded:
        raise ReproError(
            "chaos scenarios (kill_shard / flaky_shard / rebalance) need shards > 1"
        )
    effective_replicas = config.replicas
    if (config.kill_shard or config.flaky_shard) and effective_replicas < 2:
        effective_replicas = 2
    shard_injector = None
    scenario_log: dict = {}
    if sharded:
        from ..sharding import ShardFaultInjector, ShardFaultSpec, build_topology

        shard_injector = ShardFaultInjector(seed=config.seed)

        # ``database`` stays behind as the single-database *reference*: the
        # topology owns disjoint fragment copies, and the router's
        # write_observer mirrors every fully-applied routed batch back into
        # the reference — synchronously, inside the serving tier's no-await
        # write window — so ``post_check``'s reference evaluation and the
        # write stream's row sampling always see exactly the federation's
        # state.  Row-for-row identity of served reads against this
        # reference is the federated acceptance criterion.
        def _mirror(updates) -> None:
            for update in updates:
                instance = database.relation(update.relation)
                prepared = instance.prepare(update.row)
                if update.kind == "insert":
                    instance.insert(prepared)
                else:
                    instance.delete(prepared)

        engine = build_topology(
            database,
            workload.access_schema,
            shards=config.shards,
            replicas=effective_replicas,
            write_observer=_mirror,
        )
    else:
        engine = BoundedEngine(database, workload.access_schema, check_constraints=False)

    covered = select_covered_queries(
        workload, count=config.covered_queries, seed=config.seed, database=database
    )
    uncovered = _uncovered_queries(
        workload, database, seed=config.seed + 1, count=config.uncovered_queries
    )
    if not covered:
        raise ReproError(f"workload {config.workload}: no covered queries generated")

    # Writes target the covered queries' dependency relations, so batches
    # actually churn the result cache instead of idling on unrelated data.
    dependencies: set[str] = set()
    for query in covered:
        prepared, _ = engine.prepare(query)
        dependencies.update(prepared.dependencies)
    rng = random.Random(config.seed)
    writes = _WriteStream(database, sorted(dependencies), rng)

    outcome = SoakOutcome()

    def post_check(query: Query, result) -> None:
        outcome.reads_served += 1
        if not config.verify:
            return
        reference = evaluate(query, database).rows
        outcome.reads_verified += 1
        if result.rows != reference:
            outcome.mismatches.append(
                f"{len(result.rows)} rows served vs {len(reference)} reference "
                f"(strategy={result.strategy}) for:\n{query}"
            )

    injector = FaultInjector(seed=config.seed)
    if faults_active:
        injector.configure(
            "executor",
            FaultSpec(
                latency=config.executor_latency,
                error_rate=config.executor_error_rate,
            ),
        )
        # The conventional path is fully broken: always slow, always failing.
        # The breaker must contain it.
        injector.configure(
            "fallback", FaultSpec(latency=config.fallback_latency, error_rate=1.0)
        )
        injector.configure(
            "storage.write", FaultSpec(fail_every=config.storage_fail_every)
        )
        injector.install_engine(engine)
        injector.install_writes(database)

    server_config = ServerConfig(
        max_queue_depth=config.queue_depth,
        workers=config.workers,
        default_timeout=config.deadline,
        seed=config.seed,
    )
    server = BoundedServer(engine, server_config, post_check=post_check)

    def _arm_chaos() -> None:
        """Turn the scenario faults on, mid-run (shard-fetch seam only)."""
        if config.kill_shard:
            target_set = engine.shards[0]
            victim = target_set.replicas[0]
            shard_injector.kill(victim)
            scenario_log["killed_replica"] = victim.name
            # Exercise the failover read *before* the next routed write can
            # quarantine the dead member (a quarantined member never gets a
            # fetch, so failover would be unobservable): sweep the federated
            # result cache and scatter covered reads until one fetches
            # through the victim's set and fails over to its sibling.
            engine.result_cache.invalidate(None)
            before = target_set.failovers
            for query in covered:
                try:
                    engine.execute(query)
                except ReproError:
                    pass
                if target_set.failovers > before:
                    break
        if config.flaky_shard:
            target_set = engine.shards[min(1, len(engine.shards) - 1)]
            victim = target_set.replicas[0]
            shard_injector.install_shard(victim)
            shard_injector.configure(
                f"{victim.name}.fetch",
                ShardFaultSpec(
                    latency=config.flaky_latency, error_rate=config.flaky_error_rate
                ),
            )
            shard_injector.configure(
                f"{victim.name}.write",
                ShardFaultSpec(torn_write_every=config.flaky_torn_write_every),
            )
            # The *set* also starts reporting stale epoch tokens sometimes;
            # the router's merge-time validation must refuse to serve
            # through them (a retry or a typed TransientFault, never rows).
            shard_injector.install_shard(target_set)
            shard_injector.configure(
                f"{target_set.name}.snapshot",
                ShardFaultSpec(stale_snapshot_rate=config.flaky_stale_snapshot_rate),
            )
            scenario_log["flaky_replica"] = victim.name

    def _run_rebalance() -> None:
        """Migrate the busiest dependency relation's middle key range."""
        relation = max(
            sorted(dependencies), key=lambda name: len(database.relation(name))
        )
        position = engine.partitioner._positions[relation]
        values = sorted({row[position] for row in database.relation(relation).rows})
        if len(values) < 4:
            scenario_log["rebalance"] = {"skipped": f"{relation}: too few keys"}
            return
        lo, hi = values[len(values) // 4], values[(3 * len(values)) // 4]
        owners: dict[int, int] = {}
        for value in values:
            if lo <= value < hi:
                owner = engine.partitioner.shard_for_value(relation, value)
                owners[owner] = owners.get(owner, 0) + 1
        src = max(owners, key=lambda index: owners[index])
        dst = (src + 1) % config.shards
        try:
            report = engine.rebalance(relation, (lo, hi), src, dst)
        except TransientFault as error:
            scenario_log["rebalance"] = {"aborted": str(error)}
        else:
            scenario_log["rebalance"] = report.snapshot()

    arm_at = config.requests // 3 if (config.kill_shard or config.flaky_shard) else None
    rebalance_at = (config.requests * 2) // 3 if config.rebalance else None

    async def _drive() -> None:
        async with server:
            # Phase A — randomized mixed read/write traffic, in waves small
            # enough that the queue never fills (phase B tests that).  The
            # chaos scenarios arm a third of the way in and the rebalance
            # runs two thirds in, so each sees pre-fault traffic, runs under
            # continuing traffic, and stays armed through phases B–D.
            pending: list[asyncio.Task] = []
            for issued in range(config.requests):
                if issued == arm_at or issued == rebalance_at:
                    await _settle(pending)
                    pending = []
                    if issued == arm_at:
                        _arm_chaos()
                    if issued == rebalance_at:
                        _run_rebalance()
                roll = rng.random()
                if roll < config.write_ratio:
                    request: ReadRequest | WriteRequest = WriteRequest(
                        updates=writes.next_batch(config.batch_size)
                    )
                elif uncovered and roll < config.write_ratio + 0.1:
                    request = ReadRequest(query=rng.choice(uncovered))
                else:
                    request = ReadRequest(query=rng.choice(covered))
                pending.append(asyncio.ensure_future(server.submit(request)))
                if len(pending) >= config.wave:
                    await _settle(pending)
                    pending = []
            await _settle(pending)

            # Phase B — overload burst: 3× the queue depth at once.  Admission
            # must shed the excess instead of queueing it.
            burst = [
                asyncio.ensure_future(server.submit(ReadRequest(query=rng.choice(covered))))
                for _ in range(config.queue_depth * 3)
            ]
            await _settle(burst)

            # Phase C — deadline probes: already-expired requests must be
            # refused with the typed deadline error, never served.
            probes = [
                asyncio.ensure_future(
                    server.submit(ReadRequest(query=rng.choice(covered), timeout=0.0))
                )
                for _ in range(3)
            ]
            await _settle(probes)

            # Phase D — post-chaos audit: with faults still armed, every
            # covered query must serve rows identical to the uncached
            # reference (this is where a missed cache sweep after a partial
            # batch would surface as a stale read).
            for query in covered:
                audits = [asyncio.ensure_future(server.submit(ReadRequest(query=query)))]
                await _settle(audits)

    async def _settle(tasks: list[asyncio.Task]) -> None:
        for result in await asyncio.gather(*tasks, return_exceptions=True):
            _tally(result)

    def _tally(result) -> None:
        if isinstance(result, DeadlineExceededError):
            outcome.shed_deadline += 1
        elif isinstance(result, OverloadedError):
            # CircuitOpenError subclasses OverloadedError: split on the rung.
            if "breaker" in str(result) or "circuit" in str(result):
                outcome.rejected_breaker += 1
            else:
                outcome.shed_overload += 1
        elif isinstance(result, TransientFault):
            outcome.failed_transient += 1
        elif isinstance(result, BaseException):
            outcome.other_errors.append(f"{type(result).__name__}: {result}")
        elif result.strategy == "write":
            outcome.writes_ok += 1
        elif result.strategy == "write_failed":
            outcome.writes_partial += 1
        elif not result.snapshot_valid:
            outcome.snapshot_violations += 1

    try:
        asyncio.run(_drive())
    finally:
        injector.uninstall()
        if shard_injector is not None:
            shard_injector.uninstall()

    stats = server.stats()
    covered_p99_ms = max(
        (stats["serving"]["latency"].get(key, {}).get("p99_ms", 0.0))
        for key in ("bounded", "result_cache")
    )
    checks = {
        "no_result_mismatches": not outcome.mismatches,
        "no_snapshot_violations": outcome.snapshot_violations == 0,
        "no_unexpected_errors": not outcome.other_errors,
        "overload_shed": outcome.shed_overload > 0,
        "deadline_enforced": outcome.shed_deadline > 0,
        "reads_verified": outcome.reads_verified > 0 or not config.verify,
    }
    if faults_active:
        checks.update(
            {
                "breaker_opened": stats["breaker"]["times_opened"] > 0,
                "breaker_rejected_fallback": outcome.rejected_breaker > 0,
                "covered_p99_below_fallback_floor": (
                    covered_p99_ms < config.fallback_latency * 1000
                ),
                "partial_write_batches_surfaced": outcome.writes_partial > 0,
            }
        )
    report_extra: dict = {}
    if sharded:
        router_stats = engine.stats()
        scatter = router_stats["scatter_gather"]
        replication = router_stats["replication"]
        checks.update(
            {
                # Every served read already row-matched the single-database
                # reference (no_result_mismatches); these pin the federation
                # mechanics: fetches actually scattered, every merge stayed
                # within one epoch per shard, and writes routed in batches.
                "federation_scattered": scatter["scatters"] > 0,
                "no_mixed_epoch_merges": scatter["mixed_epoch_aborts"] == 0,
                "writes_routed": scatter["write_batches"] > 0,
            }
        )
        if config.kill_shard or config.flaky_shard:
            # The scenarios' own contract: faulted portions were recovered
            # on a sibling, and the faulty member left the rotation.
            checks["replica_failover_served"] = replication["failovers"] > 0
            checks["replica_quarantined"] = replication["quarantines"] > 0
        if config.flaky_shard:
            # Intermittent faults heal: the quarantined member must have
            # been caught up (and so re-admitted) at least once.
            checks["replica_caught_up"] = replication["catch_ups"] > 0
        if config.rebalance:
            checks["rebalance_completed"] = scatter["rebalances"] >= 1
            checks["rebalance_moved_rows"] = scatter["rebalance_rows_moved"] > 0
        report_extra["router"] = router_stats
        report_extra["shard_faults"] = shard_injector.stats()
        if scenario_active:
            report_extra["scenario"] = scenario_log
    # Per-rung latency distribution (the degradation ladder: bounded,
    # result_cache, conventional, write, …) — the soak's tail-latency view,
    # read from the same recorder the serving tier reports.
    latency_rungs = {
        rung: {
            key: sample[key]
            for key in ("count", "p50_ms", "p95_ms", "p99_ms")
            if key in sample
        }
        for rung, sample in stats["serving"]["latency"].items()
    }
    return {
        "config": {
            "workload": config.workload,
            "scale": config.scale,
            "seed": config.seed,
            "shards": config.shards,
            "replicas": effective_replicas,
            "requests": config.requests,
            "faults": faults_active,
            "kill_shard": config.kill_shard,
            "flaky_shard": config.flaky_shard,
            "rebalance": config.rebalance,
            "verify": config.verify,
        },
        **report_extra,
        "outcome": {
            "reads_served": outcome.reads_served,
            "reads_verified": outcome.reads_verified,
            "mismatches": outcome.mismatches[:5],
            "snapshot_violations": outcome.snapshot_violations,
            "writes_ok": outcome.writes_ok,
            "writes_partial": outcome.writes_partial,
            "shed_overload": outcome.shed_overload,
            "shed_deadline": outcome.shed_deadline,
            "rejected_breaker": outcome.rejected_breaker,
            "failed_transient": outcome.failed_transient,
            "other_errors": outcome.other_errors[:5],
        },
        "covered_p99_ms": covered_p99_ms,
        "latency_rungs": latency_rungs,
        "server": stats,
        "faults": injector.stats(),
        "checks": checks,
        "passed": all(checks.values()),
    }
