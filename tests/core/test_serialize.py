"""Unit tests for JSON serialization of schemas and access schemas."""

import json

import pytest

from repro.core.errors import SchemaError
from repro.core.serialize import (
    access_schema_from_list,
    access_schema_to_list,
    constraint_from_dict,
    constraint_to_dict,
    dump_access_schema,
    dump_schema,
    load_access_schema,
    load_schema,
    schema_from_dict,
    schema_to_dict,
)
from repro.workloads import facebook


class TestSchemaRoundTrip:
    def test_dict_round_trip(self, fb_schema):
        assert schema_from_dict(schema_to_dict(fb_schema)) == fb_schema

    def test_file_round_trip(self, fb_schema, tmp_path):
        path = tmp_path / "schema.json"
        dump_schema(fb_schema, path)
        assert load_schema(path) == fb_schema
        # the file is plain JSON
        assert isinstance(json.loads(path.read_text()), dict)

    def test_invalid_payload_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_dict(["not", "a", "dict"])


class TestAccessSchemaRoundTrip:
    def test_constraint_round_trip(self, fb_access):
        for constraint in fb_access:
            restored = constraint_from_dict(constraint_to_dict(constraint))
            assert restored == constraint
            assert restored.name == constraint.name

    def test_list_round_trip(self, fb_access, fb_schema):
        data = access_schema_to_list(fb_access)
        restored = access_schema_from_list(data, schema=fb_schema)
        assert restored == fb_access

    def test_file_round_trip(self, fb_access, fb_schema, tmp_path):
        path = tmp_path / "constraints.json"
        dump_access_schema(fb_access, path)
        restored = load_access_schema(path, schema=fb_schema)
        assert restored == fb_access

    def test_missing_field_rejected(self):
        with pytest.raises(SchemaError, match="missing field"):
            constraint_from_dict({"relation": "r", "lhs": ["a"]})

    def test_invalid_payload_rejected(self):
        with pytest.raises(SchemaError):
            access_schema_from_list({"not": "a list"})

    def test_empty_lhs_survives_round_trip(self, fb_schema):
        from repro.core.access import AccessConstraint

        constraint = AccessConstraint.of("dine", (), "month", 12)
        assert constraint_from_dict(constraint_to_dict(constraint)) == constraint
