"""Head-to-head evaluation benchmark: evalQP vs evalQP⁻ vs evalDBMS.

This is the microbenchmark behind every Figure 5 plot: one covered query per
workload, answered (a) by its bounded plan under the minA-minimized schema,
(b) by its bounded plan under the full schema, and (c) by the conventional
baseline.  pytest-benchmark reports the timing distributions; the accompanying
assertions pin down the access-volume relationships the paper highlights.
"""

import pytest

from repro.core.coverage import check_coverage
from repro.core.minimize import minimize_access
from repro.core.planner import generate_plan
from repro.evaluator.baseline import evaluate_conventional
from repro.evaluator.executor import PlanExecutor


@pytest.fixture(scope="module")
def evaluation_setup(prepared):
    workload = prepared["workload"]
    database = prepared["database"]
    indexes = prepared["indexes"]
    query = prepared["queries"][0]
    full_plan = generate_plan(check_coverage(query, workload.access_schema))
    minimized = minimize_access(query, workload.access_schema).selected
    minimized_plan = generate_plan(check_coverage(query, minimized))
    executor = PlanExecutor(database, indexes)
    return workload, database, indexes, query, full_plan, minimized_plan, executor


def test_evalqp_minimized(benchmark, evaluation_setup):
    workload, database, indexes, query, full_plan, minimized_plan, executor = evaluation_setup
    result = benchmark(executor.execute, minimized_plan)
    assert result.counter.scanned == 0
    assert result.counter.total <= minimized_plan.access_bound()


def test_evalqp_full_schema(benchmark, evaluation_setup):
    workload, database, indexes, query, full_plan, minimized_plan, executor = evaluation_setup
    result = benchmark(executor.execute, full_plan)
    assert result.counter.scanned == 0


def test_evaldbms_baseline(benchmark, evaluation_setup):
    workload, database, indexes, query, full_plan, minimized_plan, executor = evaluation_setup
    result = benchmark(
        evaluate_conventional, query, database, workload.access_schema, indexes
    )
    assert result.counter.fetched == 0


def test_access_volumes_ordered(evaluation_setup, benchmark):
    """|D_Q| of evalQP ≤ evalQP⁻, and both answer exactly like the baseline."""
    workload, database, indexes, query, full_plan, minimized_plan, executor = evaluation_setup

    def run():
        minimized = executor.execute(minimized_plan)
        full = executor.execute(full_plan)
        baseline = evaluate_conventional(query, database, workload.access_schema, indexes)
        return minimized, full, baseline

    minimized, full, baseline = benchmark.pedantic(run, rounds=1, iterations=1)
    assert minimized.rows == full.rows == baseline.rows
    assert minimized.counter.total <= full.counter.total * 1.05
