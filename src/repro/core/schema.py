"""Relational schemas.

A :class:`RelationSchema` is a named relation with an ordered list of
attributes.  A :class:`DatabaseSchema` is a collection of relation schemas,
the ``R`` of the paper.  Attributes are referred to either by bare name
(``"cid"``) or qualified (``"cafe.cid"``); the :class:`Attribute` value class
keeps both parts so that queries over renamed relation occurrences can talk
about ``dine'[cid]`` and ``dine''[cid]`` as distinct attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from .errors import SchemaError


@dataclass(frozen=True, order=True)
class Attribute:
    """A (relation, attribute) pair, e.g. ``dine.cid``.

    ``relation`` is the *occurrence* name of the relation in a query (after
    normalization each occurrence has a distinct name), and ``name`` is the
    attribute name within that relation.
    """

    relation: str
    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.relation}.{self.name}"

    @classmethod
    def parse(cls, text: str, default_relation: str | None = None) -> "Attribute":
        """Parse ``"rel.attr"`` or ``"attr"`` (using ``default_relation``)."""
        if "." in text:
            relation, name = text.split(".", 1)
            return cls(relation, name)
        if default_relation is None:
            raise SchemaError(f"attribute {text!r} is unqualified and no default relation given")
        return cls(default_relation, text)


class RelationSchema:
    """A relation schema ``R(A1, ..., Ak)``.

    Attributes are ordered (tuples are stored positionally) but membership
    checks and lookups are O(1).
    """

    def __init__(self, name: str, attributes: Sequence[str]):
        if not name:
            raise SchemaError("relation name must be non-empty")
        if not attributes:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        seen: set[str] = set()
        for attr in attributes:
            if attr in seen:
                raise SchemaError(f"duplicate attribute {attr!r} in relation {name!r}")
            seen.add(attr)
        self.name = name
        self.attributes: tuple[str, ...] = tuple(attributes)
        self._positions: dict[str, int] = {a: i for i, a in enumerate(self.attributes)}

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._positions

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RelationSchema({self.name!r}, {list(self.attributes)!r})"

    # -- lookups ------------------------------------------------------------
    def position(self, attribute: str) -> int:
        """Return the index of ``attribute`` within the schema."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"available: {', '.join(self.attributes)}"
            ) from None

    def positions(self, attributes: Iterable[str]) -> tuple[int, ...]:
        """Return the indexes of several attributes, in the given order."""
        return tuple(self.position(a) for a in attributes)

    def qualified(self) -> tuple[Attribute, ...]:
        """All attributes of this relation as :class:`Attribute` values."""
        return tuple(Attribute(self.name, a) for a in self.attributes)

    def rename(self, new_name: str) -> "RelationSchema":
        """A copy of this schema under a new relation name (ρ of RA)."""
        return RelationSchema(new_name, self.attributes)


class DatabaseSchema:
    """A collection of relation schemas — the ``R`` over which queries are posed."""

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations: dict[str, RelationSchema] = {}
        for relation in relations:
            self.add(relation)

    @classmethod
    def from_dict(cls, spec: Mapping[str, Sequence[str]]) -> "DatabaseSchema":
        """Build a schema from ``{"relation": ["attr1", ...], ...}``."""
        return cls(RelationSchema(name, attrs) for name, attrs in spec.items())

    def add(self, relation: RelationSchema) -> None:
        """Declare a relation; duplicate names raise :class:`SchemaError`."""
        if relation.name in self._relations:
            raise SchemaError(f"relation {relation.name!r} already declared")
        self._relations[relation.name] = relation

    # -- basic protocol ----------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"unknown relation {name!r}; known relations: {', '.join(self._relations) or '(none)'}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DatabaseSchema({list(self._relations)})"

    # -- helpers -------------------------------------------------------------
    def relation_names(self) -> tuple[str, ...]:
        """All declared relation names, in declaration order."""
        return tuple(self._relations)

    def get(self, name: str) -> RelationSchema | None:
        """The relation schema for ``name``, or ``None`` when undeclared."""
        return self._relations.get(name)

    def with_renaming(self, mapping: Mapping[str, str]) -> "DatabaseSchema":
        """A schema in which each relation ``old`` in ``mapping`` also appears
        under the new occurrence name ``mapping[old]``.

        Used when normalizing queries: each occurrence of a base relation gets
        a distinct name but shares the base relation's attributes.
        """
        schema = DatabaseSchema(self._relations.values())
        for old, new in mapping.items():
            base = self[old]
            if new not in schema:
                schema.add(base.rename(new))
        return schema
