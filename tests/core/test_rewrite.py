"""Unit tests for A-equivalent rewriting and the bounded-evaluability oracle."""

import pytest

from repro.core.coverage import is_covered
from repro.core.query import Difference, Relation, Union, conjunction, eq
from repro.core.rewrite import (
    clone_with_fresh_names,
    find_covered_rewrite,
    guard_difference,
    guard_differences,
    is_boundedly_evaluable,
    prune_unsatisfiable_branches,
    rewrite_candidates,
)
from repro.evaluator.algebra import evaluate
from repro.workloads import facebook


class TestCloneWithFreshNames:
    def test_clone_renames_every_occurrence(self, fb_q1):
        clone = clone_with_fresh_names(fb_q1, suffix="x")
        original_names = {r.name for r in fb_q1.relations()}
        clone_names = {r.name for r in clone.relations()}
        assert original_names.isdisjoint(clone_names)
        assert {r.base for r in clone.relations()} == {r.base for r in fb_q1.relations()}

    def test_clone_preserves_semantics(self, fb_q1, fb_database):
        clone = clone_with_fresh_names(fb_q1)
        assert evaluate(clone, fb_database).rows == evaluate(fb_q1, fb_database).rows


class TestGuardDifference:
    def test_guarded_query_equivalent_on_data(self, fb_q0, fb_database):
        guarded = guard_differences(fb_q0)
        assert evaluate(guarded, fb_database).rows == evaluate(fb_q0, fb_database).rows

    def test_guarded_q0_is_covered(self, fb_q0, fb_access):
        """The guard-difference rewrite makes Example 1's Q0 covered, like Q0'."""
        guarded = guard_differences(fb_q0)
        assert not is_covered(fb_q0, fb_access)
        assert is_covered(guarded, fb_access)

    def test_guard_difference_node_shape(self, fb_q0):
        guarded = guard_difference(fb_q0)
        assert isinstance(guarded, Difference)
        # the right-hand side now mentions the relations of Q1 as well
        right_bases = {r.base for r in guarded.right.relations()}
        assert {"friend", "dine", "cafe"} <= right_bases

    def test_nested_differences_all_guarded(self, fb_schema, fb_database):
        cafe_a = Relation("cafe_a", fb_schema["cafe"].attributes, base="cafe")
        cafe_b = Relation("cafe_b", fb_schema["cafe"].attributes, base="cafe")
        cafe_c = Relation("cafe_c", fb_schema["cafe"].attributes, base="cafe")
        query = Difference(
            Difference(cafe_a.project([cafe_a["cid"]]), cafe_b.project([cafe_b["cid"]])),
            cafe_c.project([cafe_c["cid"]]),
        )
        guarded = guard_differences(query)
        assert evaluate(guarded, fb_database).rows == evaluate(query, fb_database).rows


class TestPruneUnsatisfiable:
    def test_unsat_branch_removed(self, fb_schema, fb_database):
        cafe_a = Relation("cafe_a", fb_schema["cafe"].attributes, base="cafe")
        cafe_b = Relation("cafe_b", fb_schema["cafe"].attributes, base="cafe")
        unsat = cafe_a.select(
            conjunction([eq(cafe_a["city"], "nyc"), eq(cafe_a["city"], "boston")])
        ).project([cafe_a["cid"]])
        sat = cafe_b.select(eq(cafe_b["city"], "nyc")).project([cafe_b["cid"]])
        query = Union(unsat, sat)
        pruned = prune_unsatisfiable_branches(query)
        assert not isinstance(pruned, Union)
        assert evaluate(pruned, fb_database).rows == evaluate(query, fb_database).rows

    def test_satisfiable_union_untouched(self, fb_schema):
        cafe_a = Relation("cafe_a", fb_schema["cafe"].attributes, base="cafe")
        cafe_b = Relation("cafe_b", fb_schema["cafe"].attributes, base="cafe")
        query = Union(cafe_a.project([cafe_a["cid"]]), cafe_b.project([cafe_b["cid"]]))
        assert isinstance(prune_unsatisfiable_branches(query), Union)


class TestOracle:
    def test_q0_is_boundedly_evaluable(self, fb_q0, fb_access):
        """The headline claim of Example 1: Q0 is bounded although not covered."""
        verdict = find_covered_rewrite(fb_q0, fb_access)
        assert verdict.bounded
        assert verdict.rewrite != "identity"
        assert verdict.witness is not None
        assert is_covered(verdict.witness, fb_access)

    def test_covered_query_uses_identity(self, fb_q1, fb_access):
        verdict = find_covered_rewrite(fb_q1, fb_access)
        assert verdict.bounded and verdict.rewrite == "identity"

    def test_unbounded_query_rejected(self, fb_q2, fb_access):
        """Q2 alone has no covered rewrite: its cid values cannot be bounded."""
        assert not is_boundedly_evaluable(fb_q2, fb_access)

    def test_witness_equivalence_on_data(self, fb_q0, fb_access, fb_database):
        verdict = find_covered_rewrite(fb_q0, fb_access)
        assert (
            evaluate(verdict.witness, fb_database).rows
            == evaluate(fb_q0, fb_database).rows
        )

    def test_rewrite_candidates_listed_in_order(self, fb_q0):
        names = [name for name, _ in rewrite_candidates(fb_q0)]
        assert names[0] == "identity"
        assert "guard-difference" in names
        assert len(names) == 4
