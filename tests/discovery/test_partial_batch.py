"""Partial-batch failure semantics of ``apply_updates`` (PR 6, satellite 1).

A mid-batch failure must: keep the cleanly-applied prefix, surface a
:class:`MaintenanceError` carrying the partial report, settle the version
clock over every relation the aborted batch touched, and — at the engine
level — sweep the caches so no reader can ever be served pre-batch rows.
"""

import pytest

from repro.core.engine import BoundedEngine
from repro.core.errors import MaintenanceError, StorageError, TransientFault
from repro.discovery.maintenance import Update, apply_updates
from repro.storage.database import Database
from repro.storage.index import IndexSet


@pytest.fixture
def db(fb_schema):
    from repro.workloads import facebook

    return facebook.generate(scale=20, seed=3)


@pytest.fixture
def indexes(db, fb_access):
    return IndexSet.build(db, fb_access)


def failing_delete(database, relation: str, nth: int):
    """Make the ``nth`` call to ``relation``'s delete raise a TransientFault."""
    instance = database.relation(relation)
    original = instance.delete
    calls = {"n": 0}

    def flaky(row):
        calls["n"] += 1
        if calls["n"] == nth:
            raise TransientFault("injected storage fault")
        return original(row)

    instance.delete = flaky
    return lambda: delattr(instance, "delete")


class TestApplyUpdatesPartialFailure:
    def test_prefix_kept_and_report_carried(self, db, indexes, fb_access):
        rows = list(db.relation("cafe").rows)[:3]
        updates = [Update.delete("cafe", row) for row in rows]
        restore = failing_delete(db, "cafe", 3)
        try:
            with pytest.raises(MaintenanceError) as excinfo:
                apply_updates(db, indexes, fb_access, updates)
        finally:
            restore()
        report = excinfo.value.report
        assert report is not None
        assert report.failed
        assert report.applied == 2
        assert report.failed_update == updates[2]
        assert "TransientFault" in report.error
        # The prefix really landed; the faulted row is still present.
        remaining = set(db.relation("cafe").rows)
        assert rows[0] not in remaining and rows[1] not in remaining
        assert rows[2] in remaining

    def test_clock_settled_over_partially_touched_relations(self, db, indexes, fb_access):
        rows = list(db.relation("cafe").rows)[:2]
        before = db.relation_version("cafe")
        restore = failing_delete(db, "cafe", 2)
        try:
            with pytest.raises(MaintenanceError) as excinfo:
                apply_updates(db, indexes, fb_access, [Update.delete("cafe", r) for r in rows])
        finally:
            restore()
        assert db.relation_version("cafe") > before
        assert excinfo.value.report.touched_relations == {"cafe"}
        assert excinfo.value.report.version == db.version

    def test_failure_on_first_update_touches_nothing(self, db, indexes, fb_access):
        row = next(iter(db.relation("cafe").rows))
        before = db.relation_version("cafe")
        restore = failing_delete(db, "cafe", 1)
        try:
            with pytest.raises(MaintenanceError) as excinfo:
                apply_updates(db, indexes, fb_access, [Update.delete("cafe", row)])
        finally:
            restore()
        assert excinfo.value.report.applied == 0
        assert excinfo.value.report.touched_relations == set()
        assert db.relation_version("cafe") == before  # nothing changed: no bump

    def test_indexes_stay_consistent_with_storage(self, db, indexes, fb_access):
        rows = list(db.relation("cafe").rows)[:3]
        restore = failing_delete(db, "cafe", 3)
        try:
            with pytest.raises(MaintenanceError):
                apply_updates(
                    db, indexes, fb_access, [Update.delete("cafe", r) for r in rows]
                )
        finally:
            restore()
        rebuilt = IndexSet.build(db, fb_access)
        for constraint in fb_access.for_relation("cafe"):
            assert (
                indexes.index_for(constraint)._entries
                == rebuilt.index_for(constraint)._entries
            )


class TestEnginePartialFailure:
    def test_no_stale_serve_after_partial_batch(self, hot_cold_setup):
        """The original stale-serve bug: a mid-batch failure used to leave the
        result cache unswept, so the next read served pre-batch rows."""
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access, check_constraints=False)
        before = engine.execute(hot_query).rows
        assert engine.execute(hot_query).result_cached

        # Batch: delete ("a", 1) — applies; then delete ("a", 2) — faults.
        restore = failing_delete(database, "hot", 2)
        try:
            with pytest.raises(MaintenanceError) as excinfo:
                engine.apply_updates(
                    [Update.delete("hot", ("a", 1)), Update.delete("hot", ("a", 2))]
                )
        finally:
            restore()
        assert excinfo.value.report.applied == 1

        after = engine.execute(hot_query)
        assert not after.result_cached, "partial batch must sweep the result cache"
        assert after.rows == before - {(1,)}

    def test_partial_report_version_matches_database(self, hot_cold_setup):
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access, check_constraints=False)
        restore = failing_delete(database, "hot", 2)
        try:
            with pytest.raises(MaintenanceError) as excinfo:
                engine.apply_updates(
                    [Update.delete("hot", ("a", 1)), Update.delete("hot", ("a", 2))]
                )
        finally:
            restore()
        assert excinfo.value.report.version == database.version

    def test_clean_batch_still_reports_unfailed(self, hot_cold_setup):
        database, access, _ = hot_cold_setup
        engine = BoundedEngine(database, access, check_constraints=False)
        report = engine.apply_updates([Update.delete("hot", ("a", 1))])
        assert not report.failed
        assert report.error is None


class TestRowValidation:
    """Satellite 2: ``apply_insert`` / ``apply_delete`` validate before mutating."""

    def test_bad_arity_insert_leaves_everything_untouched(self, hot_cold_setup):
        database, access, hot_query = hot_cold_setup
        engine = BoundedEngine(database, access, check_constraints=False)
        baseline = engine.execute(hot_query).rows
        version = database.version
        rows_before = set(database.relation("hot").rows)
        with pytest.raises(StorageError, match="expects 2 values|arity|2"):
            engine.apply_insert("hot", ("a", 1, "extra"))
        assert set(database.relation("hot").rows) == rows_before
        assert database.version == version
        assert engine.execute(hot_query).rows == baseline

    def test_unknown_column_mapping_rejected_before_mutation(self, hot_cold_setup):
        database, access, _ = hot_cold_setup
        engine = BoundedEngine(database, access, check_constraints=False)
        version = database.version
        with pytest.raises(StorageError, match="unknown attributes.*nope"):
            engine.apply_insert("hot", {"k": "z", "v": 1, "nope": 2})
        assert database.version == version

    def test_unknown_column_delete_rejected(self, hot_cold_setup):
        database, access, _ = hot_cold_setup
        engine = BoundedEngine(database, access, check_constraints=False)
        with pytest.raises(StorageError, match="unknown attributes"):
            engine.apply_delete("hot", {"k": "a", "v": 1, "wrong": 1})

    def test_valid_mapping_insert_still_works(self, hot_cold_setup):
        database, access, _ = hot_cold_setup
        engine = BoundedEngine(database, access, check_constraints=False)
        engine.apply_insert("hot", {"k": "z", "v": 42})
        assert ("z", 42) in set(database.relation("hot").rows)

    def test_relation_prepare_rejects_unknown_attributes(self, fb_database):
        instance = fb_database.relation("cafe")
        row = dict(zip(instance.schema.attributes, next(iter(instance.rows))))
        row["bogus_column"] = 1
        with pytest.raises(StorageError, match="unknown attributes.*bogus_column"):
            instance.prepare(row)
