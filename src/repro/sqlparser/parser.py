"""Recursive-descent parser for the SQL subset, plus translation to RA.

``parse_sql(text, schema)`` is the one-stop entry point: it tokenizes,
parses, and translates into the :mod:`repro.core.query` AST, resolving
unqualified column names against the FROM clause and the database schema.
"""

from __future__ import annotations

from typing import Sequence

from ..core.errors import ParseError, QueryError
from ..core.query import (
    Comparison,
    Constant,
    Difference,
    Join,
    Predicate,
    Projection,
    Query,
    Relation,
    Selection,
    Union,
    conjunction,
)
from ..core.schema import Attribute, DatabaseSchema
from .ast import (
    ColumnExpr,
    ComparisonExpr,
    JoinClause,
    LiteralExpr,
    SelectStatement,
    SetOperation,
    TableRef,
)
from .lexer import Token, TokenType, tokenize


class _Parser:
    """Token-stream cursor with the grammar's productions as methods."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- cursor helpers -----------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def expect(self, token_type: TokenType, value: str | None = None) -> Token:
        if not self.current.matches(token_type, value):
            expected = value or token_type.value
            raise ParseError(
                f"expected {expected!r} but found {self.current.value!r}",
                self.current.position,
                self.text,
            )
        return self.advance()

    def accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        if self.current.matches(token_type, value):
            return self.advance()
        return None

    # -- grammar -------------------------------------------------------------------
    def parse(self) -> SelectStatement | SetOperation:
        statement = self.parse_set_expression()
        self.accept(TokenType.PUNCTUATION, ";")
        self.expect(TokenType.EOF)
        return statement

    def parse_set_expression(self) -> SelectStatement | SetOperation:
        left = self.parse_select_block()
        while self.current.matches(TokenType.KEYWORD, "union") or self.current.matches(
            TokenType.KEYWORD, "except"
        ):
            operator = self.advance().value.lower()
            self.accept(TokenType.KEYWORD, "all")
            right = self.parse_select_block()
            left = SetOperation(operator=operator, left=left, right=right)
        return left

    def parse_select_block(self) -> SelectStatement | SetOperation:
        if self.accept(TokenType.PUNCTUATION, "("):
            inner = self.parse_set_expression()
            self.expect(TokenType.PUNCTUATION, ")")
            return inner
        return self.parse_select()

    def parse_select(self) -> SelectStatement:
        self.expect(TokenType.KEYWORD, "select")
        distinct = bool(self.accept(TokenType.KEYWORD, "distinct"))
        columns = self.parse_select_list()
        self.expect(TokenType.KEYWORD, "from")
        from_tables, joins = self.parse_from()
        where: tuple[ComparisonExpr, ...] = ()
        if self.accept(TokenType.KEYWORD, "where"):
            where = tuple(self.parse_condition())
        return SelectStatement(
            columns=columns,
            from_tables=from_tables,
            joins=joins,
            where=where,
            distinct=distinct,
        )

    def parse_select_list(self) -> list[ColumnExpr] | None:
        if self.accept(TokenType.PUNCTUATION, "*"):
            return None
        columns = [self.parse_column()]
        while self.accept(TokenType.PUNCTUATION, ","):
            columns.append(self.parse_column())
        return columns

    def parse_from(self) -> tuple[list[TableRef], list[JoinClause]]:
        tables = [self.parse_table_ref()]
        joins: list[JoinClause] = []
        while True:
            if self.accept(TokenType.PUNCTUATION, ","):
                tables.append(self.parse_table_ref())
                continue
            if self.current.matches(TokenType.KEYWORD, "inner") or self.current.matches(
                TokenType.KEYWORD, "join"
            ):
                self.accept(TokenType.KEYWORD, "inner")
                self.expect(TokenType.KEYWORD, "join")
                table = self.parse_table_ref()
                self.expect(TokenType.KEYWORD, "on")
                condition = tuple(self.parse_condition())
                joins.append(JoinClause(table=table, condition=condition))
                continue
            break
        return tables, joins

    def parse_table_ref(self) -> TableRef:
        table = self.expect(TokenType.IDENTIFIER).value
        alias: str | None = None
        if self.accept(TokenType.KEYWORD, "as"):
            alias = self.expect(TokenType.IDENTIFIER).value
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return TableRef(table=table, alias=alias)

    def parse_condition(self) -> list[ComparisonExpr]:
        atoms = [self.parse_comparison()]
        while self.accept(TokenType.KEYWORD, "and"):
            atoms.append(self.parse_comparison())
        return atoms

    def parse_comparison(self) -> ComparisonExpr:
        left = self.parse_term()
        operator_token = self.expect(TokenType.OPERATOR)
        operator = "!=" if operator_token.value == "<>" else operator_token.value
        right = self.parse_term()
        return ComparisonExpr(left=left, op=operator, right=right)

    def parse_term(self) -> ColumnExpr | LiteralExpr:
        if self.current.type is TokenType.STRING:
            return LiteralExpr(self.advance().value)
        if self.current.type is TokenType.NUMBER:
            raw = self.advance().value
            return LiteralExpr(float(raw) if "." in raw else int(raw))
        return self.parse_column()

    def parse_column(self) -> ColumnExpr:
        first = self.expect(TokenType.IDENTIFIER).value
        if self.accept(TokenType.PUNCTUATION, "."):
            second = self.expect(TokenType.IDENTIFIER).value
            return ColumnExpr(name=second, table=first)
        return ColumnExpr(name=first)


def parse_statement(text: str) -> SelectStatement | SetOperation:
    """Parse SQL text into the intermediate SQL AST (no schema needed)."""
    return _Parser(text).parse()


# ---------------------------------------------------------------------------
# Translation to RA
# ---------------------------------------------------------------------------

def to_query(statement: SelectStatement | SetOperation, schema: DatabaseSchema) -> Query:
    """Translate a parsed statement into the RA query AST."""
    if isinstance(statement, SetOperation):
        left = to_query(statement.left, schema)
        right = to_query(statement.right, schema)
        if statement.operator == "union":
            return Union(left, right)
        return Difference(left, right)
    return _select_to_query(statement, schema)


def _select_to_query(statement: SelectStatement, schema: DatabaseSchema) -> Query:
    relations: dict[str, Relation] = {}
    query: Query | None = None

    def add_table(ref: TableRef) -> Relation:
        if ref.name in relations:
            raise ParseError(f"duplicate table occurrence {ref.name!r} in FROM clause")
        relation = Relation(ref.name, schema[ref.table].attributes, base=ref.table)
        relations[ref.name] = relation
        return relation

    for ref in statement.from_tables:
        relation = add_table(ref)
        query = relation if query is None else query.product(relation)
    assert query is not None

    def resolve(column: ColumnExpr) -> Attribute:
        if column.table is not None:
            if column.table not in relations:
                raise ParseError(f"unknown table alias {column.table!r}")
            return relations[column.table][column.name]
        matches = [
            rel[column.name]
            for rel in relations.values()
            if column.name in rel.attribute_names
        ]
        if not matches:
            raise ParseError(f"unknown column {column.name!r}")
        if len(matches) > 1:
            raise ParseError(f"ambiguous column {column.name!r}")
        return matches[0]

    def to_predicate(atoms: Sequence[ComparisonExpr]) -> Predicate:
        comparisons = []
        for atom in atoms:
            left = resolve(atom.left) if isinstance(atom.left, ColumnExpr) else Constant(atom.left.value)
            right = (
                resolve(atom.right) if isinstance(atom.right, ColumnExpr) else Constant(atom.right.value)
            )
            comparisons.append(Comparison(left, atom.op, right))
        combined = conjunction(comparisons)
        assert combined is not None
        return combined

    for join in statement.joins:
        relation = add_table(join.table)
        condition = to_predicate(join.condition)
        query = Join(query, relation, condition)

    if statement.where:
        query = Selection(query, to_predicate(statement.where))

    if statement.columns is not None:
        query = Projection(query, [resolve(c) for c in statement.columns])
    return query


def parse_sql(text: str, schema: DatabaseSchema) -> Query:
    """Parse SQL text and translate it into an RA query over ``schema``."""
    try:
        return to_query(parse_statement(text), schema)
    except QueryError as error:
        raise ParseError(str(error)) from error
