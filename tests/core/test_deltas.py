"""Delta maintenance of cached results: derivability, repair, fallback seams.

Structural rules first (which writes are derivable through which plans), then
the engine-level contract: dirty writes patch cached entries in place, writes
into unprobed index groups re-stamp without execution, and anything the
deriver cannot prove — difference plans, missing environments — invalidates
rather than ever serving a stale repaired entry.
"""

import pytest

from repro.core.deltas import CLEAN, FALLBACK, PATCHED, DeltaDeriver, WriteDelta
from repro.core.engine import BoundedEngine, prepare_query
from repro.discovery.maintenance import Update
from repro.evaluator.algebra import evaluate
from repro.workloads import facebook


class TestWriteDelta:
    def test_groups_rows_by_relation_and_direction(self):
        delta = WriteDelta(
            inserts={"r": [(1,), (2,)]},
            deletes={"s": [(3,)], "r": [(9,)]},
        )
        assert delta.touched == {"r", "s"}
        assert delta.rows_for("r") == ((1,), (2,), (9,))
        assert delta.rows_for("s") == ((3,),)
        assert delta.rows_for("t") == ()
        assert bool(delta)

    def test_empty_relations_are_dropped(self):
        delta = WriteDelta(inserts={"r": []}, deletes={})
        assert not delta
        assert delta.touched == frozenset()

    def test_from_updates_buckets_by_kind(self):
        updates = [
            Update.insert("friend", ("p0", "f1")),
            Update.delete("friend", ("p0", "f2")),
            Update.insert("cafe", ("c1", "nyc")),
        ]
        delta = WriteDelta.from_updates(updates)
        assert delta.inserts == {"friend": (("p0", "f1"),), "cafe": (("c1", "nyc"),)}
        assert delta.deletes == {"friend": (("p0", "f2"),)}
        assert delta.touched == {"friend", "cafe"}


class TestDerivability:
    """Static reachability: monotone plans derive, difference plans refuse."""

    @pytest.fixture
    def deriver(self, fb_schema):
        return DeltaDeriver(None, fb_schema)  # structural checks never execute

    def test_monotone_plan_is_derivable_for_every_relation(self, deriver, fb_access):
        prepared = prepare_query(facebook.query_q1(), fb_access)
        for relation in prepared.dependencies:
            assert deriver.derivable(prepared.executable, frozenset([relation]))

    def test_difference_plan_refuses_every_touched_relation(self, deriver, fb_access):
        # q0 rewrites to a guard-difference plan; every dependent relation's
        # fetches reach the DifferenceOp, so no write through it is derivable.
        prepared = prepare_query(facebook.query_q0(), fb_access)
        assert prepared.rewrite == "guard-difference"
        for relation in prepared.dependencies:
            assert not deriver.derivable(prepared.executable, frozenset([relation]))

    def test_untouched_plan_is_trivially_derivable(self, deriver, fb_access):
        prepared = prepare_query(facebook.query_q0(), fb_access)
        assert deriver.derivable(prepared.executable, frozenset(["unrelated"]))
        assert deriver.affected_fetches(prepared.executable, frozenset(["zzz"])) == ()

    def test_affected_fetches_resolve_base_relations(self, deriver, fb_access):
        prepared = prepare_query(facebook.query_q1(), fb_access)
        plan = prepared.executable
        affected = deriver.affected_fetches(plan, frozenset(["friend"]))
        assert affected  # q1 fetches friend through psi1
        for fetch_id in affected:
            constraint = plan.steps[fetch_id].op.constraint
            base = plan.occurrences.get(constraint.relation, constraint.relation)
            assert base == "friend"


class TestEngineRepair:
    """The wired contract: BoundedEngine writes settle entries via the deriver."""

    def test_unprobed_key_restamps_without_execution(self, fb_database, fb_access):
        engine = BoundedEngine(fb_database, fb_access)
        q1 = facebook.query_q1()
        engine.execute(q1)
        # A cafe whose cid no cached fetch ever probed: the write cannot be
        # visible through the plan, so the entry is re-stamped, not re-run.
        engine.apply_insert("cafe", ("c_unseen", "nowhere"))
        stats = engine.cache_stats()["result_cache"]
        assert stats["repaired"] == 1
        assert stats["repaired_clean"] == 1
        assert stats["rows_patched"] == 0
        assert engine.execute(q1).result_cached

    def test_probed_key_patches_rows_in_place(self, fb_database, fb_access):
        engine = BoundedEngine(fb_database, fb_access)
        q1 = facebook.query_q1()
        engine.execute(q1)
        engine.apply_insert("cafe", ("c_d", "nyc"))
        engine.apply_insert("friend", ("p0", "p_d"))
        engine.apply_insert("dine", ("p_d", "c_d", "may", 2015))
        result = engine.execute(q1)
        assert result.result_cached
        assert ("c_d",) in result.rows
        assert result.rows == evaluate(q1, fb_database).rows
        stats = engine.cache_stats()["result_cache"]
        assert stats["repaired"] == 3
        assert stats["rows_patched"] >= 1
        assert stats["repair_fallbacks"] == 0

    def test_difference_plan_invalidates_never_repairs(self, fb_database, fb_access):
        # Satellite 5: the fallback seam.  A cached guard-difference entry
        # must be dropped on a dependent write — patching through a
        # difference could *keep* rows the write should have removed.
        engine = BoundedEngine(fb_database, fb_access)
        q0 = facebook.query_q0()
        first = engine.execute(q0)
        assert first.rewrite == "guard-difference"
        assert engine.execute(q0).result_cached
        engine.apply_insert("friend", ("p0", "p_diff"))
        stats = engine.cache_stats()["result_cache"]
        assert stats["repair_fallbacks"] == 1
        assert stats["repair_fallback_reasons"] == {"difference": 1}
        assert sum(stats["invalidated_by"].values()) == 1
        result = engine.execute(q0)
        assert not result.result_cached  # recomputed, not served repaired
        assert result.rows == evaluate(q0, fb_database).rows

    def test_env_budget_zero_degrades_to_invalidation(self, fb_database, fb_access):
        # With no environment admitted, repair has nothing to re-execute
        # over: every dependent write must fall back to dropping the entry.
        engine = BoundedEngine(fb_database, fb_access, repair_env_rows=0)
        q1 = facebook.query_q1()
        engine.execute(q1)
        # The executor's capture guard already refused the environment.
        (entry,) = [e for _, e in engine.result_cache.entries_for(("friend",))]
        assert entry.env is None
        engine.apply_insert("friend", ("p0", "p_nb"))
        stats = engine.cache_stats()["result_cache"]
        assert stats["repaired"] == 0
        assert stats["repair_fallback_reasons"] == {"no_env": 1}
        result = engine.execute(q1)
        assert not result.result_cached
        assert result.rows == evaluate(q1, fb_database).rows

    def test_mixed_batch_patches_inserts_and_deletes_together(
        self, fb_database, fb_access
    ):
        engine = BoundedEngine(fb_database, fb_access)
        q1 = facebook.query_q1()
        engine.apply_insert("cafe", ("c_old", "nyc"))
        engine.apply_insert("friend", ("p0", "p_old"))
        engine.apply_insert("dine", ("p_old", "c_old", "may", 2015))
        assert ("c_old",) in engine.execute(q1).rows
        engine.apply_updates(
            [
                Update.delete("dine", ("p_old", "c_old", "may", 2015)),
                Update.insert("cafe", ("c_new2", "nyc")),
                Update.insert("friend", ("p0", "p_new2")),
                Update.insert("dine", ("p_new2", "c_new2", "may", 2015)),
            ]
        )
        result = engine.execute(q1)
        assert result.result_cached
        assert ("c_old",) not in result.rows
        assert ("c_new2",) in result.rows
        assert result.rows == evaluate(q1, fb_database).rows

    def test_out_of_band_write_makes_entry_stale_not_repaired(
        self, fb_database, fb_access
    ):
        # A Database.insert that bypasses the engine bumps the clock without
        # running a derivation; the *next* engine write then sees a snapshot
        # mismatch and must drop the entry rather than repair over unknown
        # intermediate state.
        engine = BoundedEngine(fb_database, fb_access)
        q1 = facebook.query_q1()
        engine.execute(q1)
        fb_database.insert("friend", ("p0", "p_oob"))
        engine.apply_insert("friend", ("p0", "p_oob2"))
        engine.indexes.apply_insert("friend", ("p0", "p_oob"))  # re-sync for reads
        stats = engine.cache_stats()["result_cache"]
        assert stats["repaired"] == 0
        assert stats["repair_fallback_reasons"] == {"stale": 1}

    def test_repair_outcome_metadata_names_dirty_steps(self, fb_database, fb_access):
        engine = BoundedEngine(fb_database, fb_access)
        q1 = facebook.query_q1()
        engine.execute(q1)
        (entry,) = [entry for _, entry in engine.result_cache.entries_for(("friend",))]
        assert entry.env is not None and entry.plan is not None
        # Keep the pre-write environment: the engine's own settlement patches
        # the live entry in place, after which the same delta derives clean.
        env, rows, plan = entry.env, entry.rows, entry.plan
        engine.apply_insert("friend", ("p0", "p_meta"))
        # Derive by hand against the applied write: the friend fetches are
        # dirty and only their downstream closure re-runs.
        outcome = engine._deriver.derive(
            plan, env, rows, WriteDelta(inserts={"friend": (("p0", "p_meta"),)})
        )
        assert outcome.status == PATCHED
        assert outcome.dirty_steps
        assert 0 < outcome.steps_recomputed < len(plan.steps)
        assert outcome.rows == rows  # a friend with no dines adds no cafes
