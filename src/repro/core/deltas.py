"""Delta maintenance of cached bounded results (incremental view repair).

A covered query's result is computed *only* through the fetch steps of its
bounded plan, and each fetch reads exactly one constraint-index group per
probed key.  That gives writes a small, statically-known blast radius: a
tuple written to relation ``R`` can change a cached result only through the
fetch steps over ``R``'s constraints, and only when the written tuple's key
(its projection onto ``sorted(lhs)``) is one of the keys that fetch actually
probed.  :class:`DeltaDeriver` exploits this to **repair** a cached result
in place instead of invalidating it:

1. **Dirty-fetch detection** — for every fetch over a written relation,
   project each written row onto the fetch's constraint key and test
   membership in the key set the fetch probed at fill time (recovered from
   the captured per-step environment).  A miss means the write landed in an
   index group the result never read; when *no* fetch is dirty the entry is
   repaired by re-stamping its version snapshot alone — zero execution.
2. **Selective re-execution** — otherwise, only the dirty fetch steps and
   their downstream closure are re-run through the plan's row kernels over
   the memoized intermediates of the untouched steps.  Because the repair
   runs the *same kernels* over the *same upstream inputs*, the patched
   result is exactly what a full recomputation would produce (a property
   pinned by the randomized repair tests).

**Fallback.** Repair refuses — and the caller must invalidate — whenever
the delta is not derivable through the plan:

* an affected fetch feeds a :class:`~repro.core.plan.DifferenceOp`
  (classical delta rules are non-monotone there: an inserted tuple can
  *remove* result rows through the subtrahend, so the conservative contract
  is to recompute from scratch rather than patch);
* the entry carries no captured environment (columnar execution, or the
  environment exceeded the cache's admission budget);
* derivation itself raises (schema drift, unknown operators).

Monotone fragments (fetch/select/project/join/union/intersect chains) are
always derivable, for inserts and deletes alike, because selective
re-execution is exact rather than delta-rule based.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..storage.counters import AccessCounter
from .plan import BoundedPlan, DifferenceOp, FetchOp

Row = tuple

#: outcome statuses of :meth:`DeltaDeriver.derive`
CLEAN = "clean"        # no probed key touched: re-stamp only
PATCHED = "patched"    # dirty closure re-executed, rows possibly changed
FALLBACK = "fallback"  # not derivable: the caller must invalidate


class WriteDelta:
    """A batch of applied inserts/deletes, grouped by relation.

    The deriver only needs the written *rows* per relation (dirty-key
    detection is direction-agnostic: both an insert and a delete can only
    change the index group of the written row's key), but inserts and
    deletes are kept separate for observability.  Skipped (no-op) updates
    may be included — they can only mark extra keys dirty, never miss one,
    so including them costs work but never correctness.
    """

    __slots__ = ("inserts", "deletes", "_touched")

    def __init__(
        self,
        inserts: Mapping[str, Sequence[Row]] | None = None,
        deletes: Mapping[str, Sequence[Row]] | None = None,
    ):
        self.inserts: dict[str, tuple[Row, ...]] = {
            relation: tuple(rows) for relation, rows in (inserts or {}).items() if rows
        }
        self.deletes: dict[str, tuple[Row, ...]] = {
            relation: tuple(rows) for relation, rows in (deletes or {}).items() if rows
        }
        self._touched = frozenset(self.inserts) | frozenset(self.deletes)

    @classmethod
    def from_updates(cls, updates: Iterable) -> "WriteDelta":
        """Group :class:`~repro.discovery.maintenance.Update`-shaped objects
        (duck-typed: ``.relation`` / ``.row`` / ``.kind``) by relation."""
        inserts: dict[str, list[Row]] = {}
        deletes: dict[str, list[Row]] = {}
        for update in updates:
            bucket = inserts if update.kind == "insert" else deletes
            bucket.setdefault(update.relation, []).append(tuple(update.row))
        return cls(inserts, deletes)

    @property
    def touched(self) -> frozenset[str]:
        """Relations this delta wrote at least one row to."""
        return self._touched

    def rows_for(self, relation: str) -> tuple[Row, ...]:
        """Every written row of ``relation``, inserts and deletes together."""
        return self.inserts.get(relation, ()) + self.deletes.get(relation, ())

    def __bool__(self) -> bool:
        return bool(self._touched)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"WriteDelta(inserts={ {r: len(v) for r, v in self.inserts.items()} }, "
            f"deletes={ {r: len(v) for r, v in self.deletes.items()} })"
        )


@dataclass
class RepairOutcome:
    """What :meth:`DeltaDeriver.derive` decided for one cache entry.

    ``status`` is :data:`CLEAN` (no probed key was written: the entry's rows
    are already correct, only its snapshot needs re-stamping),
    :data:`PATCHED` (``rows`` / ``env`` hold the repaired state), or
    :data:`FALLBACK` (``reason`` says why the delta was not derivable and
    the entry must be invalidated instead).
    """

    status: str
    rows: frozenset[Row] | None = None
    env: tuple[frozenset[Row], ...] | None = None
    #: rows the patch added / removed relative to the cached result
    rows_added: int = 0
    rows_removed: int = 0
    #: fallback reason ("difference", "no_env", "error", ...)
    reason: str | None = None
    #: fetch steps found dirty (empty for CLEAN)
    dirty_steps: tuple[int, ...] = ()
    #: steps re-executed (the downstream closure of the dirty fetches)
    steps_recomputed: int = 0
    counter: AccessCounter = field(default_factory=AccessCounter)

    @classmethod
    def clean(cls) -> "RepairOutcome":
        """The write is invisible through the plan: re-stamp, no execution."""
        return cls(status=CLEAN)

    @classmethod
    def fallback(cls, reason: str) -> "RepairOutcome":
        """Repair refused for ``reason``: the caller must invalidate instead."""
        return cls(status=FALLBACK, reason=reason)


def _first_positions(columns: Sequence[str]) -> dict[str, int]:
    """Column name → first position (mirrors the executor's resolution)."""
    positions: dict[str, int] = {}
    for index, column in enumerate(columns):
        positions.setdefault(column, index)
    return positions


class DeltaDeriver:
    """Derives per-entry repairs for a write batch through a plan's fetches.

    ``executor`` must compile plans to **row** kernels whose environment
    convention matches the captured one (the engine passes a dedicated
    row-mode :class:`~repro.evaluator.executor.PlanExecutor`; the router
    passes its :class:`~repro.sharding.router.FederatedExecutor`, which is
    row-mode by construction).  ``schema`` resolves written rows' attribute
    positions for key projection.  ``group_lookup(constraint, base, key)``,
    when provided, refines dirty detection by comparing the cached fetch
    group against the live index group — equal groups (e.g. a duplicate
    insert, or an insert whose XY-projection already existed) downgrade a
    key hit back to clean.  It must read **post-write** index state and
    return ``None`` when the group cannot be resolved.
    """

    def __init__(
        self,
        executor,
        schema,
        *,
        group_lookup: Callable[[object, str, Row], frozenset[Row] | None] | None = None,
    ):
        self.executor = executor
        self.schema = schema
        self.group_lookup = group_lookup

    # -- structural derivability ------------------------------------------------
    def affected_fetches(self, plan: BoundedPlan, touched: frozenset[str]) -> tuple[int, ...]:
        """Step ids of fetches whose base relation is in ``touched``."""
        affected = []
        for step in plan.fetch_steps():
            constraint = step.op.constraint
            base = plan.occurrences.get(constraint.relation, constraint.relation)
            if base in touched:
                affected.append(step.id)
        return tuple(affected)

    def derivable(self, plan: BoundedPlan, touched: frozenset[str]) -> bool:
        """Whether a write to ``touched`` is repairable through ``plan``.

        False exactly when some affected fetch reaches a
        :class:`~repro.core.plan.DifferenceOp` — the non-monotone operator
        where delta rules invert sign through the subtrahend, so the
        conservative contract (satellite of the repair design: *never* serve
        a stale repaired entry) is to fall back to invalidation.
        """
        affected = self.affected_fetches(plan, touched)
        return self._derivable(plan, affected)

    def _derivable(self, plan: BoundedPlan, affected: tuple[int, ...]) -> bool:
        if not affected:
            return True
        dirty_reach = [False] * len(plan.steps)
        affected_set = set(affected)
        for step in plan.steps:
            op = step.op
            reach = step.id in affected_set or any(
                dirty_reach[source] for source in op.inputs
            )
            dirty_reach[step.id] = reach
            if isinstance(op, DifferenceOp) and (
                dirty_reach[op.inputs[0]] or dirty_reach[op.inputs[1]]
            ):
                return False
        return True

    # -- derivation -------------------------------------------------------------
    def derive(
        self,
        plan: BoundedPlan,
        env: tuple[frozenset[Row], ...],
        rows: frozenset[Row],
        delta: WriteDelta,
    ) -> RepairOutcome:
        """Decide clean / patch / fallback for one cached result.

        ``env`` is the per-step environment captured when the entry was
        filled (``ExecutionResult.env``); ``rows`` the cached output rows.
        Must be called **after** the write has been applied to storage and
        indexes — re-execution and ``group_lookup`` read live state.
        Exceptions never escape: any derivation error degrades to a
        :data:`FALLBACK` outcome (reason ``"error"``), because serving a
        wrong repaired row is the one failure mode this module must not
        have.
        """
        try:
            return self._derive(plan, env, rows, delta)
        except Exception as error:  # pragma: no cover - defensive seam
            outcome = RepairOutcome.fallback("error")
            outcome.reason = f"error:{type(error).__name__}"
            return outcome

    def _derive(
        self,
        plan: BoundedPlan,
        env: tuple[frozenset[Row], ...],
        rows: frozenset[Row],
        delta: WriteDelta,
    ) -> RepairOutcome:
        affected = self.affected_fetches(plan, delta.touched)
        if not affected:
            # The write never reaches this plan's fetches (the caller's
            # dependency filter should already have skipped it).
            return RepairOutcome.clean()
        if not self._derivable(plan, affected):
            return RepairOutcome.fallback("difference")
        if env is None or len(env) != len(plan.steps):
            return RepairOutcome.fallback("no_env")
        compiled = self.executor.compile(plan)
        if compiled.mode != "row":
            return RepairOutcome.fallback("executor_mode")

        dirty = self._dirty_fetches(plan, compiled, env, delta, affected)
        if not dirty:
            return RepairOutcome.clean()

        # Re-execute the downstream closure of the dirty fetches.  Steps are
        # densely numbered with inputs < id, so one ascending pass suffices.
        recompute = [False] * len(plan.steps)
        for sid in dirty:
            recompute[sid] = True
        for step in plan.steps:
            if not recompute[step.id]:
                recompute[step.id] = any(recompute[s] for s in step.op.inputs)
        counter = AccessCounter()
        scratch: list = list(env)
        recomputed = 0
        for step in plan.steps:
            if recompute[step.id]:
                scratch[step.id] = compiled.kernels[step.id](scratch, counter)
                recomputed += 1
        new_rows = frozenset(scratch[plan.output])
        new_env = tuple(
            part if isinstance(part, frozenset) else frozenset(part)
            for part in scratch
        )
        return RepairOutcome(
            status=PATCHED,
            rows=new_rows,
            env=new_env,
            rows_added=len(new_rows - rows),
            rows_removed=len(rows - new_rows),
            dirty_steps=tuple(sorted(dirty)),
            steps_recomputed=recomputed,
            counter=counter,
        )

    def _dirty_fetches(
        self,
        plan: BoundedPlan,
        compiled,
        env: tuple[frozenset[Row], ...],
        delta: WriteDelta,
        affected: tuple[int, ...],
    ) -> set[int]:
        """Affected fetches whose output can actually have changed.

        A fetch is dirty iff some written row of its base relation projects
        (on ``sorted(constraint.lhs)``) onto a key the fetch probed at fill
        time; ``group_lookup`` then optionally confirms the hit by comparing
        the cached group against the live index group.
        """
        dirty: set[int] = set()
        for fetch_id in affected:
            step = plan.steps[fetch_id]
            op: FetchOp = step.op
            constraint = op.constraint
            base = plan.occurrences.get(constraint.relation, constraint.relation)
            written = delta.rows_for(base)
            if not written:
                continue
            lhs = sorted(constraint.lhs)
            row_positions = self.schema[base].positions(lhs)
            source = op.inputs[0]
            source_positions = _first_positions(compiled.columns[source])
            key_positions = tuple(source_positions[c] for c in op.key_columns)
            probed = {
                tuple(row[p] for p in key_positions) for row in env[source]
            }
            hits = {
                key
                for key in (
                    tuple(row[p] for p in row_positions) for row in written
                )
                if key in probed
            }
            if not hits:
                continue
            if self.group_lookup is not None and self._groups_unchanged(
                compiled, env, fetch_id, op, base, lhs, hits
            ):
                continue
            dirty.add(fetch_id)
        return dirty

    def _groups_unchanged(
        self,
        compiled,
        env: tuple[frozenset[Row], ...],
        fetch_id: int,
        op: FetchOp,
        base: str,
        lhs: list[str],
        hits: set[Row],
    ) -> bool:
        """Whether every hit key's live index group equals the cached one.

        Sound because a fetch's output restricted to one key *is* that key's
        index group at fill time (fetch rows carry their key columns:
        ``sorted(lhs | rhs)`` ⊇ ``lhs``), so group equality means the write
        was invisible through this fetch.  Only usable when the fetch kernel
        applies no shard-side predicate (the engine's local fetches), which
        is the caller's responsibility via ``group_lookup``.
        """
        # Fetch output tuples are aligned with sorted(lhs | rhs) — resolve key
        # positions positionally; the step's column names are qualified
        # ("rel.attr") while ``lhs`` holds bare attribute names.
        combined = sorted(set(op.constraint.lhs) | set(op.constraint.rhs))
        key_positions = tuple(combined.index(attribute) for attribute in lhs)
        cached_rows = env[fetch_id]
        for key in hits:
            live = self.group_lookup(op.constraint, base, key)
            if live is None:
                return False
            cached_group = {
                row
                for row in cached_rows
                if tuple(row[p] for p in key_positions) == key
            }
            if cached_group != live:
                return False
        return True
